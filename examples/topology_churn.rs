//! Topology dynamics (paper Section 4.2) at registry scale: the
//! `heavy_churn_150` preset kills 20 % of a 150-node network mid-run;
//! LMAC's cross-layer notifications let DirQ repair its spanning tree and
//! range tables autonomously, and queries keep finding their sources.
//!
//! ```sh
//! cargo run --release --example topology_churn
//! ```

use dirq::prelude::*;

fn main() {
    let spec = preset("heavy_churn_150").expect("registry preset");
    let ChurnProfile::RandomDeaths { fraction, from, until } = spec.churn else {
        panic!("heavy_churn_150 must define churn");
    };
    let epochs = spec.epochs;
    let (churn_from, churn_until) = ((epochs as f64 * from) as u64, (epochs as f64 * until) as u64);
    println!(
        "churn run: {:.0}% of {} nodes die between epochs {} and {}",
        fraction * 100.0,
        spec.n_nodes,
        churn_from,
        churn_until
    );

    // Drop one level below the sweep executor: lowering the spec by hand
    // exposes the full RunResult for phase-by-phase analysis.
    let scheme = spec.schemes[0];
    let r = run_scenario(spec.config(scheme, spec.seed));
    println!("LMAC dead-neighbour upcalls raised: {}", r.mac_stats.deaths_detected);
    println!();
    println!("query recall by phase (fraction of true sources reached):");
    for (label, lo, hi) in [
        ("before churn", spec.measure_from(), churn_from),
        ("during churn", churn_from, churn_until),
        ("after repair", churn_until, epochs),
    ] {
        let vals: Vec<f64> = r
            .metrics
            .outcomes
            .iter()
            .filter(|o| o.epoch >= lo && o.epoch < hi)
            .map(|o| o.source_recall())
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        println!("  {label} (epochs {lo:>5}-{hi:>5}): {mean:.3}  ({} queries)", vals.len());
    }
    println!();
    println!(
        "undeliverable messages during the run: {} (healed via re-advertisement)",
        r.mac_stats.undeliverable
    );
    println!(
        "total cost stayed at {:.0}% of flooding",
        r.cost_ratio_vs_flooding().unwrap() * 100.0
    );
}
