//! Topology dynamics (paper Section 4.2): nodes die mid-run; LMAC's
//! cross-layer notifications let DirQ repair its spanning tree and range
//! tables autonomously, and queries keep finding their sources.
//!
//! ```sh
//! cargo run --release --example topology_churn
//! ```

use dirq::prelude::*;

fn main() {
    let cfg = ScenarioConfig {
        epochs: 4_000,
        measure_from_epoch: 200,
        churn: ChurnSpec::RandomDeaths { deaths: 8, from_epoch: 1_000, until_epoch: 2_000 },
        delta_policy: DeltaPolicy::Fixed(5.0),
        ..ScenarioConfig::paper(13)
    };
    let r = run_scenario(cfg);

    println!("churn run: 8 of {} nodes die between epochs 1000 and 2000", r.n_nodes);
    println!("LMAC dead-neighbour upcalls raised: {}", r.mac_stats.deaths_detected);
    println!();
    println!("query recall by phase (fraction of true sources reached):");
    for (label, lo, hi) in [
        ("before churn  (epochs  200-1000)", 200u64, 1_000u64),
        ("during churn  (epochs 1000-2000)", 1_000, 2_000),
        ("after repair  (epochs 2000-4000)", 2_000, 4_000),
    ] {
        let vals: Vec<f64> = r
            .metrics
            .outcomes
            .iter()
            .filter(|o| o.epoch >= lo && o.epoch < hi)
            .map(|o| o.source_recall())
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        println!("  {label}: {mean:.3}  ({} queries)", vals.len());
    }
    println!();
    println!(
        "undeliverable messages during the run: {} (healed via re-advertisement)",
        r.mac_stats.undeliverable
    );
    println!(
        "total cost stayed at {:.0}% of flooding",
        r.cost_ratio_vs_flooding().unwrap() * 100.0
    );
}
