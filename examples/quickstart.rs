//! Quickstart: run the registry's 500-node DirQ-vs-flooding head-to-head
//! through the scenario sweep executor and print the comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dirq::prelude::*;

fn main() {
    // The named preset runs both schemes over the identical deployment;
    // scale the epoch budget down for a quick demonstration run.
    let spec = preset("head_to_head_500").expect("registry preset").scaled(0.25);
    println!(
        "== {} == ({} nodes, {} epochs, schemes: {})",
        spec.name,
        spec.n_nodes,
        spec.epochs,
        spec.schemes.iter().map(|s| s.label()).collect::<Vec<_>>().join(" vs ")
    );

    let report = run_matrix_report(std::slice::from_ref(&spec), &SweepConfig::default());
    print!("{}", report.summary_table().to_ascii());

    for c in &report.comparisons {
        println!("{} / {}  {}: {:.3}", c.scheme, c.baseline, c.metric, c.ratio);
    }
    let tx = report
        .comparisons
        .iter()
        .find(|c| c.metric == "tx_per_delivered")
        .expect("head-to-head always yields a flooding comparison");
    println!(
        "\nDirQ spends {:.0}% of flooding's transmissions per delivered source",
        tx.ratio * 100.0
    );
    println!("(paper: \"DirQ spends between 45% and 55% the cost of flooding\")");
    println!(
        "\nreport fingerprint: {:#018X} (bit-stable for a fixed seed)",
        report.stable_fingerprint()
    );
}
