//! Quickstart: deploy the paper's 50-node network, run DirQ for a couple
//! of thousand epochs, and compare its measured cost with flooding.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dirq::prelude::*;

fn main() {
    // The paper's setup (50 nodes, 4 sensor types, queries every 20
    // epochs) at a shortened run length.
    let base = ScenarioConfig {
        epochs: 3_000,
        measure_from_epoch: 300,
        delta_policy: DeltaPolicy::Adaptive(AtcConfig::default()),
        ..ScenarioConfig::paper(42)
    };

    println!("== DirQ (Adaptive Threshold Control) ==");
    let dirq = run_scenario(base.clone());
    report(&dirq);

    println!("\n== Flooding baseline ==");
    let flooding = run_scenario(ScenarioConfig { protocol: Protocol::Flooding, ..base });
    report(&flooding);

    let ratio = dirq.cost_per_query().unwrap() / flooding.cost_per_query().unwrap();
    println!("\nDirQ spends {:.0}% of flooding's per-query cost", ratio * 100.0);
    println!("(paper: \"DirQ spends between 45% and 55% the cost of flooding\")");
}

fn report(r: &RunResult) {
    println!("  nodes: {}, links: {}", r.n_nodes, r.analytic.links);
    println!("  queries injected: {}", r.queries_injected);
    println!(
        "  cost/query: {:.1} units (flooding analytic: {:.1})",
        r.cost_per_query().unwrap_or(f64::NAN),
        r.flooding_cost_per_query()
    );
    println!(
        "  breakdown: query={:.0} update={:.0} control={:.0}",
        r.metrics.query_cost.cost(),
        r.metrics.update_cost.cost(),
        r.metrics.control_cost.cost()
    );
    println!(
        "  mean overshoot: {:.1}%  mean source recall: {:.3}",
        r.mean_overshoot_pct(),
        r.metrics.mean_over_queries(|o| o.source_recall()).unwrap_or(f64::NAN)
    );
}
