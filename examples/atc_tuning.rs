//! Watch the Adaptive Threshold Control work (paper Section 6 / Fig. 6):
//! nodes adjust their thresholds autonomously from the root's hourly query
//! estimate and their locally observed signal variability, steering total
//! cost towards half of flooding.
//!
//! ```sh
//! cargo run --release --example atc_tuning
//! ```

use dirq::prelude::*;

fn main() {
    let epochs = 8_000;
    let r = run_scenario(ScenarioConfig {
        epochs,
        measure_from_epoch: 800,
        delta_policy: DeltaPolicy::Adaptive(AtcConfig::default()),
        target_fraction: 0.4,
        ..ScenarioConfig::paper(21)
    });

    let umax_100 = r.u_max_per_hour * 100.0 / r.hour_epochs as f64;
    println!(
        "Umax/hr = {:.0} updates per 100 epochs; ATC band = [{:.0}, {:.0}]",
        umax_100,
        0.45 * umax_100,
        0.55 * umax_100
    );
    println!();
    println!("{:>7} {:>16} {:>12}", "epoch", "updates/100ep", "mean delta %");
    for window in (0..epochs / 100).step_by(8) {
        let upd = r.metrics.updates_per_bucket.sum(window as usize);
        let delta = r
            .delta_trace
            .iter()
            .find(|(e, _)| *e == window * 100)
            .map(|&(_, d)| d)
            .unwrap_or(f64::NAN);
        let marker =
            if upd >= 0.45 * umax_100 && upd <= 0.55 * umax_100 { "  <- in band" } else { "" };
        println!("{:>7} {:>16.0} {:>12.2}{marker}", window * 100, upd, delta);
    }
    println!();
    println!(
        "final per-node deltas: min {:.1}%, mean {:.1}%, max {:.1}%",
        r.final_delta_pcts[1..].iter().cloned().fold(f64::INFINITY, f64::min),
        r.final_delta_pcts[1..].iter().sum::<f64>() / (r.final_delta_pcts.len() - 1) as f64,
        r.final_delta_pcts[1..].iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    );
    println!(
        "cost ratio vs flooding: {:.3}  (paper target: 0.45-0.55)",
        r.cost_ratio_vs_flooding().unwrap()
    );
    println!("mean overshoot: {:.1}%", r.mean_overshoot_pct());
}
