//! The paper's motivating scenario (Section 3): an environmental
//! monitoring network in a forest, queried by many users about different
//! physical parameters. Heterogeneous nodes carry different sensor
//! subsets; one-shot range queries arrive continuously.
//!
//! This example runs the scenario and breaks results down per sensor
//! type, demonstrating the multi-table support of Fig. 4.
//!
//! ```sh
//! cargo run --release --example forest_monitoring
//! ```

use dirq::prelude::*;

fn main() {
    let cfg = ScenarioConfig {
        epochs: 6_000,
        measure_from_epoch: 600,
        sensor_coverage: 0.6, // heterogeneous: ~60% of nodes carry each type
        target_fraction: 0.4,
        delta_policy: DeltaPolicy::Adaptive(AtcConfig::default()),
        ..ScenarioConfig::paper(7)
    };
    let catalog = SensorCatalog::environmental();
    let r = run_scenario(cfg);

    println!(
        "Forest monitoring: {} nodes, {} queries over {} epochs",
        r.n_nodes, r.queries_injected, r.epochs
    );
    println!(
        "cost/query {:.1} units = {:.0}% of flooding\n",
        r.cost_per_query().unwrap(),
        r.cost_ratio_vs_flooding().unwrap() * 100.0
    );

    println!("per sensor type (averages over that type's queries):");
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>9}",
        "type", "queries", "should %", "receive %", "recall"
    );
    for t in catalog.types() {
        let outcomes: Vec<_> = r.metrics.outcomes.iter().filter(|o| o.stype == t).collect();
        if outcomes.is_empty() {
            continue;
        }
        let n = outcomes.len() as f64;
        let should: f64 = outcomes.iter().map(|o| o.pct_should()).sum::<f64>() / n;
        let recv: f64 = outcomes.iter().map(|o| o.pct_received()).sum::<f64>() / n;
        let recall: f64 = outcomes.iter().map(|o| o.source_recall()).sum::<f64>() / n;
        println!(
            "{:<14} {:>8} {:>9.1}% {:>9.1}% {:>9.3}",
            catalog.descriptor(t).name,
            outcomes.len(),
            should,
            recv,
            recall
        );
    }

    println!(
        "\nupdate traffic: {} messages total across the run",
        r.metrics.updates_per_bucket.total() as u64
    );
}
