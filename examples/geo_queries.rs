//! The location extension in action: spatially scoped queries ("all CO₂
//! readings in the north-east plot") routed through advertised subtree
//! bounding boxes — the paper's optional *static location attribute*
//! ("having location information would of course extend the capabilities
//! of DirQ").
//!
//! ```sh
//! cargo run --release --example geo_queries
//! ```

use dirq::prelude::*;

fn main() {
    let base = ScenarioConfig {
        epochs: 3_000,
        measure_from_epoch: 300,
        target_fraction: 0.3,
        location_enabled: true,
        ..ScenarioConfig::paper(33)
    };

    println!("== value-only workload (location unused) ==");
    let value_only = run_scenario(base.clone());
    report(&value_only);

    println!("\n== fully spatial workload (every query carries a region) ==");
    let spatial = run_scenario(ScenarioConfig { spatial_query_fraction: 1.0, ..base.clone() });
    report(&spatial);

    println!("\n== mixed workload (50% spatial) ==");
    let mixed = run_scenario(ScenarioConfig { spatial_query_fraction: 0.5, ..base });
    report(&mixed);

    println!(
        "\nspatial pruning plus value pruning compose: both workloads stay at\n\
         {:.0}% / {:.0}% of flooding with recall {:.2} / {:.2}",
        value_only.cost_ratio_vs_flooding().unwrap() * 100.0,
        spatial.cost_ratio_vs_flooding().unwrap() * 100.0,
        value_only.metrics.mean_over_queries(|o| o.source_recall()).unwrap(),
        spatial.metrics.mean_over_queries(|o| o.source_recall()).unwrap(),
    );
}

fn report(r: &RunResult) {
    println!(
        "  queries: {}   received/query: {:.1} nodes   should: {:.1}   cost/query: {:.1} ({:.0}% of flooding)",
        r.queries_injected,
        r.metrics.mean_over_queries(|o| o.received as f64).unwrap_or(f64::NAN),
        r.metrics.mean_over_queries(|o| o.should_receive as f64).unwrap_or(f64::NAN),
        r.cost_per_query().unwrap_or(f64::NAN),
        r.cost_ratio_vs_flooding().unwrap_or(f64::NAN) * 100.0,
    );
}
