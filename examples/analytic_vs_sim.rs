//! Validate the paper's Section 5 cost model against the simulator on
//! exact complete k-ary trees, and reproduce the worked example
//! (k = 2, d = 4 ⇒ fMax = 46/60 ≈ 0.76).
//!
//! ```sh
//! cargo run --release --example analytic_vs_sim
//! ```

use dirq::prelude::*;

fn main() {
    println!("closed-form model (Eqs. 3-9) on complete k-ary trees:");
    println!(
        "{:>3} {:>3} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "k", "d", "N", "CF", "CQDmax", "CUDmax", "fMax"
    );
    for (k, d) in [(2u32, 3u32), (2, 4), (3, 3), (4, 2), (8, 2)] {
        let c = KaryCosts::compute(k, d);
        println!(
            "{:>3} {:>3} {:>7} {:>8} {:>8} {:>8} {:>8.4}",
            k,
            d,
            c.n,
            c.flooding,
            c.cqd_max,
            c.cud_max,
            c.f_max().unwrap_or(f64::NAN)
        );
    }
    let c = KaryCosts::compute(2, 4);
    let (num, den) = c.f_max_exact().unwrap();
    println!(
        "\npaper's worked example: fMax(k=2, d=4) = {num}/{den} = {:.4} -> \"0.76\"",
        c.f_max().unwrap()
    );

    println!("\nsimulated flooding on exact trees vs Eq. 3/4:");
    for (k, d) in [(2usize, 4u32), (3, 3), (4, 2)] {
        let r = run_scenario(ScenarioConfig {
            tree: TreeKind::CompleteKary { k, d },
            protocol: Protocol::Flooding,
            epochs: 1_000,
            measure_from_epoch: 100,
            ..ScenarioConfig::paper(3)
        });
        let analytic = r.flooding_cost_per_query();
        let measured = r.cost_per_query().unwrap();
        println!(
            "  k={k} d={d}: analytic {analytic:.0}, simulated {measured:.1} ({:+.2}%)",
            (measured - analytic) / analytic * 100.0
        );
    }

    println!("\nthe same counting rules on the paper-style 50-node deployment:");
    let r = run_scenario(ScenarioConfig {
        epochs: 1_000,
        measure_from_epoch: 100,
        protocol: Protocol::Flooding,
        ..ScenarioConfig::paper(3)
    });
    println!(
        "  N={} links={} -> CF={:.0}; simulated flooding {:.1}/query",
        r.analytic.n,
        r.analytic.links,
        r.analytic.flooding,
        r.cost_per_query().unwrap()
    );
    println!(
        "  fMax={:.3} -> at 20 queries/hour the update budget is {:.0} messages/hour",
        r.analytic.f_max().unwrap(),
        r.u_max_per_hour
    );
}
