#!/usr/bin/env bash
# Crash-recovery smoke: two checkpointing deployments, a real `kill -9`
# mid-run, and a restart with `--recover` — each deployment must resume
# from its newest rotating auto-checkpoint with a state fingerprint
# equal to an uninterrupted run to the same epoch.
#
# The daemon steps to epoch 25 with a 10-epoch checkpoint period, so the
# newest on-disk image holds epoch 20 while the killed process was ahead
# at 25: recovery must land exactly on 20, not on anything the dead
# process knew beyond its last checkpoint.
set -euo pipefail

DIRQD=${DIRQD:-./target/release/dirqd}
CLI=${CLI:-./target/release/dirq-cli}
WORK=$(mktemp -d)
CKPT="$WORK/ckpt"
mkdir -p "$CKPT"
DAEMON_PID=

cleanup() {
    status=$?
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
    exit "$status"
}
trap cleanup EXIT

start_daemon() {
    : > "$WORK/addr.txt"
    "$DIRQD" --addr 127.0.0.1:0 --print-addr "$@" > "$WORK/addr.txt" &
    DAEMON_PID=$!
    for _ in $(seq 50); do [ -s "$WORK/addr.txt" ] && break; sleep 0.1; done
    ADDR=$(head -n1 "$WORK/addr.txt")
    test -n "$ADDR"
}

cli() { "$CLI" --addr "$ADDR" "$@"; }
raw() { "$CLI" --addr "$ADDR" --raw "$@"; }

start_daemon
cli deploy g dense_grid_100 --scale 0.1 --seed 42 \
    --checkpoint-every 10 --checkpoint-dir "$CKPT"
cli deploy h hotspot_workload_200 --scale 0.1 --seed 43 \
    --checkpoint-every 10 --checkpoint-dir "$CKPT"
test "$(raw epoch step g 25)" = 25
test "$(raw epoch step h 25)" = 25

kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=

start_daemon --recover "$CKPT"
STATUS=$(cli status)
echo "$STATUS" | grep -q '"name": "g"'
echo "$STATUS" | grep -q '"name": "h"'
echo "$STATUS" | grep -q '"recovered"'

EG=$(raw epoch fingerprint g)
EH=$(raw epoch fingerprint h)
FG=$(raw fingerprint fingerprint g)
FH=$(raw fingerprint fingerprint h)
test "$EG" = 20
test "$EH" = 20

# Uninterrupted straight runs to the recovered epochs must
# fingerprint-equal the resumed deployments.
cli deploy g-clean dense_grid_100 --scale 0.1 --seed 42
cli deploy h-clean hotspot_workload_200 --scale 0.1 --seed 43
test "$(raw epoch step g-clean "$EG")" = "$EG"
test "$(raw epoch step h-clean "$EH")" = "$EH"
test "$(raw fingerprint fingerprint g-clean)" = "$FG"
test "$(raw fingerprint fingerprint h-clean)" = "$FH"

# The resumed deployments still serve: one blocking query each.
cli query g 0 12 26 > /dev/null
cli query h 0 12 26 > /dev/null

cli shutdown
wait "$DAEMON_PID"
DAEMON_PID=
echo "dirqd recovery smoke: ok (g and h resumed at epoch 20, fingerprints match clean runs)"
