#!/usr/bin/env bash
# External-daemon round trip: a real dirqd process driven by dirq-cli
# over TCP — deploy, step, blocking and async queries, poll/drain,
# snapshot/restore with fingerprint equality, status, clean shutdown.
#
# Scripted values (ids, cursors, epochs, fingerprints) are captured with
# `dirq-cli --raw FIELD` rather than scraped out of pretty JSON. The
# daemon is started in the background and killed by the exit trap, so a
# failed assertion never leaks the process until job teardown.
set -euo pipefail

DIRQD=${DIRQD:-./target/release/dirqd}
CLI=${CLI:-./target/release/dirq-cli}
WORK=$(mktemp -d)
DAEMON_PID=

cleanup() {
    status=$?
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
    exit "$status"
}
trap cleanup EXIT

"$DIRQD" --addr 127.0.0.1:0 --print-addr > "$WORK/addr.txt" &
DAEMON_PID=$!
for _ in $(seq 50); do [ -s "$WORK/addr.txt" ] && break; sleep 0.1; done
ADDR=$(head -n1 "$WORK/addr.txt")
test -n "$ADDR"

cli() { "$CLI" --addr "$ADDR" "$@"; }
raw() { "$CLI" --addr "$ADDR" --raw "$@"; }

cli deploy a dense_grid_100 --scale 0.1
test "$(raw epoch step a 20)" = 20
cli query a 0 12 26

# Non-blocking path: submit returns the id immediately, poll resolves
# it, drain hands it to a cursored reader that then runs dry.
QID=$(raw id query a 0 14 22 --async --client ci)
test -n "$QID"
DONE=false
for _ in $(seq 100); do
    DONE=$(raw done poll a "$QID")
    [ "$DONE" = true ] && break
    sleep 0.05
done
test "$DONE" = true
cli drain a | grep -q "\"id\": $QID"
CURSOR=$(raw cursor drain a)
test "$(raw results drain a "$CURSOR")" = "[]"

cli snapshot a "$WORK/a.dirqsnap"
cli restore b "$WORK/a.dirqsnap"
FA=$(raw fingerprint fingerprint a)
FB=$(raw fingerprint fingerprint b)
echo "a: $FA"
echo "b: $FB"
test -n "$FA"
test "$FA" = "$FB"

test "$(raw serving_threads status)" -ge 1
cli status
cli shutdown
wait "$DAEMON_PID"
DAEMON_PID=
echo "dirqd round trip: ok"
