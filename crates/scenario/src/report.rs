//! Structured sweep output: per-run outcomes, cross-scenario comparisons,
//! a stable fingerprint and JSON rendering.

use dirq_core::RunResult;
use dirq_sim::fingerprint::Fnv;
use dirq_sim::json::Json;
use dirq_sim::report::{fnum, Table};

/// Summary of one simulation run inside a sweep.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Scenario (preset) name.
    pub scenario: String,
    /// Scheme label (see [`crate::Scheme::label`]).
    pub scheme: String,
    /// Concrete seed of this replicate.
    pub seed: u64,
    /// Deployment size.
    pub n_nodes: usize,
    /// Epochs simulated.
    pub epochs: u64,
    /// Mean fraction of true sources reached per measured query.
    pub delivery_ratio: f64,
    /// Query-category transmissions per source actually reached.
    pub tx_per_delivered: f64,
    /// MAC data-ledger energy (tx + rx of data messages) per node per
    /// epoch. LMAC control overhead is identical across schemes and
    /// excluded, matching the paper's cost comparisons.
    pub energy_per_node_epoch: f64,
    /// Measured cost relative to analytic flooding.
    pub cost_ratio_vs_flooding: f64,
    /// Mean relative overshoot, percent.
    pub mean_overshoot_pct: f64,
    /// Ground-truth probes spent on calibration, per injected query.
    pub calibration_probes_per_query: f64,
    /// The run's [`RunResult::stable_fingerprint`].
    pub fingerprint: u64,
}

impl ScenarioOutcome {
    /// Extract the sweep summary from a finished run.
    pub fn from_run(scenario: &str, scheme: &str, seed: u64, r: &RunResult) -> Self {
        let mut delivered = 0u64;
        for o in r.metrics.outcomes.iter().filter(|o| o.epoch >= r.metrics.measure_from_epoch) {
            delivered += o.sources_reached as u64;
        }
        let delivery_ratio = r.metrics.mean_over_queries(|o| o.source_recall()).unwrap_or(0.0);
        let tx_per_delivered =
            if delivered > 0 { r.metrics.query_cost.tx as f64 / delivered as f64 } else { 0.0 };
        let node_epochs = (r.n_nodes as u64 * r.epochs).max(1) as f64;
        ScenarioOutcome {
            scenario: scenario.to_string(),
            scheme: scheme.to_string(),
            seed,
            n_nodes: r.n_nodes,
            epochs: r.epochs,
            delivery_ratio,
            tx_per_delivered,
            energy_per_node_epoch: r.mac_data_cost / node_epochs,
            cost_ratio_vs_flooding: r.cost_ratio_vs_flooding().unwrap_or(0.0),
            mean_overshoot_pct: r.mean_overshoot_pct(),
            calibration_probes_per_query: r.calibration_probes as f64
                / (r.queries_injected.max(1)) as f64,
            fingerprint: r.stable_fingerprint(),
        }
    }

    fn mix(&self, h: &mut Fnv) {
        h.str(&self.scenario);
        h.str(&self.scheme);
        h.u64(self.seed);
        h.u64(self.n_nodes as u64);
        h.u64(self.epochs);
        h.f64(self.delivery_ratio);
        h.f64(self.tx_per_delivered);
        h.f64(self.energy_per_node_epoch);
        h.f64(self.cost_ratio_vs_flooding);
        h.f64(self.mean_overshoot_pct);
        h.f64(self.calibration_probes_per_query);
        h.u64(self.fingerprint);
    }

    fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("scenario", Json::Str(self.scenario.clone()));
        o.set("scheme", Json::Str(self.scheme.clone()));
        o.set("seed", Json::Num(self.seed as f64));
        o.set("n_nodes", Json::Num(self.n_nodes as f64));
        o.set("epochs", Json::Num(self.epochs as f64));
        o.set("delivery_ratio", Json::Num(round6(self.delivery_ratio)));
        o.set("tx_per_delivered", Json::Num(round6(self.tx_per_delivered)));
        o.set("energy_per_node_epoch", Json::Num(round6(self.energy_per_node_epoch)));
        o.set("cost_ratio_vs_flooding", Json::Num(round6(self.cost_ratio_vs_flooding)));
        o.set("mean_overshoot_pct", Json::Num(round6(self.mean_overshoot_pct)));
        o.set("calibration_probes_per_query", Json::Num(round6(self.calibration_probes_per_query)));
        o.set("fingerprint", Json::Str(format!("{:#018X}", self.fingerprint)));
        o
    }
}

/// Mean ± standard deviation of one metric across a row's seed
/// replicates.
///
/// The deviation is the *population* standard deviation (divisor `n`), so
/// a single-replicate sweep reports a well-defined `0.0` rather than an
/// undefined sample estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplicateStats {
    /// Mean over the replicates.
    pub mean: f64,
    /// Population standard deviation over the replicates.
    pub stddev: f64,
}

/// One `(scenario, scheme)` cell with its seed replicates.
#[derive(Clone, Debug)]
pub struct ScenarioRow {
    /// Scenario (preset) name.
    pub scenario: String,
    /// Scheme label.
    pub scheme: String,
    /// Outcomes, one per replicate, in replicate order.
    pub replicates: Vec<ScenarioOutcome>,
}

impl ScenarioRow {
    /// Mean of `f` over the replicates.
    pub fn mean(&self, f: impl Fn(&ScenarioOutcome) -> f64) -> f64 {
        if self.replicates.is_empty() {
            return 0.0;
        }
        self.replicates.iter().map(f).sum::<f64>() / self.replicates.len() as f64
    }

    /// Mean ± population standard deviation of `f` over the replicates.
    pub fn stats(&self, f: impl Fn(&ScenarioOutcome) -> f64) -> ReplicateStats {
        if self.replicates.is_empty() {
            return ReplicateStats { mean: 0.0, stddev: 0.0 };
        }
        let n = self.replicates.len() as f64;
        let mean = self.replicates.iter().map(&f).sum::<f64>() / n;
        let var = self.replicates.iter().map(|o| (f(o) - mean).powi(2)).sum::<f64>() / n;
        ReplicateStats { mean, stddev: var.sqrt() }
    }
}

/// Extractor of one summarisable outcome metric.
type MetricFn = fn(&ScenarioOutcome) -> f64;

/// A cross-scenario/scheme ratio computed by the report.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Scenario the comparison belongs to.
    pub scenario: String,
    /// Metric being compared.
    pub metric: String,
    /// Scheme in the numerator.
    pub scheme: String,
    /// Scheme in the denominator.
    pub baseline: String,
    /// `scheme / baseline` mean-over-replicates ratio.
    pub ratio: f64,
}

/// The structured result of a sweep: per-cell rows plus derived
/// comparisons. Bit-deterministic for a fixed seed regardless of thread
/// count — [`ScenarioReport::stable_fingerprint`] pins that.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// One row per `(scenario, scheme)` in matrix order.
    pub rows: Vec<ScenarioRow>,
    /// Derived comparisons (scheme vs in-scenario flooding baseline).
    pub comparisons: Vec<Comparison>,
}

impl ScenarioReport {
    /// Assemble a report and derive its comparisons: inside every scenario
    /// that ran a `flooding` baseline, each other scheme gets
    /// `tx_per_delivered` and `energy_per_node_epoch` ratios against it.
    pub fn new(rows: Vec<ScenarioRow>) -> Self {
        let mut comparisons = Vec::new();
        for row in &rows {
            if row.scheme == "flooding" {
                continue;
            }
            let Some(base) =
                rows.iter().find(|b| b.scenario == row.scenario && b.scheme == "flooding")
            else {
                continue;
            };
            type Metric = fn(&ScenarioOutcome) -> f64;
            for (metric, f) in [
                ("tx_per_delivered", (|o: &ScenarioOutcome| o.tx_per_delivered) as Metric),
                ("energy_per_node_epoch", |o: &ScenarioOutcome| o.energy_per_node_epoch),
            ] {
                let denom = base.mean(f);
                if denom > 0.0 {
                    comparisons.push(Comparison {
                        scenario: row.scenario.clone(),
                        metric: metric.to_string(),
                        scheme: row.scheme.clone(),
                        baseline: "flooding".to_string(),
                        ratio: row.mean(f) / denom,
                    });
                }
            }
        }
        ScenarioReport { rows, comparisons }
    }

    /// Order-sensitive fingerprint over every outcome and comparison.
    /// Equal seeds and equal code yield equal fingerprints across runs,
    /// machines and thread counts.
    pub fn stable_fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.rows.len() as u64);
        for row in &self.rows {
            h.str(&row.scenario);
            h.str(&row.scheme);
            h.u64(row.replicates.len() as u64);
            for o in &row.replicates {
                o.mix(&mut h);
            }
        }
        for c in &self.comparisons {
            h.str(&c.scenario);
            h.str(&c.metric);
            h.str(&c.scheme);
            h.f64(c.ratio);
        }
        h.finish()
    }

    /// The metrics summarised per row by the replicate-variance section
    /// of the JSON report.
    const SUMMARY_METRICS: [(&'static str, MetricFn); 4] = [
        ("delivery_ratio", |o| o.delivery_ratio),
        ("tx_per_delivered", |o| o.tx_per_delivered),
        ("energy_per_node_epoch", |o| o.energy_per_node_epoch),
        ("cost_ratio_vs_flooding", |o| o.cost_ratio_vs_flooding),
    ];

    /// Render the full report as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object();
        doc.set("schema", Json::Str("dirq-scenario-report-v1".to_string()));
        doc.set(
            "scenarios",
            Json::Arr(
                self.rows
                    .iter()
                    .flat_map(|row| row.replicates.iter().map(ScenarioOutcome::to_json))
                    .collect(),
            ),
        );
        // Replicate-variance summary: mean ± stddev per (scenario, scheme)
        // cell. Derived from the outcomes above, so it carries no extra
        // fingerprint weight.
        doc.set(
            "rows",
            Json::Arr(
                self.rows
                    .iter()
                    .map(|row| {
                        let mut o = Json::object();
                        o.set("scenario", Json::Str(row.scenario.clone()));
                        o.set("scheme", Json::Str(row.scheme.clone()));
                        o.set("replicates", Json::Num(row.replicates.len() as f64));
                        for (name, f) in Self::SUMMARY_METRICS {
                            let s = row.stats(f);
                            o.set(&format!("{name}_mean"), Json::Num(round6(s.mean)));
                            o.set(&format!("{name}_stddev"), Json::Num(round6(s.stddev)));
                        }
                        o
                    })
                    .collect(),
            ),
        );
        doc.set(
            "comparisons",
            Json::Arr(
                self.comparisons
                    .iter()
                    .map(|c| {
                        let mut o = Json::object();
                        o.set("scenario", Json::Str(c.scenario.clone()));
                        o.set("metric", Json::Str(c.metric.clone()));
                        o.set("scheme", Json::Str(c.scheme.clone()));
                        o.set("baseline", Json::Str(c.baseline.clone()));
                        o.set("ratio", Json::Num(round6(c.ratio)));
                        o
                    })
                    .collect(),
            ),
        );
        doc.set("report_fingerprint", Json::Str(format!("{:#018X}", self.stable_fingerprint())));
        doc
    }

    /// Human-readable summary table (means over replicates per row).
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new([
            "scenario",
            "scheme",
            "nodes",
            "epochs",
            "delivery",
            "tx/delivered",
            "energy/node/ep",
            "vs_flooding",
            "probes/query",
        ]);
        for row in &self.rows {
            let n = row.replicates.first().map(|o| o.n_nodes).unwrap_or(0);
            let epochs = row.replicates.first().map(|o| o.epochs).unwrap_or(0);
            t.row([
                row.scenario.clone(),
                row.scheme.clone(),
                n.to_string(),
                epochs.to_string(),
                fnum(row.mean(|o| o.delivery_ratio), 3),
                fnum(row.mean(|o| o.tx_per_delivered), 2),
                fnum(row.mean(|o| o.energy_per_node_epoch), 3),
                fnum(row.mean(|o| o.cost_ratio_vs_flooding), 3),
                fnum(row.mean(|o| o.calibration_probes_per_query), 0),
            ]);
        }
        t
    }
}

fn round6(x: f64) -> f64 {
    if x.is_finite() {
        (x * 1e6).round() / 1e6
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(scenario: &str, scheme: &str, tx: f64, energy: f64) -> ScenarioOutcome {
        ScenarioOutcome {
            scenario: scenario.to_string(),
            scheme: scheme.to_string(),
            seed: 1,
            n_nodes: 100,
            epochs: 500,
            delivery_ratio: 0.95,
            tx_per_delivered: tx,
            energy_per_node_epoch: energy,
            cost_ratio_vs_flooding: 0.5,
            mean_overshoot_pct: 4.0,
            calibration_probes_per_query: 35.0,
            fingerprint: 0xABCD,
        }
    }

    fn report() -> ScenarioReport {
        ScenarioReport::new(vec![
            ScenarioRow {
                scenario: "h2h".into(),
                scheme: "dirq-atc".into(),
                replicates: vec![outcome("h2h", "dirq-atc", 2.0, 0.4)],
            },
            ScenarioRow {
                scenario: "h2h".into(),
                scheme: "flooding".into(),
                replicates: vec![outcome("h2h", "flooding", 8.0, 1.6)],
            },
            ScenarioRow {
                scenario: "solo".into(),
                scheme: "dirq-atc".into(),
                replicates: vec![outcome("solo", "dirq-atc", 3.0, 0.5)],
            },
        ])
    }

    #[test]
    fn comparisons_only_against_in_scenario_flooding() {
        let r = report();
        assert_eq!(r.comparisons.len(), 2, "solo scenario has no baseline");
        assert!(r.comparisons.iter().all(|c| c.scenario == "h2h"));
        let tx = r.comparisons.iter().find(|c| c.metric == "tx_per_delivered").unwrap();
        assert!((tx.ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_sensitive_to_outcomes() {
        let a = report();
        let mut b = report();
        assert_eq!(a.stable_fingerprint(), b.stable_fingerprint());
        b.rows[0].replicates[0].fingerprint ^= 1;
        let b = ScenarioReport::new(b.rows);
        assert_ne!(a.stable_fingerprint(), b.stable_fingerprint());
    }

    #[test]
    fn json_round_trips_and_carries_fingerprint() {
        let r = report();
        let doc = r.to_json();
        let text = doc.render_pretty();
        let parsed = dirq_sim::json::Json::parse(&text).expect("report JSON must parse");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some("dirq-scenario-report-v1"));
        assert_eq!(parsed.get("scenarios").and_then(Json::as_array).unwrap().len(), 3);
        let fp = parsed.get("report_fingerprint").and_then(Json::as_str).unwrap();
        assert_eq!(fp, format!("{:#018X}", r.stable_fingerprint()));
    }

    #[test]
    fn replicate_stats_mean_and_stddev() {
        let mut row = ScenarioRow {
            scenario: "s".into(),
            scheme: "k".into(),
            replicates: vec![
                outcome("s", "k", 2.0, 0.1),
                outcome("s", "k", 4.0, 0.3),
                outcome("s", "k", 6.0, 0.5),
            ],
        };
        let s = row.stats(|o| o.tx_per_delivered);
        assert!((s.mean - 4.0).abs() < 1e-12);
        // Population stddev of {2, 4, 6} = sqrt(8/3).
        assert!((s.stddev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12, "stddev {}", s.stddev);
        // A single replicate has zero spread, not NaN.
        row.replicates.truncate(1);
        let s = row.stats(|o| o.tx_per_delivered);
        assert_eq!((s.mean, s.stddev), (2.0, 0.0));
        row.replicates.clear();
        assert_eq!(row.stats(|o| o.tx_per_delivered), ReplicateStats { mean: 0.0, stddev: 0.0 });
    }

    #[test]
    fn replicate_summary_round_trips_through_json() {
        let mut base = report();
        // Give the head-to-head DirQ row a second replicate with spread.
        base.rows[0].replicates.push(outcome("h2h", "dirq-atc", 4.0, 0.8));
        let r = ScenarioReport::new(base.rows);
        let text = r.to_json().render_pretty();
        let parsed = dirq_sim::json::Json::parse(&text).expect("report JSON must parse");
        let rows = parsed.get("rows").and_then(Json::as_array).expect("rows section");
        assert_eq!(rows.len(), r.rows.len(), "one summary row per (scenario, scheme)");
        for (json_row, row) in rows.iter().zip(&r.rows) {
            assert_eq!(
                json_row.get("scenario").and_then(Json::as_str),
                Some(row.scenario.as_str())
            );
            assert_eq!(json_row.get("scheme").and_then(Json::as_str), Some(row.scheme.as_str()));
            assert_eq!(
                json_row.get("replicates").and_then(Json::as_f64),
                Some(row.replicates.len() as f64)
            );
            for (name, f) in ScenarioReport::SUMMARY_METRICS {
                let stats = row.stats(f);
                let mean = json_row.get(&format!("{name}_mean")).and_then(Json::as_f64).unwrap();
                let sd = json_row.get(&format!("{name}_stddev")).and_then(Json::as_f64).unwrap();
                assert!((mean - stats.mean).abs() < 1e-6, "{name} mean drifted");
                assert!((sd - stats.stddev).abs() < 1e-6, "{name} stddev drifted");
            }
        }
        // The two-replicate row really reports spread.
        let first = &rows[0];
        assert!(first.get("tx_per_delivered_stddev").and_then(Json::as_f64).unwrap() > 0.0);
        // Adding the derived section must not disturb the pinned
        // fingerprint (it would invalidate every golden).
        assert_eq!(
            ScenarioReport::new(report().rows).stable_fingerprint(),
            report().stable_fingerprint()
        );
    }

    #[test]
    fn summary_table_has_one_row_per_cell() {
        let t = report().summary_table();
        assert_eq!(t.len(), 3);
        assert!(t.to_csv().contains("h2h,flooding"));
    }
}
