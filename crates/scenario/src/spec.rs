//! Declarative scenario descriptions.
//!
//! A [`ScenarioSpec`] names one experiment setup — topology family and
//! size, churn schedule, workload mix, sensor-type profile, the schemes
//! under test and an epoch budget — in units that stay meaningful when the
//! run is scaled (churn windows are fractions of the run, not absolute
//! epochs). [`ScenarioSpec::config`] lowers a spec to the engine's
//! [`ScenarioConfig`] for one concrete `(scheme, seed)` pair.

use dirq_core::{AtcConfig, ChurnSpec, DeltaPolicy, Protocol, RadioSpec, ScenarioConfig, TreeKind};
use dirq_lmac::LmacConfig;
use dirq_net::churn::{ChurnEvent, ChurnPlan};
use dirq_net::placement::{Placement, SinkPlacement};
use dirq_net::NodeId;

/// A dissemination scheme under test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scheme {
    /// DirQ with a fixed threshold δ (percent).
    DirqFixed(f64),
    /// DirQ with Adaptive Threshold Control (default band).
    DirqAtc,
    /// The flooding baseline.
    Flooding,
}

impl Scheme {
    /// Stable label used in reports and JSON artifacts.
    pub fn label(&self) -> String {
        match self {
            // f64 Display keeps fractional deltas distinct (5.0 → "5",
            // 2.4 → "2.4") — labels are row identity in reports.
            Scheme::DirqFixed(d) => format!("dirq-delta{d}"),
            Scheme::DirqAtc => "dirq-atc".to_string(),
            Scheme::Flooding => "flooding".to_string(),
        }
    }

    /// Invert [`Scheme::label`] — the daemon wire protocol and the
    /// `BENCH_3.json` staleness check both name schemes by label.
    pub fn parse(label: &str) -> Option<Scheme> {
        match label {
            "dirq-atc" => Some(Scheme::DirqAtc),
            "flooding" => Some(Scheme::Flooding),
            other => {
                let delta: f64 = other.strip_prefix("dirq-delta")?.parse().ok()?;
                (delta.is_finite() && delta > 0.0).then_some(Scheme::DirqFixed(delta))
            }
        }
    }

    fn apply(&self, cfg: &mut ScenarioConfig) {
        match *self {
            Scheme::DirqFixed(d) => {
                cfg.protocol = Protocol::Dirq;
                cfg.delta_policy = DeltaPolicy::Fixed(d);
            }
            Scheme::DirqAtc => {
                cfg.protocol = Protocol::Dirq;
                cfg.delta_policy = DeltaPolicy::Adaptive(AtcConfig::default());
            }
            Scheme::Flooding => {
                cfg.protocol = Protocol::Flooding;
                cfg.delta_policy = DeltaPolicy::Fixed(5.0);
            }
        }
    }
}

/// Churn expressed in run-relative units so epoch rescaling preserves the
/// experiment's shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnProfile {
    /// Fixed topology.
    None,
    /// Kill `fraction` of the nodes at uniform epochs inside
    /// `[from · epochs, until · epochs)`, rejecting victim sets that would
    /// sever any still-alive node from the sink.
    RandomDeaths {
        /// Fraction of nodes that die over the run.
        fraction: f64,
        /// Window start as a fraction of the run.
        from: f64,
        /// Window end (exclusive) as a fraction of the run.
        until: f64,
    },
    /// Staged redeployment: the `fraction` of nodes with the **highest
    /// ids** start offline and are *born* at epochs spread evenly across
    /// `[from · epochs, until · epochs)` — the paper's "addition of new
    /// nodes" topology dynamic. Deterministic (no RNG draw), so the
    /// schedule is stable under epoch rescaling.
    LateBirths {
        /// Fraction of nodes that join after deployment.
        fraction: f64,
        /// Window start as a fraction of the run.
        from: f64,
        /// Window end (exclusive) as a fraction of the run.
        until: f64,
    },
}

/// One named experiment setup. Construct via [`ScenarioSpec::builder`].
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Registry name (stable identifier in reports).
    pub name: String,
    /// Deployment size including the sink.
    pub n_nodes: usize,
    /// Node layout (topology family).
    pub placement: Placement,
    /// Sink position.
    pub sink: SinkPlacement,
    /// Secondary sinks wired to the primary by a backhaul; nodes attach to
    /// their nearest sink (see [`ScenarioConfig::extra_sinks`]). 0 =
    /// single-sink.
    pub extra_sinks: usize,
    /// Radio range, metres (unit-disk model; ignored under a
    /// [`RadioSpec::LogDistance`] radio, whose range follows from its link
    /// budget).
    pub radio_range: f64,
    /// Radio connectivity model.
    pub radio: RadioSpec,
    /// Run length in epochs at scale 1.0.
    pub epochs: u64,
    /// Queries fire every this many epochs.
    pub query_period: u64,
    /// Involvement target of the calibrated workload.
    pub target_fraction: f64,
    /// Share of queries that are spatially scoped (enables the location
    /// extension when > 0).
    pub spatial_query_fraction: f64,
    /// Heterogeneous sensor profile: fraction of sensing nodes carrying
    /// each of the four environmental types.
    pub sensor_coverage: f64,
    /// Schemes to run (every scheme sees the identical world/topology).
    pub schemes: Vec<Scheme>,
    /// Churn schedule in run-relative units.
    pub churn: ChurnProfile,
    /// Spanning-tree construction.
    pub tree: TreeKind,
    /// LMAC slots per frame (must exceed the densest 2-hop neighbourhood).
    pub slots_per_frame: u16,
    /// Epochs a query waits before scoring (scale with tree depth).
    pub completion_window: u64,
    /// Base seed; replicates derive from it.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Start building a spec with the registry defaults.
    pub fn builder(name: &str, n_nodes: usize) -> ScenarioSpecBuilder {
        ScenarioSpecBuilder {
            spec: ScenarioSpec {
                name: name.to_string(),
                n_nodes,
                placement: Placement::UniformRandom { side: 100.0 },
                sink: SinkPlacement::Corner,
                extra_sinks: 0,
                radio_range: 28.0,
                radio: RadioSpec::UnitDisk,
                epochs: 2_000,
                query_period: 20,
                target_fraction: 0.4,
                spatial_query_fraction: 0.0,
                sensor_coverage: 0.8,
                schemes: vec![Scheme::DirqFixed(5.0)],
                churn: ChurnProfile::None,
                tree: TreeKind::Bfs,
                slots_per_frame: 64,
                completion_window: 24,
                seed: 42,
            },
        }
    }

    /// Warm-up epochs excluded from aggregates for this run length.
    pub fn measure_from(&self) -> u64 {
        (self.epochs / 5).min(2_000)
    }

    /// A copy with the epoch budget scaled by `factor` (floored at four
    /// query periods so every run still scores queries). Churn windows and
    /// the measurement window scale along automatically.
    pub fn scaled(&self, factor: f64) -> ScenarioSpec {
        assert!(factor > 0.0, "epoch scale must be positive");
        let mut spec = self.clone();
        spec.epochs = ((self.epochs as f64 * factor) as u64).max(4 * self.query_period);
        spec
    }

    /// Lower to an engine configuration for one `(scheme, seed)` pair.
    pub fn config(&self, scheme: Scheme, seed: u64) -> ScenarioConfig {
        let churn = match self.churn {
            ChurnProfile::None => ChurnSpec::None,
            ChurnProfile::RandomDeaths { fraction, from, until } => {
                let deaths = ((self.n_nodes as f64 * fraction).round() as usize)
                    .clamp(1, self.n_nodes.saturating_sub(2));
                let from_epoch = (self.epochs as f64 * from) as u64;
                let until_epoch = ((self.epochs as f64 * until) as u64).max(from_epoch + 1);
                ChurnSpec::RandomDeaths { deaths, from_epoch, until_epoch }
            }
            ChurnProfile::LateBirths { fraction, from, until } => {
                let count = ((self.n_nodes as f64 * fraction).round() as usize)
                    .clamp(1, self.n_nodes.saturating_sub(2));
                let from_epoch = ((self.epochs as f64 * from) as u64).max(1);
                let until_epoch = ((self.epochs as f64 * until) as u64).max(from_epoch + 1);
                let events = (0..count)
                    .map(|i| {
                        let node = NodeId::from_index(self.n_nodes - 1 - i);
                        let epoch =
                            from_epoch + ((until_epoch - from_epoch) * i as u64) / count as u64;
                        (epoch, ChurnEvent::Birth(node))
                    })
                    .collect();
                ChurnSpec::Explicit(ChurnPlan::new(events))
            }
        };
        let mut cfg = ScenarioConfig {
            n_nodes: self.n_nodes,
            side: self.placement.side(),
            placement: Some(self.placement.clone()),
            sink: self.sink,
            extra_sinks: self.extra_sinks,
            radio_range: self.radio_range,
            radio: self.radio,
            epochs: self.epochs,
            query_period: self.query_period,
            target_fraction: self.target_fraction,
            sensor_coverage: self.sensor_coverage,
            tree: self.tree,
            lmac: LmacConfig { slots_per_frame: self.slots_per_frame, ..LmacConfig::default() },
            churn,
            completion_window: self.completion_window,
            measure_from_epoch: self.measure_from(),
            location_enabled: self.spatial_query_fraction > 0.0,
            spatial_query_fraction: self.spatial_query_fraction,
            ..ScenarioConfig::paper(seed)
        };
        scheme.apply(&mut cfg);
        cfg
    }
}

/// Chained construction of a [`ScenarioSpec`]; [`ScenarioSpecBuilder::build`]
/// validates the result.
#[derive(Clone, Debug)]
pub struct ScenarioSpecBuilder {
    spec: ScenarioSpec,
}

impl ScenarioSpecBuilder {
    /// Set the node layout and sink position.
    pub fn placement(mut self, placement: Placement, sink: SinkPlacement) -> Self {
        self.spec.placement = placement;
        self.spec.sink = sink;
        self
    }

    /// Add wired secondary sinks (nearest-sink attachment).
    pub fn extra_sinks(mut self, count: usize) -> Self {
        self.spec.extra_sinks = count;
        self
    }

    /// Set the radio range, metres.
    pub fn radio_range(mut self, metres: f64) -> Self {
        self.spec.radio_range = metres;
        self
    }

    /// Replace the radio connectivity model (lossy-radio scenarios).
    pub fn radio(mut self, radio: RadioSpec) -> Self {
        self.spec.radio = radio;
        self
    }

    /// Set the epoch budget.
    pub fn epochs(mut self, epochs: u64) -> Self {
        self.spec.epochs = epochs;
        self
    }

    /// Set the workload: involvement target and query period.
    pub fn workload(mut self, target_fraction: f64, query_period: u64) -> Self {
        self.spec.target_fraction = target_fraction;
        self.spec.query_period = query_period;
        self
    }

    /// Make a share of the queries spatially scoped (hotspot workloads).
    pub fn spatial_fraction(mut self, fraction: f64) -> Self {
        self.spec.spatial_query_fraction = fraction;
        self
    }

    /// Set the heterogeneous sensor-coverage fraction.
    pub fn sensor_coverage(mut self, coverage: f64) -> Self {
        self.spec.sensor_coverage = coverage;
        self
    }

    /// Replace the schemes under test.
    pub fn schemes(mut self, schemes: Vec<Scheme>) -> Self {
        self.spec.schemes = schemes;
        self
    }

    /// Set the churn profile.
    pub fn churn(mut self, churn: ChurnProfile) -> Self {
        self.spec.churn = churn;
        self
    }

    /// Set the spanning-tree construction.
    pub fn tree(mut self, tree: TreeKind) -> Self {
        self.spec.tree = tree;
        self
    }

    /// Set the LMAC frame size (for dense deployments).
    pub fn slots_per_frame(mut self, slots: u16) -> Self {
        self.spec.slots_per_frame = slots;
        self
    }

    /// Set the query completion window (scale with tree depth).
    pub fn completion_window(mut self, epochs: u64) -> Self {
        self.spec.completion_window = epochs;
        self
    }

    /// Set the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Validate and return the spec.
    ///
    /// # Panics
    /// Panics on structurally invalid specs (no schemes, bad fractions,
    /// too few nodes or epochs) — specs are authored, not parsed, so a
    /// loud failure at construction is the useful behaviour.
    pub fn build(self) -> ScenarioSpec {
        let s = &self.spec;
        assert!(s.n_nodes >= 2, "{}: need at least the sink and one node", s.name);
        assert!(!s.schemes.is_empty(), "{}: at least one scheme required", s.name);
        assert!(
            (0.0..=1.0).contains(&s.target_fraction)
                && (0.0..=1.0).contains(&s.sensor_coverage)
                && (0.0..=1.0).contains(&s.spatial_query_fraction),
            "{}: fractions must be in [0, 1]",
            s.name
        );
        assert!(s.epochs >= 4 * s.query_period, "{}: too few epochs to score queries", s.name);
        assert!(s.extra_sinks + 1 < s.n_nodes, "{}: too many extra sinks", s.name);
        if let ChurnProfile::RandomDeaths { fraction, from, until }
        | ChurnProfile::LateBirths { fraction, from, until } = s.churn
        {
            assert!((0.0..1.0).contains(&fraction), "{}: churn fraction out of range", s.name);
            assert!(0.0 <= from && from < until && until <= 1.0, "{}: bad churn window", s.name);
        }
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> ScenarioSpec {
        ScenarioSpec::builder("demo", 120)
            .placement(Placement::UniformRandom { side: 250.0 }, SinkPlacement::Center)
            .radio_range(40.0)
            .epochs(1_000)
            .workload(0.3, 25)
            .sensor_coverage(0.5)
            .schemes(vec![Scheme::DirqAtc, Scheme::Flooding])
            .churn(ChurnProfile::RandomDeaths { fraction: 0.1, from: 0.2, until: 0.6 })
            .completion_window(40)
            .seed(7)
            .build()
    }

    #[test]
    fn builder_sets_every_field() {
        let s = demo();
        assert_eq!(s.n_nodes, 120);
        assert_eq!(s.sink, SinkPlacement::Center);
        assert_eq!(s.schemes.len(), 2);
        assert_eq!(s.measure_from(), 200);
    }

    #[test]
    fn config_lowers_run_relative_churn() {
        let s = demo();
        let cfg = s.config(Scheme::DirqAtc, 7);
        match cfg.churn {
            ChurnSpec::RandomDeaths { deaths, from_epoch, until_epoch } => {
                assert_eq!(deaths, 12);
                assert_eq!(from_epoch, 200);
                assert_eq!(until_epoch, 600);
            }
            other => panic!("wrong churn lowering: {other:?}"),
        }
        assert_eq!(cfg.n_nodes, 120);
        assert_eq!(cfg.side, 250.0);
        assert!(matches!(cfg.delta_policy, DeltaPolicy::Adaptive(_)));
        assert_eq!(cfg.protocol, Protocol::Dirq);
        let flood = s.config(Scheme::Flooding, 7);
        assert_eq!(flood.protocol, Protocol::Flooding);
    }

    #[test]
    fn scaling_preserves_churn_shape() {
        let s = demo().scaled(0.5);
        assert_eq!(s.epochs, 500);
        let cfg = s.config(Scheme::DirqAtc, 7);
        match cfg.churn {
            ChurnSpec::RandomDeaths { from_epoch, until_epoch, .. } => {
                assert_eq!(from_epoch, 100);
                assert_eq!(until_epoch, 300);
            }
            other => panic!("wrong churn lowering: {other:?}"),
        }
        // Scaling floors at four query periods.
        assert_eq!(demo().scaled(0.001).epochs, 100);
    }

    #[test]
    fn extra_sinks_lower_into_the_engine_config() {
        let s = ScenarioSpec::builder("multi", 60).extra_sinks(3).build();
        let cfg = s.config(Scheme::DirqFixed(5.0), 1);
        assert_eq!(cfg.extra_sinks, 3);
        assert_eq!(demo().config(Scheme::Flooding, 7).extra_sinks, 0);
    }

    #[test]
    fn late_births_lower_to_a_deterministic_explicit_plan() {
        let s = ScenarioSpec::builder("births", 100)
            .epochs(1_000)
            .churn(ChurnProfile::LateBirths { fraction: 0.1, from: 0.3, until: 0.5 })
            .build();
        let cfg = s.config(Scheme::DirqFixed(5.0), 1);
        let ChurnSpec::Explicit(plan) = cfg.churn else {
            panic!("births must lower to an explicit plan");
        };
        assert_eq!(plan.len(), 10);
        // Highest ids, born at evenly spread epochs inside the window.
        let nodes: Vec<NodeId> = plan.events().iter().map(|&(_, ev)| ev.node()).collect();
        for id in 90..100u32 {
            assert!(nodes.contains(&NodeId(id)), "node {id} missing from the births");
        }
        assert!(plan
            .events()
            .iter()
            .all(|&(e, ev)| { (300..500).contains(&e) && matches!(ev, ChurnEvent::Birth(_)) }));
        assert_eq!(plan.initially_offline().len(), 10);
        // Same plan on every lowering (no RNG involved).
        let again = s.config(Scheme::DirqFixed(5.0), 99);
        let ChurnSpec::Explicit(plan2) = again.churn else { unreachable!() };
        assert_eq!(plan.events(), plan2.events());
    }

    #[test]
    #[should_panic(expected = "too many extra sinks")]
    fn oversubscribed_extra_sinks_rejected() {
        let _ = ScenarioSpec::builder("bad", 4).extra_sinks(3).build();
    }

    #[test]
    fn spatial_workload_enables_location() {
        let s = ScenarioSpec::builder("spatial", 50).spatial_fraction(0.5).build();
        let cfg = s.config(Scheme::DirqFixed(5.0), 1);
        assert!(cfg.location_enabled);
        assert_eq!(cfg.spatial_query_fraction, 0.5);
    }

    #[test]
    fn scheme_labels_are_stable() {
        assert_eq!(Scheme::DirqFixed(5.0).label(), "dirq-delta5");
        assert_eq!(Scheme::DirqAtc.label(), "dirq-atc");
        assert_eq!(Scheme::Flooding.label(), "flooding");
    }

    #[test]
    #[should_panic(expected = "at least one scheme")]
    fn empty_schemes_rejected() {
        let _ = ScenarioSpec::builder("bad", 50).schemes(vec![]).build();
    }

    #[test]
    #[should_panic(expected = "bad churn window")]
    fn inverted_churn_window_rejected() {
        let _ = ScenarioSpec::builder("bad", 50)
            .churn(ChurnProfile::RandomDeaths { fraction: 0.1, from: 0.8, until: 0.2 })
            .build();
    }
}
