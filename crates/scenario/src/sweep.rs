//! The deterministic sweep executor.
//!
//! Expands a scenario matrix — every spec × its schemes × seed replicates
//! — into independent simulation jobs, fans them over
//! [`dirq_sim::runner::run_matrix`] worker threads, and assembles the
//! ordered [`ScenarioReport`]. Individual runs are single-threaded and
//! deterministic and the executor preserves matrix order, so the report
//! (and its fingerprint) is identical across runs and thread counts.

use dirq_core::run_scenario;
use dirq_sim::runner::run_matrix;

use crate::report::{ScenarioOutcome, ScenarioReport, ScenarioRow};
use crate::spec::ScenarioSpec;

/// Execution parameters of one sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Worker threads fanning runs of the matrix (0 = all cores). Never
    /// affects results.
    pub threads: usize,
    /// Seed replicates per `(scenario, scheme)` cell.
    pub replicates: usize,
    /// Multiplier on every spec's epoch budget (quick runs / CI smoke).
    pub epoch_scale: f64,
    /// Intra-run MAC workers ([`dirq_lmac::LmacConfig::workers`]): the
    /// colour-class parallel slot loop inside each simulation. Like
    /// `threads`, never affects results — the parallel frame is
    /// bit-identical, and the CI smoke gate enforces it.
    pub mac_workers: usize,
    /// Intra-run world-generation workers
    /// ([`dirq_core::ScenarioConfig::world_workers`]): the split-stream
    /// parallel world advance inside each simulation. Never affects
    /// results — bit-identical at any count, enforced by the CI smoke
    /// worker matrix and the world differential suite.
    pub world_workers: usize,
    /// Intra-run protocol-dispatch workers
    /// ([`dirq_core::ScenarioConfig::dispatch_workers`]): sharded
    /// indication dispatch between MAC slots inside each simulation.
    /// Never affects results — bit-identical at any count, enforced by
    /// the CI smoke worker matrix and the dispatch differential suite.
    pub dispatch_workers: usize,
    /// Intra-run protocol-upkeep workers
    /// ([`dirq_core::ScenarioConfig::upkeep_workers`]): sharded sensor
    /// sampling and tree-repair scans inside each simulation. Never
    /// affects results — bit-identical at any count, enforced by the CI
    /// smoke worker matrix and the upkeep differential suite.
    pub upkeep_workers: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            threads: 0,
            replicates: 1,
            epoch_scale: 1.0,
            mac_workers: 1,
            world_workers: 1,
            dispatch_workers: 1,
            upkeep_workers: 1,
        }
    }
}

/// Derive the seed of replicate `rep` from a spec's base seed. Replicate 0
/// uses the base seed itself, so single-replicate sweeps match direct
/// [`ScenarioSpec::config`] runs.
pub fn replicate_seed(base: u64, rep: usize) -> u64 {
    base ^ (rep as u64).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Run the full matrix and assemble the report.
pub fn run_matrix_report(specs: &[ScenarioSpec], cfg: &SweepConfig) -> ScenarioReport {
    assert!(cfg.replicates > 0, "at least one replicate required");
    // One cell per (spec, scheme); replication is the matrix's second axis.
    let cells: Vec<(usize, usize)> = specs
        .iter()
        .enumerate()
        .flat_map(|(si, s)| (0..s.schemes.len()).map(move |ki| (si, ki)))
        .collect();
    let results = run_matrix(&cells, cfg.replicates, cfg.threads, |&(si, ki), rep| {
        let spec = specs[si].scaled(cfg.epoch_scale);
        let scheme = spec.schemes[ki];
        let seed = replicate_seed(spec.seed, rep);
        let mut run_cfg = spec.config(scheme, seed);
        run_cfg.lmac.workers = cfg.mac_workers.max(1);
        run_cfg.world_workers = cfg.world_workers.max(1);
        run_cfg.dispatch_workers = cfg.dispatch_workers.max(1);
        run_cfg.upkeep_workers = cfg.upkeep_workers.max(1);
        let run = run_scenario(run_cfg);
        ScenarioOutcome::from_run(&spec.name, &scheme.label(), seed, &run)
    });
    let rows = cells
        .into_iter()
        .zip(results)
        .map(|((si, ki), replicates)| ScenarioRow {
            scenario: specs[si].name.clone(),
            scheme: specs[si].schemes[ki].label(),
            replicates,
        })
        .collect();
    ScenarioReport::new(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use crate::spec::Scheme;

    fn tiny_matrix() -> Vec<ScenarioSpec> {
        // The smoke grid plus a head-to-head cell, both heavily scaled so
        // the debug-mode test stays quick.
        vec![
            registry::smoke().scaled(0.5),
            ScenarioSpec::builder("tiny_h2h", 40)
                .epochs(300)
                .schemes(vec![Scheme::DirqFixed(5.0), Scheme::Flooding])
                .seed(9)
                .build(),
        ]
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let specs = tiny_matrix();
        let cfg1 = SweepConfig { threads: 1, ..SweepConfig::default() };
        let cfg4 = SweepConfig { threads: 4, ..SweepConfig::default() };
        let a = run_matrix_report(&specs, &cfg1);
        let b = run_matrix_report(&specs, &cfg4);
        assert_eq!(a.stable_fingerprint(), b.stable_fingerprint());
        assert_eq!(a.rows.len(), 3, "one row per (scenario, scheme)");
    }

    #[test]
    fn replicates_get_distinct_seeds_and_stable_order() {
        let specs = vec![tiny_matrix().remove(1)];
        let cfg = SweepConfig { threads: 0, replicates: 2, ..SweepConfig::default() };
        let r = run_matrix_report(&specs, &cfg);
        for row in &r.rows {
            assert_eq!(row.replicates.len(), 2);
            assert_ne!(row.replicates[0].seed, row.replicates[1].seed);
            assert_eq!(row.replicates[0].seed, replicate_seed(9, 0));
        }
    }

    #[test]
    fn mac_workers_are_result_invariant() {
        // The colour-class parallel slot loop must never change a report:
        // same fingerprint with the serial MAC and with 4 workers.
        let specs = vec![tiny_matrix().remove(1)];
        let serial = run_matrix_report(&specs, &SweepConfig::default());
        let sharded =
            run_matrix_report(&specs, &SweepConfig { mac_workers: 4, ..SweepConfig::default() });
        assert_eq!(serial.stable_fingerprint(), sharded.stable_fingerprint());
    }

    #[test]
    fn world_workers_are_result_invariant() {
        // The world_workers knob must never change a report: same
        // fingerprint serial and with 4 world workers. (The tiny matrix
        // sits below the world's sharding threshold, so this pins the
        // knob's serial resolution; the sharded advance itself is pinned
        // by tests/world_differential.rs and the scenario_matrix smoke.)
        let specs = vec![tiny_matrix().remove(1)];
        let serial = run_matrix_report(&specs, &SweepConfig::default());
        let sharded =
            run_matrix_report(&specs, &SweepConfig { world_workers: 4, ..SweepConfig::default() });
        assert_eq!(serial.stable_fingerprint(), sharded.stable_fingerprint());
    }

    #[test]
    fn dispatch_workers_are_result_invariant() {
        // The dispatch_workers knob must never change a report: same
        // fingerprint serial and with 4 dispatch workers. (The tiny matrix
        // sits below the dispatch sharding node floor, so this pins the
        // knob's serial resolution; the sharded dispatch itself is pinned
        // by tests/dispatch_differential.rs and the scenario_matrix smoke.)
        let specs = vec![tiny_matrix().remove(1)];
        let serial = run_matrix_report(&specs, &SweepConfig::default());
        let sharded = run_matrix_report(
            &specs,
            &SweepConfig { dispatch_workers: 4, ..SweepConfig::default() },
        );
        assert_eq!(serial.stable_fingerprint(), sharded.stable_fingerprint());
    }

    #[test]
    fn upkeep_workers_are_result_invariant() {
        // The upkeep_workers knob must never change a report: same
        // fingerprint serial and with 4 upkeep workers. (The tiny matrix
        // sits below the upkeep sharding node floor, so this pins the
        // knob's serial resolution; the sharded passes themselves are
        // pinned by tests/upkeep_differential.rs and the scenario_matrix
        // smoke.)
        let specs = vec![tiny_matrix().remove(1)];
        let serial = run_matrix_report(&specs, &SweepConfig::default());
        let sharded =
            run_matrix_report(&specs, &SweepConfig { upkeep_workers: 4, ..SweepConfig::default() });
        assert_eq!(serial.stable_fingerprint(), sharded.stable_fingerprint());
    }

    #[test]
    fn head_to_head_produces_flooding_comparisons() {
        let specs = vec![tiny_matrix().remove(1)];
        let r = run_matrix_report(&specs, &SweepConfig::default());
        assert_eq!(r.comparisons.len(), 2);
        let tx = r.comparisons.iter().find(|c| c.metric == "tx_per_delivered").unwrap();
        assert!(
            tx.ratio < 1.0,
            "DirQ should spend fewer tx per delivered source than flooding: {:.3}",
            tx.ratio
        );
    }

    #[test]
    fn epoch_scale_shrinks_runs() {
        let specs = vec![tiny_matrix().remove(1)];
        let cfg = SweepConfig { epoch_scale: 0.5, ..SweepConfig::default() };
        let r = run_matrix_report(&specs, &cfg);
        assert_eq!(r.rows[0].replicates[0].epochs, 150);
    }
}
