//! # dirq-scenario — declarative large-scale experiment harness
//!
//! The paper evaluates DirQ on a handful of fixed 50-node setups; this
//! crate is the platform for everything beyond that. It separates *what*
//! an experiment is from *how* it runs:
//!
//! * [`spec`] — a declarative [`ScenarioSpec`] (topology family + size,
//!   churn schedule, workload mix, sensor-type profile, schemes under
//!   test, epoch budget, seed) with a builder API. Churn and measurement
//!   windows are run-relative, so a spec scales to quick smoke runs and
//!   full-budget sweeps without changing shape.
//! * [`registry`] — named presets spanning 100–5 000 nodes: dense grid,
//!   sparse random, corridor, clustered hotspot workload, heavy churn,
//!   heterogeneous sensor types, a flooding head-to-head and the
//!   5 000-node stress deployment.
//! * [`sweep`] — a deterministic executor fanning the scenario matrix
//!   (specs × schemes × seed replicates) over worker threads.
//! * [`report`] — per-run [`ScenarioOutcome`]s, cross-scenario
//!   comparisons, a stable fingerprint and JSON rendering.
//!
//! Fixed seeds reproduce bit-identical [`ScenarioReport`]s across runs
//! and thread counts; `tests/scenario_golden.rs` (workspace root) and the
//! `scenario_matrix` bench binary pin the fingerprints.
//!
//! ## Example
//!
//! ```
//! use dirq_scenario::{run_matrix_report, ScenarioSpec, Scheme, SweepConfig};
//!
//! // A small head-to-head: DirQ vs flooding on the same 40-node world.
//! let spec = ScenarioSpec::builder("demo", 40)
//!     .epochs(300)
//!     .schemes(vec![Scheme::DirqFixed(5.0), Scheme::Flooding])
//!     .seed(7)
//!     .build();
//!
//! let report = run_matrix_report(&[spec], &SweepConfig::default());
//! assert_eq!(report.rows.len(), 2);
//! // DirQ undercuts flooding on transmissions per delivered source.
//! let tx = report.comparisons.iter().find(|c| c.metric == "tx_per_delivered").unwrap();
//! assert!(tx.ratio < 1.0);
//! // The JSON artifact round-trips through the workspace parser.
//! let doc = report.to_json();
//! assert!(dirq_sim::json::Json::parse(&doc.render_pretty()).is_ok());
//! ```

#![warn(missing_docs)]

pub mod registry;
pub mod report;
pub mod spec;
pub mod sweep;

pub use registry::{preset, registry, smoke};
pub use report::{Comparison, ScenarioOutcome, ScenarioReport, ScenarioRow};
pub use spec::{ChurnProfile, ScenarioSpec, ScenarioSpecBuilder, Scheme};
pub use sweep::{replicate_seed, run_matrix_report, SweepConfig};
