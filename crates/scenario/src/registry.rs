//! The named preset registry: ready-made large-scale scenarios spanning
//! 100 to 50 000 nodes across the topology families, churn regimes and
//! workload mixes the survey literature asks dissemination schemes to be
//! compared over.
//!
//! Densities are tuned so the mean radio degree stays near the paper's
//! ~12 (2-hop neighbourhoods comfortably inside the LMAC frame), and
//! completion windows scale with expected tree depth so deep deployments
//! still score their queries.

use dirq_core::RadioSpec;
use dirq_net::placement::{Placement, SinkPlacement};

use crate::spec::{ChurnProfile, ScenarioSpec, Scheme};

/// 100 nodes on a jittered grid at high density — the regular-deployment
/// baseline every other preset is judged against.
pub fn dense_grid_100() -> ScenarioSpec {
    ScenarioSpec::builder("dense_grid_100", 100)
        .placement(Placement::JitteredGrid { side: 180.0, jitter: 4.0 }, SinkPlacement::Corner)
        .radio_range(35.0)
        .epochs(4_000)
        .seed(1_001)
        .build()
}

/// 250 nodes uniformly random at low density — deep irregular trees and
/// long routes.
pub fn sparse_random_250() -> ScenarioSpec {
    ScenarioSpec::builder("sparse_random_250", 250)
        .placement(Placement::UniformRandom { side: 400.0 }, SinkPlacement::Corner)
        .radio_range(45.0)
        .epochs(2_400)
        .completion_window(40)
        .seed(1_002)
        .build()
}

/// 400 nodes along a 2 km corridor (pipeline/road monitoring): ~50-hop
/// routes, the deepest trees of any preset.
pub fn corridor_400() -> ScenarioSpec {
    ScenarioSpec::builder("corridor_400", 400)
        .placement(Placement::Corridor { length: 2_000.0, width: 60.0 }, SinkPlacement::Corner)
        .radio_range(40.0)
        .epochs(2_000)
        .completion_window(96)
        .seed(1_003)
        .build()
}

/// 200 nodes in clustered blobs with a spatially scoped (hotspot)
/// workload: 80 % of queries target a region around a random carrier.
pub fn hotspot_workload_200() -> ScenarioSpec {
    ScenarioSpec::builder("hotspot_workload_200", 200)
        .placement(
            Placement::Clustered { side: 300.0, clusters: 8, spread: 55.0 },
            SinkPlacement::Center,
        )
        .radio_range(35.0)
        .epochs(2_400)
        .workload(0.3, 20)
        .spatial_fraction(0.8)
        .slots_per_frame(96)
        .completion_window(32)
        .seed(1_004)
        .build()
}

/// 150 nodes with 20 % of the network dying mid-run — the repair path
/// under sustained pressure.
pub fn heavy_churn_150() -> ScenarioSpec {
    ScenarioSpec::builder("heavy_churn_150", 150)
        .placement(Placement::UniformRandom { side: 220.0 }, SinkPlacement::Corner)
        .radio_range(35.0)
        .epochs(3_000)
        .churn(ChurnProfile::RandomDeaths { fraction: 0.2, from: 0.25, until: 0.6 })
        .completion_window(32)
        .seed(1_005)
        .build()
}

/// 300 nodes where each sensor type is carried by only 30 % of the nodes —
/// the heterogeneous-deployment stress the paper contrasts with TinyDB.
pub fn hetero_types_300() -> ScenarioSpec {
    ScenarioSpec::builder("hetero_types_300", 300)
        .placement(Placement::UniformRandom { side: 380.0 }, SinkPlacement::Corner)
        .radio_range(42.0)
        .epochs(2_400)
        .workload(0.3, 20)
        .sensor_coverage(0.3)
        .schemes(vec![Scheme::DirqAtc])
        .completion_window(40)
        .seed(1_006)
        .build()
}

/// 300 nodes under log-distance path loss with 4 dB shadowing — the lossy
/// irregular neighbourhoods real deployments show, instead of the unit
/// disk. The 46 dB link budget gives a ~35 m mean range at γ = 3.0;
/// raising γ shrinks it (see the exponent-sweep registry test).
pub fn lossy_log_distance_300() -> ScenarioSpec {
    ScenarioSpec::builder("lossy_log_distance_300", 300)
        .placement(Placement::UniformRandom { side: 310.0 }, SinkPlacement::Corner)
        .radio(RadioSpec::LogDistance {
            exponent: 3.0,
            shadowing_sigma_db: 4.0,
            link_budget_db: 46.0,
        })
        .epochs(2_000)
        .slots_per_frame(96)
        .completion_window(48)
        .seed(1_010)
        .build()
}

/// 150 nodes deployed in two waves: 15 % of the network (the highest ids)
/// starts offline and is *born* mid-run — the paper's "addition of new
/// nodes" dynamic, exercising LMAC joins, tree attachment and range-table
/// growth on a live network.
pub fn redeploy_150() -> ScenarioSpec {
    ScenarioSpec::builder("redeploy_150", 150)
        .placement(Placement::UniformRandom { side: 220.0 }, SinkPlacement::Corner)
        .radio_range(35.0)
        .epochs(2_400)
        .churn(ChurnProfile::LateBirths { fraction: 0.15, from: 0.3, until: 0.5 })
        .completion_window(32)
        .seed(1_012)
        .build()
}

/// 250 nodes under shadowed log-distance path loss **and** run-relative
/// churn — the lossy-radio × churn cross the unit-disk presets cannot
/// express: repair decisions made over irregular, shadowed neighbourhoods
/// while 12 % of the network dies.
pub fn churn_lossy_250() -> ScenarioSpec {
    ScenarioSpec::builder("churn_lossy_250", 250)
        .placement(Placement::UniformRandom { side: 280.0 }, SinkPlacement::Corner)
        .radio(RadioSpec::LogDistance {
            exponent: 3.0,
            shadowing_sigma_db: 4.0,
            link_budget_db: 46.0,
        })
        .epochs(1_600)
        .churn(ChurnProfile::RandomDeaths { fraction: 0.12, from: 0.3, until: 0.6 })
        .slots_per_frame(96)
        .completion_window(48)
        .seed(1_013)
        .build()
}

/// 400 nodes on a jittered grid drained by the corner sink plus three
/// wired secondary sinks on the remaining corners: every node attaches to
/// its nearest sink, cutting route depth versus the single-sink variant
/// (pinned by the registry's depth test).
pub fn multi_sink_grid_400() -> ScenarioSpec {
    ScenarioSpec::builder("multi_sink_grid_400", 400)
        .placement(Placement::JitteredGrid { side: 400.0, jitter: 4.0 }, SinkPlacement::Corner)
        .radio_range(35.0)
        .extra_sinks(3)
        .epochs(1_200)
        .completion_window(48)
        .seed(1_014)
        .build()
}

/// 500 nodes running DirQ (ATC) and flooding over the identical
/// deployment — the head-to-head the report's comparisons are built from.
pub fn head_to_head_500() -> ScenarioSpec {
    ScenarioSpec::builder("head_to_head_500", 500)
        .placement(Placement::UniformRandom { side: 500.0 }, SinkPlacement::Corner)
        .radio_range(42.0)
        .epochs(1_600)
        .schemes(vec![Scheme::DirqAtc, Scheme::Flooding])
        .completion_window(48)
        .seed(1_007)
        .build()
}

/// 2 000 nodes on a jittered grid — the first production-scale point of
/// the trajectory (and the ≥2 000-node deployment the bench matrix pins).
pub fn grid_2000() -> ScenarioSpec {
    ScenarioSpec::builder("grid_2000", 2_000)
        .placement(Placement::JitteredGrid { side: 800.0, jitter: 4.0 }, SinkPlacement::Corner)
        .radio_range(30.0)
        .epochs(400)
        .completion_window(80)
        .seed(1_008)
        .build()
}

/// 5 000 nodes uniformly random — above the dense link-matrix limit, so
/// this also exercises the CSR fallback paths end to end.
pub fn stress_5000() -> ScenarioSpec {
    ScenarioSpec::builder("stress_5000", 5_000)
        .placement(Placement::UniformRandom { side: 1_000.0 }, SinkPlacement::Corner)
        .radio_range(28.0)
        .epochs(240)
        .slots_per_frame(96)
        .completion_window(96)
        .seed(1_009)
        .build()
}

/// 20 000 nodes uniformly random at the stress_5000 density (mean degree
/// ≈ 12) — the first point past the protocol-plane serial wall, and the
/// deployment the CI perf-trajectory gate runs.
pub fn stress_20000() -> ScenarioSpec {
    ScenarioSpec::builder("stress_20000", 20_000)
        .placement(Placement::UniformRandom { side: 2_000.0 }, SinkPlacement::Corner)
        .radio_range(28.0)
        .epochs(200)
        .slots_per_frame(96)
        .completion_window(192)
        .seed(1_015)
        .build()
}

/// 50 000 nodes uniformly random, same density — the registry's scale
/// ceiling, now at a steady-state budget: 600 epochs spans the warm-up,
/// several full query generations *and* their ~100-hop completion
/// windows, so the preset scores queries instead of merely deploying.
pub fn stress_50000() -> ScenarioSpec {
    ScenarioSpec::builder("stress_50000", 50_000)
        .placement(Placement::UniformRandom { side: 3_162.0 }, SinkPlacement::Corner)
        .radio_range(28.0)
        .epochs(600)
        .slots_per_frame(96)
        .completion_window(96)
        .seed(1_016)
        .build()
}

/// The pre-steady-state budget [`stress_50000`] shipped with (120
/// epochs): deployment + first query generation only. Kept as a named
/// preset so quick scale smoke runs and the perf trajectory retain a
/// cheap 50 000-node point.
pub fn stress_50000_short() -> ScenarioSpec {
    let mut spec = stress_50000();
    spec.name = "stress_50000_short".into();
    spec.epochs = 120;
    spec
}

/// Every preset, smallest first — the matrix the `scenario_matrix` bench
/// runs and `BENCH_2.json` records.
pub fn registry() -> Vec<ScenarioSpec> {
    vec![
        dense_grid_100(),
        heavy_churn_150(),
        redeploy_150(),
        hotspot_workload_200(),
        sparse_random_250(),
        churn_lossy_250(),
        hetero_types_300(),
        lossy_log_distance_300(),
        corridor_400(),
        multi_sink_grid_400(),
        head_to_head_500(),
        grid_2000(),
        stress_5000(),
        stress_20000(),
        stress_50000_short(),
        stress_50000(),
    ]
}

/// Look a preset up by name.
pub fn preset(name: &str) -> Option<ScenarioSpec> {
    registry().into_iter().find(|s| s.name == name)
}

/// The CI smoke scenario: the 100-node grid preset at a tenth of its
/// epoch budget — small enough for debug-mode tests, large enough to
/// exercise deployment, calibration, MAC and scoring end to end.
pub fn smoke() -> ScenarioSpec {
    dense_grid_100().scaled(0.1)
}

/// Recorded [`crate::ScenarioReport::stable_fingerprint`] of a
/// single-replicate sweep over [`smoke`]. Pinned by the workspace golden
/// test and verified by `scenario_matrix --smoke` in CI; after an
/// intentional behaviour change re-record every pin in one pass with
/// `cargo run --release -p dirq-bench --bin record_goldens` (this
/// constant is rewritten in place — keep its shape machine-editable).
pub const SMOKE_GOLDEN_FINGERPRINT: u64 = 0xCC93F65979BB4548;

/// Recorded [`crate::ScenarioReport::stable_fingerprint`] of the full
/// single-replicate registry sweep — the value `BENCH_2.json` carries.
/// `scenario_matrix --smoke` (CI) asserts the checked-in artifact still
/// records it, and `record_goldens --check` re-derives it fresh, so
/// behaviour changes cannot land without re-running the matrix.
/// Re-record (together with `BENCH_2.json` and every manifest pin) via
/// `cargo run --release -p dirq-bench --bin record_goldens`, which
/// rewrites this constant in place. (Last re-recorded for the PR 5
/// split-stream world generator — an intentional full-behaviour break.)
pub const REGISTRY_GOLDEN_FINGERPRINT: u64 = 0xC1B67142D94FD6B3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_spans_the_advertised_scale() {
        let all = registry();
        assert!(all.len() >= 8, "at least eight presets required");
        let sizes: Vec<usize> = all.iter().map(|s| s.n_nodes).collect();
        assert_eq!(*sizes.iter().min().unwrap(), 100);
        assert_eq!(*sizes.iter().max().unwrap(), 50_000);
        assert!(sizes.iter().any(|&n| n >= 20_000), "need a ≥20000-node deployment");
        // Names are unique and looked up correctly.
        for s in &all {
            assert_eq!(preset(&s.name).unwrap().n_nodes, s.n_nodes);
        }
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate preset names");
        assert!(preset("no_such_preset").is_none());
    }

    #[test]
    fn presets_cover_the_comparison_axes() {
        let all = registry();
        assert!(all.iter().any(|s| matches!(s.placement, Placement::JitteredGrid { .. })));
        assert!(all.iter().any(|s| matches!(s.placement, Placement::Corridor { .. })));
        assert!(all.iter().any(|s| matches!(s.placement, Placement::Clustered { .. })));
        assert!(all.iter().any(|s| matches!(s.churn, ChurnProfile::RandomDeaths { .. })));
        assert!(all.iter().any(|s| s.spatial_query_fraction > 0.0));
        assert!(all.iter().any(|s| s.sensor_coverage <= 0.3));
        assert!(
            all.iter().any(|s| s.schemes.contains(&Scheme::Flooding) && s.schemes.len() >= 2),
            "need a flooding head-to-head"
        );
        // The axes added with the arena/parallel PR: node births, a
        // lossy-radio × churn cross, and a multi-sink layout.
        assert!(all.iter().any(|s| matches!(s.churn, ChurnProfile::LateBirths { .. })));
        assert!(
            all.iter().any(|s| matches!(s.radio, RadioSpec::LogDistance { .. })
                && !matches!(s.churn, ChurnProfile::None)),
            "need the lossy-radio x churn cross"
        );
        assert!(all.iter().any(|s| s.extra_sinks > 0), "need a multi-sink layout");
    }

    #[test]
    fn multi_sink_attachment_cuts_mean_hop_count() {
        // Nearest-sink attachment over the wired backbone must produce a
        // strictly shallower tree than the identical single-sink grid.
        let spec = multi_sink_grid_400();
        let scheme = spec.schemes[0];
        let mut single = spec.clone();
        single.extra_sinks = 0;
        let mean_depth = |cfg: dirq_core::ScenarioConfig| {
            let engine = dirq_core::Engine::new(cfg);
            let tree = engine.protocol_tree();
            let (sum, count) = (0..tree.len())
                .map(dirq_net::NodeId::from_index)
                .filter_map(|n| tree.depth(n))
                .fold((0u64, 0u64), |(s, c), d| (s + u64::from(d), c + 1));
            assert_eq!(count, 400, "every node must attach at deployment");
            sum as f64 / count as f64
        };
        let multi = mean_depth(spec.config(scheme, spec.seed));
        let single = mean_depth(single.config(scheme, spec.seed));
        assert!(
            multi <= single,
            "multi-sink mean hop count {multi:.2} exceeds single-sink {single:.2}"
        );
        assert!(
            multi < 0.75 * single,
            "three extra sinks should cut depth substantially: {multi:.2} vs {single:.2}"
        );
    }

    #[test]
    fn redeploy_births_attach_and_answer_queries() {
        let spec = redeploy_150().scaled(0.25);
        let scheme = spec.schemes[0];
        let cfg = spec.config(scheme, spec.seed);
        let dirq_core::ChurnSpec::Explicit(plan) = cfg.churn.clone() else {
            panic!("redeploy preset must lower to an explicit birth plan");
        };
        let born = plan.initially_offline();
        assert!(born.len() >= 10, "expected a meaningful redeployment wave");
        let last_birth = plan.events().iter().map(|&(e, _)| e).max().expect("plan has events");
        let epochs = cfg.epochs;
        let mut engine = dirq_core::Engine::new(cfg);
        for _ in 0..epochs {
            engine.step_epoch();
        }
        // Every born node is alive, MAC-scheduled and attached to the tree.
        let tree = engine.protocol_tree();
        for &b in &born {
            assert!(engine.is_alive(b), "{b} should be alive after its birth");
            assert!(tree.is_attached(b), "{b} never attached after its birth");
        }
        // Queries injected after the wave settled still reach their
        // sources — the born nodes are answering.
        let late: Vec<f64> = engine
            .metrics()
            .outcomes
            .iter()
            .filter(|o| o.epoch >= last_birth + 50)
            .map(|o| o.source_recall())
            .collect();
        assert!(!late.is_empty(), "no scored queries after the birth wave");
        let mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(mean > 0.8, "post-birth recall {mean:.3} too low");
    }

    #[test]
    fn hotspot_calibration_is_warm_started() {
        // Before the spatial warm start the hotspot preset paid a flat
        // ~200 ground-truth probes per query (~166 measured over the full
        // budget). Warm queries now cost ~33–35; at a quarter budget the
        // per-type cold starts still amortise to well under half the old
        // cost.
        let spec = hotspot_workload_200().scaled(0.25);
        let scheme = spec.schemes[0];
        let r = dirq_core::run_scenario(spec.config(scheme, spec.seed));
        let per_query = r.calibration_probes as f64 / r.queries_injected as f64;
        assert!(
            per_query < 100.0,
            "spatial calibration probes/query regressed: {per_query:.0} (pre-warm-start ~200)"
        );
    }

    #[test]
    fn lossy_preset_uses_log_distance_radio() {
        let s = lossy_log_distance_300();
        assert!(
            matches!(s.radio, RadioSpec::LogDistance { shadowing_sigma_db, .. }
                if shadowing_sigma_db > 0.0),
            "preset must exercise the shadowed log-distance model"
        );
        assert_eq!(preset("lossy_log_distance_300").unwrap().n_nodes, 300);
    }

    #[test]
    fn lossy_delivery_degrades_with_path_loss_exponent() {
        // Same deployment recipe, rising path-loss exponent γ under the
        // fixed 46 dB budget: the mean range shrinks (~50 m → ~25 m), the
        // tree deepens, and with a tight scoring deadline the delivery
        // ratio must fall monotonically. Fixed seed — the sweep is
        // deterministic, so the ordering is a stable regression pin.
        let mut deliveries = Vec::new();
        for exponent in [2.7, 3.0, 3.3] {
            let mut spec = lossy_log_distance_300().scaled(0.1);
            spec.completion_window = 3;
            spec.radio =
                RadioSpec::LogDistance { exponent, shadowing_sigma_db: 4.0, link_budget_db: 46.0 };
            let scheme = spec.schemes[0];
            let r = dirq_core::run_scenario(spec.config(scheme, spec.seed));
            let delivery =
                r.metrics.mean_over_queries(|o| o.source_recall()).expect("measured queries");
            deliveries.push((exponent, delivery));
        }
        for pair in deliveries.windows(2) {
            assert!(
                pair[0].1 > pair[1].1,
                "delivery must degrade with the exponent: {deliveries:?}"
            );
        }
    }

    #[test]
    fn smoke_is_a_scaled_grid_preset() {
        let s = smoke();
        assert_eq!(s.name, "dense_grid_100");
        assert_eq!(s.epochs, 400);
        assert_eq!(s.measure_from(), 80);
    }
}
