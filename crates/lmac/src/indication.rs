//! Upcalls from the MAC to the upper layer.
//!
//! DirQ's cross-layer integration (paper Section 4.2) consumes exactly
//! these events: message deliveries, dead-neighbour detections and
//! new-neighbour detections.
//!
//! Payloads are **interned once per transmission**: the MAC wraps each
//! queued payload in a [`PayloadHandle`] and every indication for it —
//! one per receiver on a broadcast, one per unreachable destination —
//! shares the same allocation. Cloning an indication is a reference-count
//! bump, never a payload copy.

use dirq_net::{NodeId, NodeList};

/// Shared handle to one transmitted payload. `Deref`s to `P`.
pub type PayloadHandle<P> = std::sync::Arc<P>;

/// Addressing of one data message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Destination {
    /// All alive neighbours are intended receivers (flooding uses this; a
    /// reception is counted — and delivered — at every hearer).
    Broadcast,
    /// Only the listed neighbours are intended receivers. Other hearers
    /// skip the data section after reading the control header, so they pay
    /// no data-reception cost — this matches the paper's unicast
    /// cost-accounting ("we only consider edges for unicast operations").
    /// The list is inline (no heap) up to four receivers.
    Multicast(NodeList),
}

impl Destination {
    /// Unicast = multicast to one node.
    pub fn unicast(to: NodeId) -> Destination {
        Destination::Multicast(NodeList::single(to))
    }

    /// Multicast to any collection of nodes.
    pub fn multicast(to: impl Into<NodeList>) -> Destination {
        Destination::Multicast(to.into())
    }

    /// Whether `node` is an intended receiver.
    pub fn includes(&self, node: NodeId) -> bool {
        match self {
            Destination::Broadcast => true,
            Destination::Multicast(list) => list.contains(&node),
        }
    }
}

/// One MAC-to-upper-layer event.
#[derive(Debug, PartialEq, Eq)]
pub enum MacIndication<P> {
    /// A data message addressed to `to` arrived from one-hop neighbour
    /// `from`.
    Delivered {
        /// Receiving node.
        to: NodeId,
        /// Transmitting (one-hop) node.
        from: NodeId,
        /// Shared handle to the upper-layer payload.
        payload: PayloadHandle<P>,
    },
    /// `observer`'s MAC declared one-hop neighbour `dead` unreachable
    /// (unheard for `max_missed_frames` frames).
    NeighborDied {
        /// Node whose neighbour table changed.
        observer: NodeId,
        /// The vanished neighbour.
        dead: NodeId,
    },
    /// `observer`'s MAC heard `new` for the first time.
    NeighborNew {
        /// Node whose neighbour table changed.
        observer: NodeId,
        /// The newly heard neighbour.
        new: NodeId,
    },
    /// A queued message could not be delivered to `to` (not an alive
    /// neighbour of `from` at transmission time). The upper layer decides
    /// whether to re-route.
    Undeliverable {
        /// Transmitting node.
        from: NodeId,
        /// Intended receiver that could not be reached.
        to: NodeId,
        /// Shared handle to the undelivered payload.
        payload: PayloadHandle<P>,
    },
}

/// Manual impl: payloads are behind shared handles, so cloning an
/// indication is a refcount bump and needs no `P: Clone` (the derive
/// would demand one).
impl<P> Clone for MacIndication<P> {
    fn clone(&self) -> Self {
        match self {
            MacIndication::Delivered { to, from, payload } => {
                MacIndication::Delivered { to: *to, from: *from, payload: payload.clone() }
            }
            MacIndication::NeighborDied { observer, dead } => {
                MacIndication::NeighborDied { observer: *observer, dead: *dead }
            }
            MacIndication::NeighborNew { observer, new } => {
                MacIndication::NeighborNew { observer: *observer, new: *new }
            }
            MacIndication::Undeliverable { from, to, payload } => {
                MacIndication::Undeliverable { from: *from, to: *to, payload: payload.clone() }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn destination_membership() {
        let b = Destination::Broadcast;
        assert!(b.includes(NodeId(7)));
        let m = Destination::multicast([NodeId(1), NodeId(2)]);
        assert!(m.includes(NodeId(1)));
        assert!(!m.includes(NodeId(3)));
        let u = Destination::unicast(NodeId(4));
        assert!(u.includes(NodeId(4)));
        assert!(!u.includes(NodeId(5)));
    }

    #[test]
    fn payload_handles_share_one_allocation() {
        let p: PayloadHandle<String> = PayloadHandle::new("query".to_string());
        let a = MacIndication::Delivered { to: NodeId(1), from: NodeId(0), payload: p.clone() };
        let b = MacIndication::Delivered { to: NodeId(2), from: NodeId(0), payload: p.clone() };
        match (&a, &b) {
            (
                MacIndication::Delivered { payload: pa, .. },
                MacIndication::Delivered { payload: pb, .. },
            ) => {
                assert!(PayloadHandle::ptr_eq(pa, pb), "per-receiver copies must share storage");
            }
            _ => unreachable!(),
        }
    }
}
