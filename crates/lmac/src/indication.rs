//! Upcalls from the MAC to the upper layer.
//!
//! DirQ's cross-layer integration (paper Section 4.2) consumes exactly
//! these events: message deliveries, dead-neighbour detections and
//! new-neighbour detections.

use dirq_net::NodeId;

/// Addressing of one data message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Destination {
    /// All alive neighbours are intended receivers (flooding uses this; a
    /// reception is counted — and delivered — at every hearer).
    Broadcast,
    /// Only the listed neighbours are intended receivers. Other hearers
    /// skip the data section after reading the control header, so they pay
    /// no data-reception cost — this matches the paper's unicast
    /// cost-accounting ("we only consider edges for unicast operations").
    Multicast(Vec<NodeId>),
}

impl Destination {
    /// Unicast = multicast to one node.
    pub fn unicast(to: NodeId) -> Destination {
        Destination::Multicast(vec![to])
    }

    /// Whether `node` is an intended receiver.
    pub fn includes(&self, node: NodeId) -> bool {
        match self {
            Destination::Broadcast => true,
            Destination::Multicast(list) => list.contains(&node),
        }
    }
}

/// One MAC-to-upper-layer event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MacIndication<P> {
    /// A data message addressed to `to` arrived from one-hop neighbour
    /// `from`.
    Delivered {
        /// Receiving node.
        to: NodeId,
        /// Transmitting (one-hop) node.
        from: NodeId,
        /// Upper-layer payload.
        payload: P,
    },
    /// `observer`'s MAC declared one-hop neighbour `dead` unreachable
    /// (unheard for `max_missed_frames` frames).
    NeighborDied {
        /// Node whose neighbour table changed.
        observer: NodeId,
        /// The vanished neighbour.
        dead: NodeId,
    },
    /// `observer`'s MAC heard `new` for the first time.
    NeighborNew {
        /// Node whose neighbour table changed.
        observer: NodeId,
        /// The newly heard neighbour.
        new: NodeId,
    },
    /// A queued message could not be delivered to `to` (not an alive
    /// neighbour of `from` at transmission time). The upper layer decides
    /// whether to re-route.
    Undeliverable {
        /// Transmitting node.
        from: NodeId,
        /// Intended receiver that could not be reached.
        to: NodeId,
        /// The undelivered payload.
        payload: P,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn destination_membership() {
        let b = Destination::Broadcast;
        assert!(b.includes(NodeId(7)));
        let m = Destination::Multicast(vec![NodeId(1), NodeId(2)]);
        assert!(m.includes(NodeId(1)));
        assert!(!m.includes(NodeId(3)));
        let u = Destination::unicast(NodeId(4));
        assert!(u.includes(NodeId(4)));
        assert!(!u.includes(NodeId(5)));
    }
}
