//! The slot-synchronous LMAC state machine.
//!
//! [`LmacNetwork`] simulates one MAC instance per node over a shared radio
//! graph. The upper layer (DirQ, flooding) drives it one slot at a time and
//! consumes the resulting [`MacIndication`] stream. See the crate docs for
//! the modelling notes.
//!
//! ## Hot-path layout
//!
//! One slot is the innermost loop of every experiment (20 000 epochs ×
//! `slots_per_frame` slots per run), so it is engineered for zero
//! steady-state allocations:
//!
//! * queued payloads are interned once into a [`PayloadHandle`] and shared
//!   by every per-receiver indication instead of cloned;
//! * per-slot working state (transmitter set, listener set, collision set,
//!   audible list, per-transmitter records) lives in a persistent
//!   [`FrameScratch`] of flat vectors and [`NodeBits`] bitsets, reused
//!   across slots;
//! * membership tests (is transmitting? has collided?) are O(1) bit tests
//!   rather than linear `Vec::contains` scans, and listener iteration runs
//!   in ascending id order straight off the bitset — the sort+dedup the
//!   old representation needed is gone;
//! * audibility is resolved from the *listener's* side: each listener walks
//!   its own CSR neighbour slice and probes a node→transmission index
//!   (`tx_index`), instead of testing `has_link` against every concurrent
//!   transmitter — the listeners × transmitters link-matrix scan that
//!   dominated dense frames (and degenerates to a binary search per probe
//!   above `DENSE_LINK_MAX_NODES`) is gone;
//! * neighbour knowledge is network-owned in an **edge-aligned
//!   [`NeighborArena`]** (`Topology::row_start(listener) + mirror_pos`),
//!   so the listener loop's stores land sequentially in listener order on
//!   one contiguous array instead of hopping through per-node heap vecs;
//! * with `LmacConfig::workers > 1` the listener phase is **sharded across
//!   precomputed 2-hop colour classes** (same-colour nodes share no
//!   neighbour, so shards touch disjoint arena rows) on a persistent
//!   work-stealing pool, and the per-shard output is merged back in
//!   ascending listener order — indications, statistics and ledgers stay
//!   bit-identical at every worker count;
//! * the slot-occupancy index (`slot_owners` + the per-slot alive check)
//!   short-circuits slots nobody owns: an empty slot advances the clock
//!   without touching the scratch buffers at all;
//! * callers that want full reuse drive [`LmacNetwork::advance_slot_into`]
//!   with a long-lived output buffer ([`LmacNetwork::advance_slot`] remains
//!   as a convenience wrapper).
//!
//! [`LmacNetwork::advance_slot_full_scan_into`] keeps the pre-index
//! reference semantics (scan every transmitter per listener, process empty
//! slots) for the differential property tests; both paths must produce
//! identical indication streams, statistics and ledgers.

use std::collections::VecDeque;

use dirq_net::{EnergyLedger, NodeBits, NodeId, Topology};
use dirq_sim::runner::WorkerPool;
use dirq_sim::snap::{SnapError, SnapReader, SnapWriter};
use dirq_sim::SimRng;
use rand::Rng;

use crate::config::LmacConfig;
use crate::indication::{Destination, MacIndication, PayloadHandle};
use crate::neighbor::{ArenaRaw, NeighborArena, NeighborView};
use crate::slots::SlotSet;

/// Aggregate MAC statistics for a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MacStats {
    /// Data messages delivered to an intended receiver.
    pub delivered: u64,
    /// Data messages that could not reach an intended receiver.
    pub undeliverable: u64,
    /// Slot collisions observed by listeners (join transients).
    pub collisions: u64,
    /// Slots given up after a collision.
    pub slots_surrendered: u64,
    /// Successful slot selections.
    pub slots_picked: u64,
    /// Frames in which a node found no free slot to pick.
    pub no_free_slot: u64,
    /// Dead-neighbour upcalls raised.
    pub deaths_detected: u64,
    /// New-neighbour upcalls raised.
    pub new_neighbors_detected: u64,
}

/// Per-node MAC state. Neighbour knowledge does **not** live here — it is
/// network-owned, in the edge-aligned [`NeighborArena`].
struct MacNode<P> {
    alive: bool,
    my_slot: Option<u16>,
    listen_remaining: u32,
    tx_queue: VecDeque<(Destination, PayloadHandle<P>)>,
}

impl<P> MacNode<P> {
    fn offline() -> Self {
        MacNode { alive: false, my_slot: None, listen_remaining: 0, tx_queue: VecDeque::new() }
    }
}

/// `FrameScratch::audible_tx` sentinel: no transmitter audible yet.
const AUDIBLE_NONE: u64 = u64::MAX;
/// `FrameScratch::audible_tx` sentinel: two or more transmitters audible.
const AUDIBLE_COLLIDED: u64 = u64::MAX - 1;

/// One transmission within the current slot; its data messages live in
/// `FrameScratch::tx_data[data_start..data_end]`.
struct TxRecord {
    from: NodeId,
    occupied: SlotSet,
    gateway_dist: u16,
    data_start: u32,
    data_end: u32,
}

/// Persistent per-slot working state (see the module docs).
struct FrameScratch<P> {
    transmitters: Vec<NodeId>,
    /// Membership mirror of `transmitters`.
    tx_mark: NodeBits,
    txs: Vec<TxRecord>,
    /// Flat storage for all data messages sent in this slot.
    tx_data: Vec<(Destination, PayloadHandle<P>)>,
    /// Alive non-transmitting neighbours of this slot's transmitters;
    /// iterated in ascending id order.
    listener_mark: NodeBits,
    /// Transmitters that must surrender their slot after a collision.
    collided_mark: NodeBits,
    /// Indices into `txs` audible at the current listener.
    audible: Vec<u32>,
    /// node → audibility resolution for this slot: `AUDIBLE_NONE`, a
    /// single tx index, or `AUDIBLE_COLLIDED`. Written while marking
    /// listeners, consumed (and reset) by the listener loop.
    audible_tx: Vec<u64>,
    /// node → index into `txs` for this slot (`u32::MAX` = not
    /// transmitting). Reset by iterating `transmitters`, never by an O(n)
    /// fill.
    tx_index: Vec<u32>,
    /// Stale-neighbour collection buffer for the frame boundary.
    stale_buf: Vec<NodeId>,
}

impl<P> FrameScratch<P> {
    fn new(topo: &Topology, cfg: &LmacConfig) -> Self {
        let n = topo.len();
        // Concurrent same-slot transmitters are bounded by a 2-hop
        // neighbourhood during join transients; the maximum degree is a
        // safe, topology-derived capacity for every per-slot list.
        let width = topo.max_degree().max(8);
        FrameScratch {
            transmitters: Vec::with_capacity(width),
            tx_mark: NodeBits::new(n),
            txs: Vec::with_capacity(width),
            tx_data: Vec::with_capacity(width * cfg.data_messages_per_slot),
            listener_mark: NodeBits::new(n),
            collided_mark: NodeBits::new(n),
            audible: Vec::with_capacity(width),
            audible_tx: vec![AUDIBLE_NONE; n],
            tx_index: vec![u32::MAX; n],
            stale_buf: Vec::with_capacity(width),
        }
    }

    /// Empty scratch (used only while the real one is temporarily moved
    /// out to satisfy the borrow checker).
    fn placeholder() -> Self {
        FrameScratch {
            transmitters: Vec::new(),
            tx_mark: NodeBits::new(0),
            txs: Vec::new(),
            tx_data: Vec::new(),
            listener_mark: NodeBits::new(0),
            collided_mark: NodeBits::new(0),
            audible: Vec::new(),
            audible_tx: Vec::new(),
            tx_index: Vec::new(),
            stale_buf: Vec::new(),
        }
    }
}

/// Per-shard working state of the colour-class parallel listener phase.
/// Shard `k` owns the listeners whose 2-hop colour class is congruent to
/// `k` modulo the shard count. Any partition of the listeners would make
/// the per-listener writes (arena row, audibility slot, rx tallies)
/// disjoint; colour classes are the key because same-colour listeners
/// also never hear the same transmitter, which spreads each
/// transmitter's listener burst across shards and keeps the door open to
/// sharding transmitter-side state later without changing the partition.
struct ShardScratch<P> {
    /// Indications produced by this shard, ascending by listener.
    out: Vec<MacIndication<P>>,
    /// Transmitters audible at a collided listener (must surrender).
    collided_from: Vec<NodeId>,
    /// Per-listener audible-set scratch.
    audible: Vec<u32>,
    /// Statistics deltas, summed into [`MacStats`] at the merge. Plain
    /// counter additions, so shard totals equal the serial totals.
    delivered: u64,
    new_neighbors: u64,
    collisions: u64,
    /// Merge cursor into `out`.
    cursor: usize,
}

impl<P> ShardScratch<P> {
    fn new() -> Self {
        ShardScratch {
            out: Vec::new(),
            collided_from: Vec::new(),
            audible: Vec::with_capacity(8),
            delivered: 0,
            new_neighbors: 0,
            collisions: 0,
            cursor: 0,
        }
    }
}

/// The published state of one parallel listener phase: everything a shard
/// needs, behind raw pointers where shards write disjointly (arena rows,
/// audibility slots, per-listener ledger tallies, their own scratch) and
/// shared borrows where they only read.
struct ListenerPhase<'a, P> {
    arena: ArenaRaw,
    audible_tx: *mut u64,
    shards: *mut ShardScratch<P>,
    control_rx: *mut u64,
    data_rx: *mut u64,
    topo: &'a Topology,
    shard_of: &'a [u32],
    listener_mark: &'a NodeBits,
    txs: &'a [TxRecord],
    tx_data: &'a [(Destination, PayloadHandle<P>)],
    tx_index: &'a [u32],
    slot: u16,
    frame: u64,
}

// SAFETY: shards access disjoint state — shard `k` touches only its own
// `ShardScratch` and the arena rows / `audible_tx` slots / rx tallies of
// its own listeners, and every write is indexed by the listener, which
// belongs to exactly one shard (the colour classes partition the nodes).
unsafe impl<P: Send + Sync> Sync for ListenerPhase<'_, P> {}

impl<P: Send + Sync> ListenerPhase<'_, P> {
    /// Process shard `k`: resolve audibility, update the listeners' arena
    /// rows, record receptions in the (listener-indexed, hence disjoint)
    /// ledger tallies and collect this shard's indications. Mirrors the
    /// serial listener loop exactly; only the ordered indication stream is
    /// left for the merge.
    ///
    /// # Safety
    /// `k` must be a valid shard index, and each shard must be executed by exactly one
    /// thread per slot (the pool guarantees exactly-once item execution).
    unsafe fn run_shard(&self, k: usize) {
        let shard = &mut *self.shards.add(k);
        shard.out.clear();
        shard.collided_from.clear();
        shard.delivered = 0;
        shard.new_neighbors = 0;
        shard.collisions = 0;
        shard.cursor = 0;
        let s = self.slot;
        for l in self.listener_mark.iter() {
            if self.shard_of[l.index()] != k as u32 {
                continue;
            }
            let resolved = std::mem::replace(&mut *self.audible_tx.add(l.index()), AUDIBLE_NONE);
            let audible = &mut shard.audible;
            audible.clear();
            if resolved == AUDIBLE_COLLIDED {
                // Rare join transient: recover the full audible set from
                // the listener's CSR row (links are symmetric).
                for &nb in self.topo.neighbors(l) {
                    let ti = self.tx_index[nb.index()];
                    if ti != u32::MAX {
                        audible.push(ti);
                    }
                }
            } else {
                audible.push((resolved >> 32) as u32);
            }
            if audible.len() > 1 {
                shard.collisions += 1;
                for &i in audible.iter() {
                    shard.collided_from.push(self.txs[i as usize].from);
                }
                continue;
            }
            let tx = &self.txs[audible[0] as usize];
            *self.control_rx.add(l.index()) += 1;
            let is_new = if resolved == AUDIBLE_COLLIDED {
                self.arena.heard(l, tx.from, Some(s), tx.occupied, tx.gateway_dist, self.frame)
            } else {
                self.arena.heard_at(
                    l,
                    (resolved & 0xFFFF_FFFF) as usize,
                    tx.from,
                    Some(s),
                    tx.occupied,
                    tx.gateway_dist,
                    self.frame,
                )
            };
            if is_new {
                shard.new_neighbors += 1;
                shard.out.push(MacIndication::NeighborNew { observer: l, new: tx.from });
            }
            for (dest, payload) in &self.tx_data[tx.data_start as usize..tx.data_end as usize] {
                if dest.includes(l) {
                    *self.data_rx.add(l.index()) += 1;
                    shard.delivered += 1;
                    shard.out.push(MacIndication::Delivered {
                        to: l,
                        from: tx.from,
                        payload: payload.clone(),
                    });
                }
            }
        }
    }
}

/// The listener an indication belongs to, for the merge's k-way walk.
fn indication_listener<P>(ind: &MacIndication<P>) -> NodeId {
    match ind {
        MacIndication::Delivered { to, .. } => *to,
        MacIndication::NeighborNew { observer, .. } => *observer,
        // Shards only emit the two variants above.
        _ => unreachable!("unexpected indication variant in a listener shard"),
    }
}

/// The simulated LMAC network.
///
/// Generic over the upper-layer payload `P`; the MAC never inspects it.
pub struct LmacNetwork<P> {
    cfg: LmacConfig,
    topo: Topology,
    nodes: Vec<MacNode<P>>,
    /// Network-owned neighbour knowledge, edge-aligned to `topo`'s CSR
    /// rows (`Topology::row_start(listener) + mirror_pos`).
    arena: NeighborArena,
    /// slot → owners (normally ≤1 per 2-hop area; >1 during joins).
    slot_owners: Vec<Vec<NodeId>>,
    frame: u64,
    slot: u16,
    data_ledger: EnergyLedger,
    control_ledger: EnergyLedger,
    stats: MacStats,
    /// Alive nodes currently without a slot. The frame-boundary join scan
    /// is O(n) over big `MacNode` records; in steady state (everyone
    /// placed) this count short-circuits it entirely.
    unslotted_alive: usize,
    scratch: FrameScratch<P>,
    /// Compact mirror of per-node liveness — the reception loops test
    /// liveness per neighbour per slot, and a bit probe beats pulling a
    /// whole `MacNode` cache line.
    alive_mask: NodeBits,
    /// Edge-aligned mirror positions: for the CSR edge slot holding
    /// `neighbors(u)[p] == v`, the value is `v`'s row position of `u` —
    /// i.e. where `u` sits in `v`'s (row-aligned) arena row. Lets the
    /// reception loop update the listener's row with a direct indexed
    /// store instead of a per-event search.
    mirror_pos: Vec<u32>,
    /// Shard per node: the precomputed 2-hop colour class reduced modulo
    /// the worker count — the sharding key of the parallel listener
    /// phase. Computed once per topology epoch; empty when
    /// `cfg.workers == 1`.
    shard_of: Vec<u32>,
    /// Persistent work-stealing pool (`None` when `cfg.workers == 1`).
    pool: Option<WorkerPool>,
    /// Per-shard output buffers for the parallel listener phase.
    shards: Vec<ShardScratch<P>>,
    /// Run the sharded listener phase even when the pool has no runnable
    /// helper (test hook; results are identical either way).
    force_sharded: bool,
}

impl<P> LmacNetwork<P> {
    /// Create a network over `topo` with every node alive but no slots
    /// assigned yet; nodes acquire slots through the join protocol. All
    /// per-slot working buffers are pre-sized from the topology.
    pub fn new(cfg: LmacConfig, topo: Topology) -> Self {
        cfg.validate();
        let n = topo.len();
        let mut nodes: Vec<MacNode<P>> = (0..n).map(|_| MacNode::offline()).collect();
        for node in nodes.iter_mut() {
            node.alive = true;
            node.listen_remaining = cfg.listen_frames_before_pick;
        }
        let mut alive_mask = NodeBits::new(n);
        for i in 0..n {
            alive_mask.insert(NodeId::from_index(i));
        }
        // Edge-aligned mirror positions (see the field docs). Rows are
        // ascending, so the reverse position comes from one binary search
        // per directed edge, once.
        let mut mirror_pos =
            vec![
                0u32;
                topo.row_start(NodeId::from_index(n.saturating_sub(1)))
                    + topo.neighbors(NodeId::from_index(n.saturating_sub(1))).len()
            ];
        for i in 0..n {
            let u = NodeId::from_index(i);
            let base = topo.row_start(u);
            for (p, &v) in topo.neighbors(u).iter().enumerate() {
                let back = topo.neighbors(v).binary_search(&u).expect("undirected edge");
                mirror_pos[base + p] = back as u32;
            }
        }
        // Colour-class parallelism: the colouring and the worker pool are
        // set up once per topology epoch, and only when asked for.
        let (shard_of, pool, shards) = if cfg.workers > 1 {
            let mut coloring = topo.two_hop_coloring();
            for c in &mut coloring {
                *c %= cfg.workers as u32;
            }
            (
                coloring,
                Some(WorkerPool::new(cfg.workers)),
                (0..cfg.workers).map(|_| ShardScratch::new()).collect(),
            )
        } else {
            (Vec::new(), None, Vec::new())
        };
        LmacNetwork {
            slot_owners: vec![Vec::new(); cfg.slots_per_frame as usize],
            data_ledger: EnergyLedger::new(n),
            control_ledger: EnergyLedger::new(n),
            scratch: FrameScratch::new(&topo, &cfg),
            arena: NeighborArena::new(&topo),
            alive_mask,
            mirror_pos,
            shard_of,
            pool,
            shards,
            force_sharded: false,
            unslotted_alive: n,
            cfg,
            topo,
            nodes,
            frame: 0,
            slot: 0,
            stats: MacStats::default(),
        }
    }

    /// Deterministically pre-assign slots with a greedy 2-hop colouring and
    /// pre-populate neighbour tables, skipping the join transient. This is
    /// the steady state the paper's experiments start from.
    ///
    /// # Panics
    /// Panics if `slots_per_frame` is too small for some 2-hop
    /// neighbourhood.
    pub fn assign_slots_greedy(&mut self) {
        for i in 0..self.nodes.len() {
            let node = NodeId::from_index(i);
            if !self.nodes[i].alive {
                continue;
            }
            let mut forbidden = SlotSet::EMPTY;
            for &nb in self.topo.neighbors(node) {
                if let Some(s) = self.nodes[nb.index()].my_slot {
                    forbidden.insert(s);
                }
                for &nb2 in self.topo.neighbors(nb) {
                    if nb2 != node {
                        if let Some(s) = self.nodes[nb2.index()].my_slot {
                            forbidden.insert(s);
                        }
                    }
                }
            }
            let free = forbidden.free_slots(self.cfg.slots_per_frame);
            let slot = *free.first().unwrap_or_else(|| {
                panic!(
                    "no free slot for {node}: {} slots/frame too few for its 2-hop degree",
                    self.cfg.slots_per_frame
                )
            });
            self.nodes[i].my_slot = Some(slot);
            self.nodes[i].listen_remaining = 0;
            self.unslotted_alive -= 1;
            self.slot_owners[slot as usize].push(node);
        }
        // Pre-populate neighbour tables as if a full frame had elapsed.
        for i in 0..self.nodes.len() {
            let node = NodeId::from_index(i);
            if !self.nodes[i].alive {
                continue;
            }
            for &nb in self.topo.neighbors(node) {
                if self.nodes[nb.index()].alive {
                    let slot = self.nodes[nb.index()].my_slot;
                    self.arena.heard(node, nb, slot, SlotSet::EMPTY, u16::MAX, self.frame);
                }
            }
        }
        // Gateway distances settle within a few frames of real traffic; seed
        // them from graph hop counts, which is what LMAC converges to.
        let hops = self.topo.hop_distances(NodeId::ROOT, |n| self.nodes[n.index()].alive);
        for i in 0..self.nodes.len() {
            let node = NodeId::from_index(i);
            if !self.nodes[i].alive {
                continue;
            }
            for &nb in self.topo.neighbors(node) {
                if self.nodes[nb.index()].alive {
                    let d = hops[nb.index()];
                    let d16 =
                        if d == u32::MAX { u16::MAX } else { d.min(u16::MAX as u32 - 1) as u16 };
                    let slot = self.nodes[nb.index()].my_slot;
                    self.arena.heard(node, nb, slot, SlotSet::EMPTY, d16, self.frame);
                }
            }
        }
    }

    /// The radio graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Force the colour-class sharded listener phase even when the worker
    /// pool was clamped to a single runnable thread (e.g. a 1-core CI
    /// host). Results are bit-identical either way; the differential
    /// suites call this so the sharded path is exercised on any machine.
    /// Requires `workers > 1` in the configuration.
    #[doc(hidden)]
    pub fn force_sharded_listeners(&mut self) {
        assert!(self.cfg.workers > 1, "sharding requires workers > 1");
        self.force_sharded = true;
    }

    /// Configuration in use.
    pub fn config(&self) -> &LmacConfig {
        &self.cfg
    }

    /// Current frame number.
    pub fn current_frame(&self) -> u64 {
        self.frame
    }

    /// Current slot within the frame.
    pub fn current_slot(&self) -> u16 {
        self.slot
    }

    /// Whether `node` is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes[node.index()].alive
    }

    /// Slot owned by `node`, if it has converged.
    pub fn slot_of(&self, node: NodeId) -> Option<u16> {
        self.nodes[node.index()].my_slot
    }

    /// The node's MAC neighbour view (cross-layer read access — this is
    /// the information DirQ uses to repair its tree).
    pub fn neighbor_table(&self, node: NodeId) -> NeighborView<'_> {
        self.arena.view(node)
    }

    /// Hop distance to the gateway as the MAC currently believes it
    /// (root = 0; `u16::MAX` when unknown).
    pub fn gateway_distance(&self, node: NodeId) -> u16 {
        if node.is_root() {
            0
        } else {
            self.arena.view(node).min_gateway_dist().saturating_add(1)
        }
    }

    /// Paper-comparable data-message energy ledger.
    pub fn data_ledger(&self) -> &EnergyLedger {
        &self.data_ledger
    }

    /// Mutable access (for per-phase resets in experiments).
    pub fn data_ledger_mut(&mut self) -> &mut EnergyLedger {
        &mut self.data_ledger
    }

    /// LMAC's own control-traffic ledger (excluded from the paper's cost
    /// comparison; identical for DirQ and flooding).
    pub fn control_ledger(&self) -> &EnergyLedger {
        &self.control_ledger
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &MacStats {
        &self.stats
    }

    /// Number of messages waiting in `node`'s transmit queue.
    pub fn queue_len(&self, node: NodeId) -> usize {
        self.nodes[node.index()].tx_queue.len()
    }

    /// Queue a data message for transmission in `from`'s next owned slot.
    /// The payload is interned once; all receiver indications will share
    /// it. Returns `false` (dropping the message) when `from` is dead.
    pub fn enqueue(&mut self, from: NodeId, dest: Destination, payload: P) -> bool {
        self.enqueue_shared(from, dest, PayloadHandle::new(payload))
    }

    /// Queue an already-interned payload (zero-copy re-forwarding: a
    /// rebroadcast can pass the handle it received straight back down).
    pub fn enqueue_shared(
        &mut self,
        from: NodeId,
        dest: Destination,
        payload: PayloadHandle<P>,
    ) -> bool {
        let node = &mut self.nodes[from.index()];
        if !node.alive {
            return false;
        }
        node.tx_queue.push_back((dest, payload));
        true
    }

    /// Kill or revive a node. Death silences it immediately (neighbours
    /// detect the silence via the liveness timeout). Birth starts the LMAC
    /// join procedure: listen, then pick a free slot.
    pub fn set_alive(&mut self, node: NodeId, alive: bool) {
        let idx = node.index();
        if self.nodes[idx].alive == alive {
            return;
        }
        if alive {
            self.nodes[idx] = MacNode::offline();
            self.nodes[idx].alive = true;
            self.nodes[idx].listen_remaining = self.cfg.listen_frames_before_pick;
            self.arena.reset_row(node);
            self.alive_mask.insert(node);
            self.unslotted_alive += 1;
        } else {
            match self.nodes[idx].my_slot.take() {
                Some(s) => self.slot_owners[s as usize].retain(|&n| n != node),
                None => self.unslotted_alive -= 1,
            }
            self.nodes[idx].alive = false;
            self.nodes[idx].tx_queue.clear();
            self.arena.reset_row(node);
            self.alive_mask.remove(node);
        }
    }

    /// Write the dynamic MAC state (clock, statistics, ledgers, per-node
    /// join/queue state, slot ownership, neighbour knowledge) to `w`.
    /// `encode` serializes one queued payload; the MAC never inspects
    /// payloads, so their codec belongs to the upper layer.
    pub fn snap(&self, w: &mut SnapWriter, mut encode: impl FnMut(&mut SnapWriter, &P)) {
        w.tag(b"LMAC");
        w.u64(self.frame);
        w.u16(self.slot);
        for v in [
            self.stats.delivered,
            self.stats.undeliverable,
            self.stats.collisions,
            self.stats.slots_surrendered,
            self.stats.slots_picked,
            self.stats.no_free_slot,
            self.stats.deaths_detected,
            self.stats.new_neighbors_detected,
        ] {
            w.u64(v);
        }
        self.data_ledger.snap(w);
        self.control_ledger.snap(w);
        w.len_of(self.nodes.len());
        for node in &self.nodes {
            w.bool(node.alive);
            w.opt_u16(node.my_slot);
            w.u32(node.listen_remaining);
            w.len_of(node.tx_queue.len());
            for (dest, payload) in &node.tx_queue {
                match dest {
                    Destination::Broadcast => w.u8(0),
                    Destination::Multicast(list) => {
                        w.u8(1);
                        w.len_of(list.len());
                        for id in list.as_slice() {
                            w.u32(id.index() as u32);
                        }
                    }
                }
                encode(w, payload);
            }
        }
        w.len_of(self.slot_owners.len());
        for owners in &self.slot_owners {
            w.len_of(owners.len());
            for id in owners {
                w.u32(id.index() as u32);
            }
        }
        self.arena.snap(w);
    }

    /// Overlay state captured by [`LmacNetwork::snap`] onto this network,
    /// which must be freshly built over the same configuration and
    /// topology. The liveness bitmap and unslotted-alive count are
    /// recomputed; slot advancement resumes exactly where the snapshot
    /// left off.
    pub fn restore(
        &mut self,
        r: &mut SnapReader<'_>,
        mut decode: impl FnMut(&mut SnapReader<'_>) -> Result<P, SnapError>,
    ) -> Result<(), SnapError> {
        r.tag(b"LMAC")?;
        self.frame = r.u64()?;
        self.slot = r.u16()?;
        self.stats.delivered = r.u64()?;
        self.stats.undeliverable = r.u64()?;
        self.stats.collisions = r.u64()?;
        self.stats.slots_surrendered = r.u64()?;
        self.stats.slots_picked = r.u64()?;
        self.stats.no_free_slot = r.u64()?;
        self.stats.deaths_detected = r.u64()?;
        self.stats.new_neighbors_detected = r.u64()?;
        self.data_ledger.restore(r)?;
        self.control_ledger.restore(r)?;
        let n = self.nodes.len();
        let pos = r.position();
        if r.seq_len(3)? != n {
            return Err(SnapError::Malformed { pos, what: "MAC node count mismatch" });
        }
        let read_node_id = |r: &mut SnapReader<'_>| -> Result<NodeId, SnapError> {
            let pos = r.position();
            let idx = r.u32()? as usize;
            if idx >= n {
                return Err(SnapError::Malformed { pos, what: "node id out of range" });
            }
            Ok(NodeId::from_index(idx))
        };
        for node in self.nodes.iter_mut() {
            node.alive = r.bool()?;
            node.my_slot = r.opt_u16()?;
            node.listen_remaining = r.u32()?;
            node.tx_queue.clear();
            let q = r.seq_len(2)?;
            for _ in 0..q {
                let dest = match r.u8()? {
                    0 => Destination::Broadcast,
                    1 => {
                        let m = r.seq_len(4)?;
                        let mut list = dirq_net::NodeList::new();
                        for _ in 0..m {
                            list.push(read_node_id(r)?);
                        }
                        Destination::Multicast(list)
                    }
                    _ => {
                        return Err(SnapError::Malformed {
                            pos: r.position(),
                            what: "unknown destination kind",
                        })
                    }
                };
                node.tx_queue.push_back((dest, PayloadHandle::new(decode(r)?)));
            }
        }
        let pos = r.position();
        if r.seq_len(8)? != self.slot_owners.len() {
            return Err(SnapError::Malformed { pos, what: "slot count mismatch" });
        }
        for owners in self.slot_owners.iter_mut() {
            owners.clear();
            let m = r.seq_len(4)?;
            for _ in 0..m {
                owners.push(read_node_id(r)?);
            }
        }
        self.arena.restore(r)?;
        self.alive_mask = NodeBits::new(n);
        self.unslotted_alive = 0;
        for i in 0..n {
            if self.nodes[i].alive {
                self.alive_mask.insert(NodeId::from_index(i));
                if self.nodes[i].my_slot.is_none() {
                    self.unslotted_alive += 1;
                }
            }
        }
        Ok(())
    }
}

/// The slot machinery. `P: Send + Sync` because the colour-class sharded
/// listener phase may hand payload handles to pool workers; construction,
/// configuration and queueing above stay available for any payload.
impl<P: Send + Sync> LmacNetwork<P> {
    /// Advance one slot, returning the upcalls generated in it.
    ///
    /// Convenience wrapper over [`LmacNetwork::advance_slot_into`]; hot
    /// callers should hold a reusable buffer and call that directly.
    pub fn advance_slot(&mut self, rng: &mut SimRng) -> Vec<MacIndication<P>> {
        let mut out = Vec::new();
        self.advance_slot_into(rng, &mut out);
        out
    }

    /// Advance one slot, appending the generated upcalls to `out`.
    /// Performs no heap allocation in steady state.
    pub fn advance_slot_into(&mut self, rng: &mut SimRng, out: &mut Vec<MacIndication<P>>) {
        self.advance_slot_impl(rng, out, false);
    }

    /// Reference implementation of one slot with the occupancy-index and
    /// listener-side audibility shortcuts disabled: every slot is processed
    /// and every listener scans the full per-slot transmitter list through
    /// `Topology::has_link`, exactly as the pre-index loop did. Kept for
    /// the differential property tests — indications, statistics and
    /// ledgers must match [`LmacNetwork::advance_slot_into`] bit for bit.
    pub fn advance_slot_full_scan_into(
        &mut self,
        rng: &mut SimRng,
        out: &mut Vec<MacIndication<P>>,
    ) {
        self.advance_slot_impl(rng, out, true);
    }

    fn advance_slot_impl(
        &mut self,
        rng: &mut SimRng,
        out: &mut Vec<MacIndication<P>>,
        full_scan: bool,
    ) {
        let s = self.slot;

        // Slot-occupancy index: a slot with no alive owner carries no
        // transmission, no reception and no RNG draw — skip straight to the
        // clock advance instead of clearing and scanning the scratch state.
        // (Owner lists are maintained by `set_alive`/joins; typically 0 or
        // 1 entries, so the alive probe is O(1) in practice.)
        let occupied = self.slot_owners[s as usize].iter().any(|&t| self.alive_mask.contains(t));
        if occupied || full_scan {
            self.run_slot_traffic(rng, out, full_scan);
        }

        // --- Slot advance / frame boundary ---------------------------------
        self.slot += 1;
        if self.slot == self.cfg.slots_per_frame {
            self.slot = 0;
            self.frame += 1;
            self.frame_boundary(rng, out);
        }
    }

    /// Transmission + reception + collision resolution for the current
    /// slot. Split out of [`LmacNetwork::advance_slot_impl`] so empty slots
    /// can bypass it entirely.
    fn run_slot_traffic(
        &mut self,
        rng: &mut SimRng,
        out: &mut Vec<MacIndication<P>>,
        full_scan: bool,
    ) {
        let s = self.slot;

        // The scratch moves out of `self` for the duration of the slot so
        // its buffers can be borrowed independently of the node table.
        let mut scratch = std::mem::replace(&mut self.scratch, FrameScratch::placeholder());
        {
            let FrameScratch {
                transmitters,
                tx_mark,
                txs,
                tx_data,
                listener_mark,
                collided_mark,
                audible,
                audible_tx,
                tx_index,
                stale_buf: _,
            } = &mut scratch;

            transmitters.clear();
            tx_mark.clear();
            txs.clear();
            tx_data.clear();
            listener_mark.clear();
            collided_mark.clear();

            for &t in &self.slot_owners[s as usize] {
                if self.alive_mask.contains(t) {
                    tx_index[t.index()] = transmitters.len() as u32;
                    transmitters.push(t);
                    tx_mark.insert(t);
                }
            }

            // --- Transmission phase --------------------------------------------
            // Each transmitter sends one control section plus up to
            // `data_messages_per_slot` queued data messages.
            for &t in transmitters.iter() {
                let gw = self.gateway_distance(t);
                let occupied = self.arena.view(t).one_hop_occupancy();
                let node = &mut self.nodes[t.index()];
                let data_start = tx_data.len() as u32;
                for _ in 0..self.cfg.data_messages_per_slot {
                    match node.tx_queue.pop_front() {
                        Some(m) => tx_data.push(m),
                        None => break,
                    }
                }
                let data_end = tx_data.len() as u32;
                self.control_ledger.record_tx(t);
                for _ in data_start..data_end {
                    self.data_ledger.record_tx(t);
                }
                txs.push(TxRecord { from: t, occupied, gateway_dist: gw, data_start, data_end });
            }

            // --- Reception phase -----------------------------------------------
            // Listeners are the alive neighbours of transmitters (half-duplex:
            // a transmitter cannot listen in its own slot). The bitset yields
            // them deduplicated in ascending id order. The same pass resolves
            // audibility: with a converged 2-hop schedule each listener hears
            // exactly one transmitter, so a single node→tx slot suffices and
            // the collided sentinel flags the (rare) join transients.
            for (ti, tx) in txs.iter().enumerate() {
                let base = self.topo.row_start(tx.from);
                for (p, &nb) in self.topo.neighbors(tx.from).iter().enumerate() {
                    if self.alive_mask.contains(nb) && !tx_mark.contains(nb) {
                        listener_mark.insert(nb);
                        let slot_entry = &mut audible_tx[nb.index()];
                        // Pack (tx index, the transmitter's position in the
                        // listener's row) for the delivery hot path.
                        *slot_entry = if *slot_entry == AUDIBLE_NONE {
                            ((ti as u64) << 32) | u64::from(self.mirror_pos[base + p])
                        } else {
                            AUDIBLE_COLLIDED
                        };
                    }
                }
            }

            // The sharded path helps only when the pool really has more
            // than one runnable worker (helpers are clamped to the
            // hardware); both paths are bit-identical, so this is purely a
            // speed decision. `force_sharded` lets the differential suites
            // cover the sharded path on any host.
            let sharded = !full_scan
                && (self.force_sharded || self.pool.as_ref().is_some_and(|p| p.workers() > 1));
            if sharded {
                // --- Colour-class parallel listener phase ------------------
                // Shard the listener loop across the precomputed 2-hop
                // colour classes: shards touch disjoint arena rows,
                // audibility slots and rx tallies, statistics merge as
                // plain sums, and the sparse indication streams are merged
                // back in ascending listener order — bit-identical to the
                // serial loop below at any worker count.
                let nshards = self.shards.len();
                let phase = ListenerPhase {
                    arena: self.arena.raw(),
                    audible_tx: audible_tx.as_mut_ptr(),
                    shards: self.shards.as_mut_ptr(),
                    control_rx: self.control_ledger.rx_tallies_mut().as_mut_ptr(),
                    data_rx: self.data_ledger.rx_tallies_mut().as_mut_ptr(),
                    topo: &self.topo,
                    shard_of: &self.shard_of,
                    listener_mark,
                    txs,
                    tx_data,
                    tx_index,
                    slot: s,
                    frame: self.frame,
                };
                let pool = self.pool.as_mut().expect("sharded path requires the pool");
                // SAFETY: shard `k` is executed exactly once and shards
                // touch disjoint state (see `ListenerPhase`).
                pool.run(nshards, &|k| unsafe { phase.run_shard(k) });

                // Deterministic merge. Statistics: sum the shard deltas in
                // shard order. Indications: a k-way merge by listener id —
                // every listener lives in exactly one shard and each
                // shard's stream is ascending, so the result reproduces
                // the serial loop's ascending interleaving exactly.
                for sh in &mut self.shards {
                    self.stats.collisions += sh.collisions;
                    self.stats.delivered += sh.delivered;
                    self.stats.new_neighbors_detected += sh.new_neighbors;
                    for &t in &sh.collided_from {
                        collided_mark.insert(t);
                    }
                }
                loop {
                    let mut best: Option<(NodeId, usize)> = None;
                    for k in 0..nshards {
                        let sh = &self.shards[k];
                        if sh.cursor < sh.out.len() {
                            let l = indication_listener(&sh.out[sh.cursor]);
                            if best.is_none_or(|(b, _)| l < b) {
                                best = Some((l, k));
                            }
                        }
                    }
                    let Some((_, k)) = best else { break };
                    let sh = &mut self.shards[k];
                    // A refcount bump, not a payload copy (manual Clone).
                    out.push(sh.out[sh.cursor].clone());
                    sh.cursor += 1;
                }
            } else {
                self.serial_listener_loop(
                    s,
                    out,
                    full_scan,
                    listener_mark,
                    collided_mark,
                    audible,
                    audible_tx,
                    tx_index,
                    txs,
                    tx_data,
                );
            }

            // Multicast destinations that did not hear the message: dead, out
            // of range, or currently colliding. Surface them to the upper
            // layer — the payload handle is shared, not copied.
            for tx in txs.iter() {
                for (dest, payload) in &tx_data[tx.data_start as usize..tx.data_end as usize] {
                    if let Destination::Multicast(list) = dest {
                        for &d in list.as_slice() {
                            let heard = self.alive_mask.contains(d)
                                && self.topo.has_link(tx.from, d)
                                && !tx_mark.contains(d)
                                && !collided_mark.contains(tx.from);
                            if !heard {
                                self.stats.undeliverable += 1;
                                out.push(MacIndication::Undeliverable {
                                    from: tx.from,
                                    to: d,
                                    payload: payload.clone(),
                                });
                            }
                        }
                    }
                }
            }

            // Collision resolution: surrender and re-join after a random
            // backoff, in ascending id order (as the sorted list used to be).
            for t in collided_mark.iter() {
                if let Some(slot) = self.nodes[t.index()].my_slot.take() {
                    self.slot_owners[slot as usize].retain(|&n| n != t);
                    self.stats.slots_surrendered += 1;
                    self.unslotted_alive += 1;
                    self.nodes[t.index()].listen_remaining =
                        self.cfg.listen_frames_before_pick + rng.gen_range(0..2u32);
                }
            }

            // Sent payload handles drop here; a handle survives only inside
            // the indications that reference it. The tx_index entries are
            // reset transmitter-by-transmitter, keeping the wipe O(|txs|).
            tx_data.clear();
            for &t in transmitters.iter() {
                tx_index[t.index()] = u32::MAX;
            }
        }
        self.scratch = scratch;
    }

    /// The serial listener phase: reception, arena-row updates, collision
    /// detection, statistics and ledgers for every marked listener, in
    /// ascending id order straight off the bitset. The parallel path must
    /// reproduce this loop's output bit for bit; `advance_slot_full_scan_into`
    /// flows through here with `full_scan` set.
    #[allow(clippy::too_many_arguments)]
    fn serial_listener_loop(
        &mut self,
        s: u16,
        out: &mut Vec<MacIndication<P>>,
        full_scan: bool,
        listener_mark: &NodeBits,
        collided_mark: &mut NodeBits,
        audible: &mut Vec<u32>,
        audible_tx: &mut [u64],
        tx_index: &[u32],
        txs: &[TxRecord],
        tx_data: &[(Destination, PayloadHandle<P>)],
    ) {
        for l in listener_mark.iter() {
            let resolved = std::mem::replace(&mut audible_tx[l.index()], AUDIBLE_NONE);
            audible.clear();
            if full_scan {
                // Reference path: probe the link matrix per transmitter.
                for (i, tx) in txs.iter().enumerate() {
                    if self.topo.has_link(tx.from, l) {
                        audible.push(i as u32);
                    }
                }
            } else if resolved == AUDIBLE_COLLIDED {
                // Rare join transient: recover the full audible set by
                // walking the listener's CSR row against the per-slot
                // transmitter index (links are symmetric).
                for &nb in self.topo.neighbors(l) {
                    let ti = tx_index[nb.index()];
                    if ti != u32::MAX {
                        audible.push(ti);
                    }
                }
            } else {
                audible.push((resolved >> 32) as u32);
            }
            if audible.len() > 1 {
                // Collision: l hears garbage and will advertise it; every
                // audible transmitter must surrender its slot.
                self.stats.collisions += 1;
                for &i in audible.iter() {
                    collided_mark.insert(txs[i as usize].from);
                }
                continue;
            }
            let tx = &txs[audible[0] as usize];
            self.control_ledger.record_rx(l);
            let is_new = if full_scan || resolved == AUDIBLE_COLLIDED {
                // Cold paths resolve by id, as the pre-index loop did.
                self.arena.heard(l, tx.from, Some(s), tx.occupied, tx.gateway_dist, self.frame)
            } else {
                self.arena.heard_at(
                    l,
                    (resolved & 0xFFFF_FFFF) as usize,
                    tx.from,
                    Some(s),
                    tx.occupied,
                    tx.gateway_dist,
                    self.frame,
                )
            };
            if is_new {
                self.stats.new_neighbors_detected += 1;
                out.push(MacIndication::NeighborNew { observer: l, new: tx.from });
            }
            for (dest, payload) in &tx_data[tx.data_start as usize..tx.data_end as usize] {
                if dest.includes(l) {
                    self.data_ledger.record_rx(l);
                    self.stats.delivered += 1;
                    out.push(MacIndication::Delivered {
                        to: l,
                        from: tx.from,
                        payload: payload.clone(),
                    });
                }
            }
        }
    }

    /// Advance a whole frame (`slots_per_frame` slots).
    pub fn advance_frame(&mut self, rng: &mut SimRng) -> Vec<MacIndication<P>> {
        let mut out = Vec::new();
        let start_frame = self.frame;
        while self.frame == start_frame {
            self.advance_slot_into(rng, &mut out);
        }
        out
    }

    fn frame_boundary(&mut self, rng: &mut SimRng, out: &mut Vec<MacIndication<P>>) {
        // Liveness: stale neighbours are declared dead (cross-layer upcall).
        let mut stale_buf = std::mem::take(&mut self.scratch.stale_buf);
        for i in 0..self.nodes.len() {
            let observer = NodeId::from_index(i);
            if !self.nodes[i].alive {
                continue;
            }
            stale_buf.clear();
            self.arena.collect_stale(
                observer,
                self.frame,
                self.cfg.max_missed_frames,
                &mut stale_buf,
            );
            for &dead in &stale_buf {
                self.arena.remove(observer, dead);
                self.stats.deaths_detected += 1;
                out.push(MacIndication::NeighborDied { observer, dead });
            }
        }
        stale_buf.clear();
        self.scratch.stale_buf = stale_buf;

        // Slot selection for joining nodes (skipped outright when every
        // alive node is placed — the steady state).
        if self.unslotted_alive == 0 {
            return;
        }
        for i in 0..self.nodes.len() {
            let node = NodeId::from_index(i);
            let n = &mut self.nodes[i];
            if !n.alive || n.my_slot.is_some() {
                continue;
            }
            if n.listen_remaining > 0 {
                n.listen_remaining -= 1;
                continue;
            }
            let occupied = self.arena.view(node).two_hop_occupancy();
            let free = occupied.free_slots(self.cfg.slots_per_frame);
            if free.is_empty() {
                self.stats.no_free_slot += 1;
                continue;
            }
            let slot = free[rng.gen_range(0..free.len())];
            n.my_slot = Some(slot);
            self.unslotted_alive -= 1;
            self.slot_owners[slot as usize].push(node);
            self.stats.slots_picked += 1;
        }
    }

    /// Verify the global TDMA invariant: no two alive nodes within two hops
    /// own the same slot. Returns the violating pairs (empty = converged).
    pub fn schedule_conflicts(&self) -> Vec<(NodeId, NodeId)> {
        let mut conflicts = Vec::new();
        for a in self.topo.nodes() {
            let (Some(sa), true) = (self.nodes[a.index()].my_slot, self.nodes[a.index()].alive)
            else {
                continue;
            };
            for &b in self.topo.neighbors(a) {
                if !self.nodes[b.index()].alive {
                    continue;
                }
                if b > a && self.nodes[b.index()].my_slot == Some(sa) {
                    conflicts.push((a, b));
                }
                for &c in self.topo.neighbors(b) {
                    if c > a
                        && c != a
                        && !self.topo.has_link(a, c)
                        && self.nodes[c.index()].alive
                        && self.nodes[c.index()].my_slot == Some(sa)
                    {
                        conflicts.push((a, c));
                    }
                }
            }
        }
        conflicts.sort_unstable();
        conflicts.dedup();
        conflicts
    }

    /// Whether every alive node currently owns a slot.
    pub fn all_converged(&self) -> bool {
        self.nodes.iter().all(|n| !n.alive || n.my_slot.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirq_net::placement::{Placement, SinkPlacement};
    use dirq_net::radio::UnitDisk;
    use dirq_sim::RngFactory;

    type Net = LmacNetwork<u32>;

    fn line_topo(n: usize) -> Topology {
        let edges: Vec<(NodeId, NodeId)> =
            (0..n - 1).map(|i| (NodeId::from_index(i), NodeId::from_index(i + 1))).collect();
        Topology::from_edges(n, &edges)
    }

    fn random_topo(n: usize, seed: u64) -> Topology {
        let mut rng = RngFactory::new(seed).stream("lmac-test");
        Topology::deploy_connected(
            n,
            &Placement::UniformRandom { side: 100.0 },
            SinkPlacement::Corner,
            &UnitDisk::new(30.0),
            &mut rng,
            200,
        )
        .expect("connected deployment")
    }

    #[test]
    fn greedy_assignment_is_conflict_free() {
        let mut net = Net::new(LmacConfig::default(), random_topo(50, 1));
        net.assign_slots_greedy();
        assert!(net.all_converged());
        assert!(net.schedule_conflicts().is_empty());
    }

    #[test]
    fn join_protocol_converges_conflict_free() {
        let mut rng = RngFactory::new(2).stream("join");
        let mut net = Net::new(LmacConfig::default(), random_topo(30, 2));
        for _ in 0..40 {
            net.advance_frame(&mut rng);
            if net.all_converged() && net.schedule_conflicts().is_empty() {
                break;
            }
        }
        assert!(net.all_converged(), "nodes failed to acquire slots");
        assert!(
            net.schedule_conflicts().is_empty(),
            "schedule still conflicted: {:?}",
            net.schedule_conflicts()
        );
    }

    #[test]
    fn unicast_delivery_and_energy() {
        let mut rng = RngFactory::new(3).stream("uni");
        let mut net = Net::new(LmacConfig::default(), line_topo(3));
        net.assign_slots_greedy();
        net.enqueue(NodeId(0), Destination::unicast(NodeId(1)), 42);
        let inds = net.advance_frame(&mut rng);
        let delivered: Vec<_> = inds
            .iter()
            .filter_map(|i| match i {
                MacIndication::Delivered { to, from, payload } => Some((*to, *from, **payload)),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![(NodeId(1), NodeId(0), 42)]);
        // Paper cost model: 1 tx + 1 intended rx.
        assert_eq!(net.data_ledger().total_tx(), 1);
        assert_eq!(net.data_ledger().total_rx(), 1);
        // Node 2 heard nothing relevant: no data rx recorded for it.
        assert_eq!(net.data_ledger().rx_count(NodeId(2)), 0);
    }

    #[test]
    fn broadcast_counts_all_hearers() {
        let mut rng = RngFactory::new(4).stream("bc");
        // Star: 0 in the middle of 1, 2, 3.
        let topo = Topology::from_edges(
            4,
            &[(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2)), (NodeId(0), NodeId(3))],
        );
        let mut net = Net::new(LmacConfig::default(), topo);
        net.assign_slots_greedy();
        net.enqueue(NodeId(0), Destination::Broadcast, 7);
        let inds = net.advance_frame(&mut rng);
        let delivered =
            inds.iter().filter(|i| matches!(i, MacIndication::Delivered { .. })).count();
        assert_eq!(delivered, 3);
        assert_eq!(net.data_ledger().total_tx(), 1);
        assert_eq!(net.data_ledger().total_rx(), 3);
    }

    #[test]
    fn broadcast_shares_one_payload_allocation() {
        let mut rng = RngFactory::new(4).stream("bc-shared");
        let topo = Topology::from_edges(
            4,
            &[(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2)), (NodeId(0), NodeId(3))],
        );
        let mut net = Net::new(LmacConfig::default(), topo);
        net.assign_slots_greedy();
        net.enqueue(NodeId(0), Destination::Broadcast, 7);
        let inds = net.advance_frame(&mut rng);
        let handles: Vec<&PayloadHandle<u32>> = inds
            .iter()
            .filter_map(|i| match i {
                MacIndication::Delivered { payload, .. } => Some(payload),
                _ => None,
            })
            .collect();
        assert_eq!(handles.len(), 3);
        assert!(
            handles.windows(2).all(|w| PayloadHandle::ptr_eq(w[0], w[1])),
            "every receiver's indication must share the interned payload"
        );
    }

    #[test]
    fn multicast_counts_only_intended() {
        let mut rng = RngFactory::new(5).stream("mc");
        let topo = Topology::from_edges(
            4,
            &[(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2)), (NodeId(0), NodeId(3))],
        );
        let mut net = Net::new(LmacConfig::default(), topo);
        net.assign_slots_greedy();
        net.enqueue(NodeId(0), Destination::multicast([NodeId(1), NodeId(3)]), 9);
        let inds = net.advance_frame(&mut rng);
        let to: Vec<NodeId> = inds
            .iter()
            .filter_map(|i| match i {
                MacIndication::Delivered { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(to, vec![NodeId(1), NodeId(3)]);
        assert_eq!(net.data_ledger().total_tx(), 1);
        assert_eq!(net.data_ledger().total_rx(), 2);
        assert_eq!(net.data_ledger().rx_count(NodeId(2)), 0);
    }

    #[test]
    fn dead_neighbor_detected_within_timeout() {
        let mut rng = RngFactory::new(6).stream("death");
        let cfg = LmacConfig { max_missed_frames: 3, ..Default::default() };
        let mut net = Net::new(cfg, line_topo(3));
        net.assign_slots_greedy();
        // Run a few frames so tables are warm.
        for _ in 0..3 {
            net.advance_frame(&mut rng);
        }
        net.set_alive(NodeId(2), false);
        let mut died: Vec<(NodeId, NodeId)> = Vec::new();
        for _ in 0..6 {
            for ind in net.advance_frame(&mut rng) {
                if let MacIndication::NeighborDied { observer, dead } = ind {
                    died.push((observer, dead));
                }
            }
        }
        assert_eq!(died, vec![(NodeId(1), NodeId(2))]);
        assert_eq!(net.stats().deaths_detected, 1);
    }

    #[test]
    fn born_node_joins_and_is_announced() {
        let mut rng = RngFactory::new(7).stream("birth");
        let mut net = Net::new(LmacConfig::default(), line_topo(3));
        net.set_alive(NodeId(2), false);
        net.assign_slots_greedy();
        for _ in 0..2 {
            net.advance_frame(&mut rng);
        }
        net.set_alive(NodeId(2), true);
        let mut seen_new = Vec::new();
        for _ in 0..8 {
            for ind in net.advance_frame(&mut rng) {
                if let MacIndication::NeighborNew { observer, new } = ind {
                    seen_new.push((observer, new));
                }
            }
        }
        // Node 1 must eventually hear node 2 (and node 2 hears node 1 on
        // joining — it had an empty table).
        assert!(seen_new.contains(&(NodeId(1), NodeId(2))), "saw: {seen_new:?}");
        assert!(net.slot_of(NodeId(2)).is_some(), "new node never acquired a slot");
        assert!(net.schedule_conflicts().is_empty());
    }

    #[test]
    fn undeliverable_to_dead_destination() {
        let mut rng = RngFactory::new(8).stream("undeliv");
        let mut net = Net::new(LmacConfig::default(), line_topo(3));
        net.assign_slots_greedy();
        net.set_alive(NodeId(1), false);
        net.enqueue(NodeId(0), Destination::unicast(NodeId(1)), 5);
        let inds = net.advance_frame(&mut rng);
        assert!(inds.iter().any(|i| matches!(
            i,
            MacIndication::Undeliverable { from, to, payload }
                if *from == NodeId(0) && *to == NodeId(1) && **payload == 5
        )));
        assert_eq!(net.stats().undeliverable, 1);
    }

    #[test]
    fn enqueue_on_dead_node_is_rejected() {
        let mut net = Net::new(LmacConfig::default(), line_topo(2));
        net.set_alive(NodeId(1), false);
        assert!(!net.enqueue(NodeId(1), Destination::Broadcast, 1));
        assert!(net.enqueue(NodeId(0), Destination::Broadcast, 1));
    }

    #[test]
    fn queue_drains_at_configured_rate() {
        let mut rng = RngFactory::new(9).stream("queue");
        let cfg = LmacConfig { data_messages_per_slot: 2, ..Default::default() };
        let mut net = Net::new(cfg, line_topo(2));
        net.assign_slots_greedy();
        for i in 0..5 {
            net.enqueue(NodeId(0), Destination::unicast(NodeId(1)), i);
        }
        assert_eq!(net.queue_len(NodeId(0)), 5);
        net.advance_frame(&mut rng);
        assert_eq!(net.queue_len(NodeId(0)), 3, "2 messages per slot drain");
        net.advance_frame(&mut rng);
        net.advance_frame(&mut rng);
        assert_eq!(net.queue_len(NodeId(0)), 0);
        assert_eq!(net.stats().delivered, 5);
    }

    #[test]
    fn advance_slot_into_reuses_buffer() {
        let mut rng = RngFactory::new(9).stream("reuse");
        let mut net = Net::new(LmacConfig::default(), line_topo(2));
        net.assign_slots_greedy();
        net.enqueue(NodeId(0), Destination::unicast(NodeId(1)), 1);
        let mut buf = Vec::with_capacity(16);
        let cap = buf.capacity();
        let mut delivered = 0;
        for _ in 0..net.config().slots_per_frame {
            buf.clear();
            net.advance_slot_into(&mut rng, &mut buf);
            delivered +=
                buf.iter().filter(|i| matches!(i, MacIndication::Delivered { .. })).count();
        }
        assert_eq!(delivered, 1);
        assert_eq!(buf.capacity(), cap, "steady-state frame must not grow the buffer");
    }

    #[test]
    fn gateway_distance_propagates() {
        let mut rng = RngFactory::new(10).stream("gw");
        let mut net = Net::new(LmacConfig::default(), line_topo(4));
        net.assign_slots_greedy();
        for _ in 0..6 {
            net.advance_frame(&mut rng);
        }
        assert_eq!(net.gateway_distance(NodeId(0)), 0);
        assert_eq!(net.gateway_distance(NodeId(1)), 1);
        assert_eq!(net.gateway_distance(NodeId(2)), 2);
        assert_eq!(net.gateway_distance(NodeId(3)), 3);
    }

    #[test]
    fn scarce_slots_converge_through_collisions() {
        // 12 slots for a dense 30-node graph: joins collide repeatedly but
        // either converge conflict-free or report no_free_slot — never a
        // silent inconsistency.
        let mut rng = RngFactory::new(20).stream("scarce");
        let topo = random_topo(30, 20);
        let cfg = LmacConfig { slots_per_frame: 24, ..Default::default() };
        let mut net = Net::new(cfg, topo);
        for _ in 0..120 {
            net.advance_frame(&mut rng);
        }
        assert!(
            net.schedule_conflicts().is_empty(),
            "persisting conflicts: {:?}",
            net.schedule_conflicts()
        );
        let unplaced = (0..30)
            .filter(|&i| net.is_alive(NodeId(i)) && net.slot_of(NodeId(i)).is_none())
            .count();
        if unplaced > 0 {
            assert!(net.stats().no_free_slot > 0, "unplaced nodes must be accounted for");
        }
    }

    #[test]
    fn mass_death_detected_for_every_neighbour() {
        let mut rng = RngFactory::new(21).stream("mass-death");
        let topo = random_topo(20, 21);
        let mut net = Net::new(LmacConfig::default(), topo.clone());
        net.assign_slots_greedy();
        for _ in 0..4 {
            net.advance_frame(&mut rng);
        }
        // Kill half the network at once.
        let victims: Vec<NodeId> = (10..20).map(NodeId).collect();
        for &v in &victims {
            net.set_alive(v, false);
        }
        let mut died: Vec<(NodeId, NodeId)> = Vec::new();
        for _ in 0..10 {
            for ind in net.advance_frame(&mut rng) {
                if let MacIndication::NeighborDied { observer, dead } = ind {
                    died.push((observer, dead));
                }
            }
        }
        // Every surviving node must have declared each dead neighbour.
        for survivor in (0..10).map(NodeId) {
            for &v in &victims {
                if topo.has_link(survivor, v) {
                    assert!(died.contains(&(survivor, v)), "{survivor} never declared {v} dead");
                }
            }
        }
        // And no declarations among the dead or for alive neighbours.
        for &(observer, dead) in &died {
            assert!(observer.index() < 10, "dead node {observer} raised an upcall");
            assert!(dead.index() >= 10, "alive node {dead} was declared dead");
        }
    }

    #[test]
    fn reborn_node_reacquires_distinct_slot() {
        let mut rng = RngFactory::new(22).stream("rebirth");
        let topo = random_topo(15, 22);
        let mut net = Net::new(LmacConfig::default(), topo);
        net.assign_slots_greedy();
        for _ in 0..3 {
            net.advance_frame(&mut rng);
        }
        net.set_alive(NodeId(7), false);
        for _ in 0..6 {
            net.advance_frame(&mut rng);
        }
        net.set_alive(NodeId(7), true);
        for _ in 0..12 {
            net.advance_frame(&mut rng);
        }
        assert!(net.slot_of(NodeId(7)).is_some(), "rebirth must re-join");
        assert!(net.schedule_conflicts().is_empty());
    }

    #[test]
    fn worker_count_never_changes_the_indication_stream() {
        // The colour-class parallel listener phase must be bit-identical
        // to the serial loop: same indications in the same order, same
        // statistics, same ledgers — across joins, traffic and churn.
        let topo = random_topo(40, 33);
        let mut nets: Vec<Net> = [1usize, 2, 4]
            .iter()
            .map(|&w| {
                let mut net =
                    Net::new(LmacConfig { workers: w, ..LmacConfig::default() }, topo.clone());
                if w > 1 {
                    net.force_sharded_listeners();
                }
                net
            })
            .collect();
        let mut rngs: Vec<_> =
            (0..nets.len()).map(|_| RngFactory::new(33).stream("workers")).collect();
        for net in &mut nets {
            net.enqueue(NodeId(0), Destination::Broadcast, 7);
            net.enqueue(NodeId(3), Destination::unicast(NodeId(5)), 9);
        }
        let slots = nets[0].config().slots_per_frame;
        let mut streams: Vec<Vec<MacIndication<u32>>> = vec![Vec::new(); nets.len()];
        for frame in 0..8u32 {
            if frame == 2 {
                for net in &mut nets {
                    net.set_alive(NodeId(7), false);
                    net.set_alive(NodeId(11), false);
                }
            }
            if frame == 5 {
                for net in &mut nets {
                    net.set_alive(NodeId(7), true);
                }
            }
            for _ in 0..slots {
                for (i, net) in nets.iter_mut().enumerate() {
                    net.advance_slot_into(&mut rngs[i], &mut streams[i]);
                }
            }
        }
        assert_eq!(streams[0], streams[1], "2 workers diverged from serial");
        assert_eq!(streams[0], streams[2], "4 workers diverged from serial");
        let reference = format!("{:?}", nets[0].stats());
        for net in &nets[1..] {
            assert_eq!(format!("{:?}", net.stats()), reference);
            assert_eq!(format!("{:?}", net.data_ledger()), format!("{:?}", nets[0].data_ledger()));
        }
    }

    #[test]
    fn control_ledger_separate_from_data() {
        let mut rng = RngFactory::new(11).stream("ctrl");
        let mut net = Net::new(LmacConfig::default(), line_topo(3));
        net.assign_slots_greedy();
        net.advance_frame(&mut rng);
        // 3 control transmissions (one per node); data untouched.
        assert_eq!(net.control_ledger().total_tx(), 3);
        assert_eq!(net.data_ledger().total_tx(), 0);
        assert!(net.control_ledger().total_rx() > 0);
    }
}
