//! The network-owned, edge-aligned neighbour arena.
//!
//! Earlier revisions gave every MAC instance its own `NeighborTable` vec;
//! per-listener reception then hopped through one heap allocation per node
//! (~35 % of the remaining 5 000-node epoch cost was this control plane).
//! The arena flattens all of those rows into **one network-owned array
//! aligned to the topology's CSR edge slots**: the entry describing
//! neighbour `neighbors(l)[p]` as seen by listener `l` lives at
//! `Topology::row_start(l) + p`. Listener-loop stores therefore walk one
//! contiguous array in listener order, and the per-transmission position is
//! resolved once from the MAC's edge-mirror index — a direct indexed store,
//! no per-event search ([`NeighborArena::heard_at`]).
//!
//! ## Views and cursors
//!
//! Readers (the engine's cross-layer tree repair, the MAC's slot selection)
//! go through [`NeighborView`], a typed cursor over one node's row. The
//! aggregate views the MAC reads every slot — 1-hop slot occupancy and the
//! minimum advertised gateway distance — are cached per node and recomputed
//! lazily only when an update could have changed them; in steady state the
//! caches never invalidate.
//!
//! ## Parallel discipline
//!
//! The colour-class parallel listener phase mutates rows of *distinct*
//! listeners concurrently through [`ArenaRaw`], a raw-pointer handle derived
//! from the single `&mut NeighborArena`. Every mutating entry point funnels
//! through the same raw implementation, so the serial and sharded paths
//! share one arena-mutation core (the listener-loop protocol around it
//! exists in both `serial_listener_loop` and the sharded phase, pinned
//! bit-equal by the 256-case differential suite); disjointness (one worker
//! per listener row, and per-row caches/counters indexed by the same
//! listener) is what makes the unsynchronised stores race-free.

use std::cell::Cell;

use dirq_net::{NodeId, Topology};
use dirq_sim::snap::{SnapError, SnapReader, SnapWriter};

use crate::slots::SlotSet;

/// What a node knows about one neighbour.
#[derive(Clone, Copy, Debug)]
pub struct NeighborInfo {
    /// Slot the neighbour transmits in (`None` while it is still joining).
    pub slot: Option<u16>,
    /// The neighbour's advertised 1-hop occupied-slot bitmap.
    pub occupied: SlotSet,
    /// The neighbour's advertised hop distance to the gateway
    /// (`u16::MAX` = unknown).
    pub gateway_dist: u16,
    /// Frame number in which the neighbour was last heard.
    pub last_heard_frame: u64,
}

/// One edge-aligned arena slot: listener `l`'s knowledge of
/// `neighbors(l)[p]`.
#[derive(Clone, Debug)]
struct EdgeEntry {
    present: bool,
    info: NeighborInfo,
}

impl EdgeEntry {
    fn vacant() -> Self {
        EdgeEntry {
            present: false,
            info: NeighborInfo {
                slot: None,
                occupied: SlotSet::EMPTY,
                gateway_dist: u16::MAX,
                last_heard_frame: 0,
            },
        }
    }
}

/// The global neighbour store: one entry per directed CSR edge of the
/// topology, aligned so listener `l`'s row occupies
/// `row_start(l)..row_start(l) + degree(l)`.
#[derive(Clone, Debug)]
pub struct NeighborArena {
    /// CSR row starts (`row_offsets[l]..row_offsets[l + 1]` indexes the
    /// edge arrays), mirroring the topology's offsets.
    row_offsets: Vec<u32>,
    /// Edge targets (a copy of the CSR target array): `ids[row_start(l) +
    /// p] == neighbors(l)[p]`. Kept inline so views resolve ids without
    /// holding the topology.
    ids: Vec<NodeId>,
    /// Per-edge neighbour knowledge.
    entries: Vec<EdgeEntry>,
    /// Per-node count of present entries.
    present: Vec<u32>,
    /// Per-node cached 1-hop occupancy (`None` = dirty).
    occ_cache: Vec<Cell<Option<SlotSet>>>,
    /// Per-node cached minimum advertised gateway distance (`None` =
    /// dirty).
    gw_cache: Vec<Cell<Option<u16>>>,
}

impl NeighborArena {
    /// Empty arena (every row vacant) over `topo`'s edge set.
    pub fn new(topo: &Topology) -> Self {
        let n = topo.len();
        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut ids = Vec::new();
        row_offsets.push(0u32);
        for i in 0..n {
            let row = topo.neighbors(NodeId::from_index(i));
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "CSR row must be ascending");
            ids.extend_from_slice(row);
            row_offsets.push(ids.len() as u32);
        }
        NeighborArena {
            row_offsets,
            entries: vec![EdgeEntry::vacant(); ids.len()],
            ids,
            present: vec![0; n],
            occ_cache: (0..n).map(|_| Cell::new(None)).collect(),
            gw_cache: (0..n).map(|_| Cell::new(None)).collect(),
        }
    }

    /// Number of node rows.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// Whether the arena has no rows.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    #[inline]
    fn row_bounds(&self, node: NodeId) -> (usize, usize) {
        let i = node.index();
        (self.row_offsets[i] as usize, self.row_offsets[i + 1] as usize)
    }

    /// Typed read view over `node`'s row.
    #[inline]
    pub fn view(&self, node: NodeId) -> NeighborView<'_> {
        NeighborView { arena: self, node }
    }

    /// Forget everything `node`'s row knows (death/rebirth reset).
    pub fn reset_row(&mut self, node: NodeId) {
        let (lo, hi) = self.row_bounds(node);
        for e in &mut self.entries[lo..hi] {
            *e = EdgeEntry::vacant();
        }
        self.present[node.index()] = 0;
        self.occ_cache[node.index()].set(None);
        self.gw_cache[node.index()].set(None);
    }

    /// Record `listener` hearing `node` in `frame`; returns `true` when the
    /// neighbour is new to the row (triggering LMAC's new-neighbour
    /// upcall). Resolves the row position by binary search — the cold path;
    /// the reception hot loop uses [`NeighborArena::heard_at`].
    pub fn heard(
        &mut self,
        listener: NodeId,
        node: NodeId,
        slot: Option<u16>,
        occupied: SlotSet,
        gateway_dist: u16,
        frame: u64,
    ) -> bool {
        // SAFETY: `&mut self` gives exclusive access; the raw core resolves
        // (and validates) the row position itself.
        unsafe { self.raw().heard(listener, node, slot, occupied, gateway_dist, frame) }
    }

    /// [`NeighborArena::heard`] with the entry position already known (the
    /// transmitter's position in `listener`'s topology row, from the MAC's
    /// edge-mirror index) — the reception hot path. `pos` must address
    /// `node`'s entry.
    ///
    /// # Panics
    /// Panics when `pos` lies outside `listener`'s row (this is a safe
    /// entry point; the unchecked variant is the crate-internal
    /// [`ArenaRaw`]).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn heard_at(
        &mut self,
        listener: NodeId,
        pos: usize,
        node: NodeId,
        slot: Option<u16>,
        occupied: SlotSet,
        gateway_dist: u16,
        frame: u64,
    ) -> bool {
        let (lo, hi) = self.row_bounds(listener);
        assert!(pos < hi - lo, "heard_at position {pos} outside {listener}'s row");
        // SAFETY: bounds just checked; `&mut self` gives exclusive access.
        unsafe { self.raw().heard_at(listener, pos, node, slot, occupied, gateway_dist, frame) }
    }

    /// Remove `node` from `listener`'s row; returns whether it was present.
    pub fn remove(&mut self, listener: NodeId, node: NodeId) -> bool {
        let (lo, hi) = self.row_bounds(listener);
        let Ok(pos) = self.ids[lo..hi].binary_search(&node) else {
            return false;
        };
        let e = &mut self.entries[lo + pos];
        if !e.present {
            return false;
        }
        e.present = false;
        self.present[listener.index()] -= 1;
        self.occ_cache[listener.index()].set(None);
        self.gw_cache[listener.index()].set(None);
        true
    }

    /// Append `listener`'s neighbours unheard since `frame - max_missed`
    /// (exclusive) — candidates for a dead-neighbour upcall — to a
    /// caller-owned buffer, ascending.
    pub fn collect_stale(
        &self,
        listener: NodeId,
        frame: u64,
        max_missed: u32,
        out: &mut Vec<NodeId>,
    ) {
        if self.present[listener.index()] == 0 {
            return;
        }
        let (lo, hi) = self.row_bounds(listener);
        for (e, &id) in self.entries[lo..hi].iter().zip(&self.ids[lo..hi]) {
            if e.present && frame.saturating_sub(e.info.last_heard_frame) > u64::from(max_missed) {
                out.push(id);
            }
        }
    }

    /// Write every edge entry to `w`. Row structure is topology-derived
    /// and not serialized; only the dynamic knowledge is.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.tag(b"ARNA");
        w.len_of(self.entries.len());
        for e in &self.entries {
            w.bool(e.present);
            if e.present {
                w.opt_u16(e.info.slot);
                w.u128(e.info.occupied.bits());
                w.u16(e.info.gateway_dist);
                w.u64(e.info.last_heard_frame);
            }
        }
    }

    /// Overlay entries captured by [`NeighborArena::snap`] onto this
    /// arena (which must be built over the same topology). Per-row
    /// presence counts are recomputed and all caches marked dirty.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(b"ARNA")?;
        let pos = r.position();
        let n = r.seq_len(1)?;
        if n != self.entries.len() {
            return Err(SnapError::Malformed { pos, what: "arena edge count mismatch" });
        }
        for e in &mut self.entries {
            e.present = r.bool()?;
            e.info = if e.present {
                NeighborInfo {
                    slot: r.opt_u16()?,
                    occupied: SlotSet::from_bits(r.u128()?),
                    gateway_dist: r.u16()?,
                    last_heard_frame: r.u64()?,
                }
            } else {
                EdgeEntry::vacant().info
            };
        }
        for i in 0..self.present.len() {
            let (lo, hi) = (self.row_offsets[i] as usize, self.row_offsets[i + 1] as usize);
            self.present[i] = self.entries[lo..hi].iter().filter(|e| e.present).count() as u32;
            self.occ_cache[i].set(None);
            self.gw_cache[i].set(None);
        }
        Ok(())
    }

    /// Row-disjoint raw mutation handle (see the module docs). The caller
    /// must guarantee that no two concurrent users touch the same
    /// listener's row.
    pub(crate) fn raw(&mut self) -> ArenaRaw {
        ArenaRaw {
            row_offsets: self.row_offsets.as_ptr(),
            ids: self.ids.as_ptr(),
            entries: self.entries.as_mut_ptr(),
            present: self.present.as_mut_ptr(),
            occ_cache: self.occ_cache.as_ptr(),
            gw_cache: self.gw_cache.as_ptr(),
        }
    }
}

/// Raw-pointer cursor into the arena used by both the serial reception
/// loop (via the safe wrappers) and the colour-class parallel listener
/// phase. All mutating arena logic lives here so the two paths cannot
/// drift apart.
#[derive(Clone, Copy)]
pub(crate) struct ArenaRaw {
    row_offsets: *const u32,
    ids: *const NodeId,
    entries: *mut EdgeEntry,
    present: *mut u32,
    occ_cache: *const Cell<Option<SlotSet>>,
    gw_cache: *const Cell<Option<u16>>,
}

impl ArenaRaw {
    /// # Safety
    /// The caller must have exclusive access to `listener`'s row (no other
    /// thread may read or write it concurrently), and `pos` must be inside
    /// the row and address `node`'s entry.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn heard_at(
        &self,
        listener: NodeId,
        pos: usize,
        node: NodeId,
        slot: Option<u16>,
        occupied: SlotSet,
        gateway_dist: u16,
        frame: u64,
    ) -> bool {
        let li = listener.index();
        let lo = *self.row_offsets.add(li) as usize;
        debug_assert!(
            lo + pos < *self.row_offsets.add(li + 1) as usize,
            "heard_at position outside {listener}'s row"
        );
        debug_assert_eq!(
            *self.ids.add(lo + pos),
            node,
            "heard_at position does not address the neighbour"
        );
        let e = &mut *self.entries.add(lo + pos);
        let occ = &*self.occ_cache.add(li);
        let gw = &*self.gw_cache.add(li);
        let is_new = !e.present;
        if is_new {
            e.present = true;
            *self.present.add(li) += 1;
            occ.set(None);
            gw.set(None);
        } else {
            if e.info.slot != slot {
                occ.set(None);
            }
            if e.info.gateway_dist != gateway_dist {
                gw.set(None);
            }
        }
        e.info.slot = slot;
        e.info.occupied = occupied;
        e.info.gateway_dist = gateway_dist;
        e.info.last_heard_frame = frame;
        is_new
    }

    /// [`ArenaRaw::heard_at`] resolving the row position by binary search
    /// (the cold reception paths: full-scan reference, collision
    /// transients).
    ///
    /// # Safety
    /// As [`ArenaRaw::heard_at`]; `node` must be in `listener`'s row.
    pub(crate) unsafe fn heard(
        &self,
        listener: NodeId,
        node: NodeId,
        slot: Option<u16>,
        occupied: SlotSet,
        gateway_dist: u16,
        frame: u64,
    ) -> bool {
        let li = listener.index();
        let lo = *self.row_offsets.add(li) as usize;
        let hi = *self.row_offsets.add(li + 1) as usize;
        let row = std::slice::from_raw_parts(self.ids.add(lo), hi - lo);
        let pos = row
            .binary_search(&node)
            .unwrap_or_else(|_| panic!("{node} is not in {listener}'s topology row"));
        self.heard_at(listener, pos, node, slot, occupied, gateway_dist, frame)
    }
}

/// Read-only cursor over one node's arena row — the cross-layer view DirQ
/// uses to repair its tree, and the MAC's own slot-selection input.
#[derive(Clone, Copy)]
pub struct NeighborView<'a> {
    arena: &'a NeighborArena,
    node: NodeId,
}

impl NeighborView<'_> {
    fn row(&self) -> (&[EdgeEntry], &[NodeId]) {
        let (lo, hi) = self.arena.row_bounds(self.node);
        (&self.arena.entries[lo..hi], &self.arena.ids[lo..hi])
    }

    fn present(&self) -> impl Iterator<Item = (&EdgeEntry, NodeId)> {
        let (entries, ids) = self.row();
        entries.iter().zip(ids.iter().copied()).filter(|(e, _)| e.present)
    }

    /// Look up a neighbour.
    pub fn get(&self, node: NodeId) -> Option<NeighborInfo> {
        let (entries, ids) = self.row();
        ids.binary_search(&node).ok().map(|p| &entries[p]).filter(|e| e.present).map(|e| e.info)
    }

    /// All known neighbour ids, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.present().map(|(_, id)| id)
    }

    /// Number of known neighbours.
    pub fn len(&self) -> usize {
        self.arena.present[self.node.index()] as usize
    }

    /// Whether the row is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbours unheard since `frame - max_missed` (exclusive), i.e.
    /// candidates for a dead-neighbour upcall at `frame`.
    pub fn stale(&self, frame: u64, max_missed: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.arena.collect_stale(self.node, frame, max_missed, &mut out);
        out
    }

    /// Union of all neighbours' slots and advertised occupancies — the
    /// 2-hop occupancy picture used for slot selection.
    pub fn two_hop_occupancy(&self) -> SlotSet {
        let mut s = SlotSet::EMPTY;
        for (e, _) in self.present() {
            if let Some(slot) = e.info.slot {
                s.insert(slot);
            }
            s.union_with(e.info.occupied);
        }
        s
    }

    /// Slots owned by direct neighbours only (1-hop occupancy) — what a
    /// node advertises in its own control section. Cached; O(1) in steady
    /// state.
    pub fn one_hop_occupancy(&self) -> SlotSet {
        let cache = &self.arena.occ_cache[self.node.index()];
        if let Some(cached) = cache.get() {
            return cached;
        }
        let mut s = SlotSet::EMPTY;
        for (e, _) in self.present() {
            if let Some(slot) = e.info.slot {
                s.insert(slot);
            }
        }
        cache.set(Some(s));
        s
    }

    /// Smallest advertised gateway distance among neighbours
    /// (`u16::MAX` when none known). Cached; O(1) in steady state.
    pub fn min_gateway_dist(&self) -> u16 {
        let cache = &self.arena.gw_cache[self.node.index()];
        if let Some(cached) = cache.get() {
            return cached;
        }
        let min = self.present().map(|(e, _)| e.info.gateway_dist).min().unwrap_or(u16::MAX);
        cache.set(Some(min));
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star topology: node 0 adjacent to 1..n.
    fn star(n: usize) -> Topology {
        let edges: Vec<(NodeId, NodeId)> =
            (1..n).map(|i| (NodeId(0), NodeId::from_index(i))).collect();
        Topology::from_edges(n, &edges)
    }

    #[test]
    fn heard_marks_presence_then_updates() {
        let topo = star(5);
        let mut a = NeighborArena::new(&topo);
        assert!(a.view(NodeId(0)).is_empty());
        assert!(a.view(NodeId(0)).get(NodeId(3)).is_none(), "vacant entries are invisible");
        assert!(a.heard(NodeId(0), NodeId(3), Some(5), SlotSet::EMPTY, 2, 10));
        assert!(!a.heard(NodeId(0), NodeId(3), Some(6), SlotSet::EMPTY, 1, 11));
        let info = a.view(NodeId(0)).get(NodeId(3)).unwrap();
        assert_eq!(info.slot, Some(6));
        assert_eq!(info.gateway_dist, 1);
        assert_eq!(info.last_heard_frame, 11);
        assert_eq!(a.view(NodeId(0)).len(), 1);
        // The leaf's row is untouched.
        assert!(a.view(NodeId(3)).is_empty());
    }

    #[test]
    fn heard_at_is_a_direct_indexed_store() {
        let topo = star(5);
        let mut a = NeighborArena::new(&topo);
        // Node 0's row is [1, 2, 3, 4]; position 2 addresses NodeId(3).
        assert!(a.heard_at(NodeId(0), 2, NodeId(3), Some(4), SlotSet::EMPTY, 2, 0));
        assert!(!a.heard_at(NodeId(0), 2, NodeId(3), Some(4), SlotSet::EMPTY, 2, 1));
        assert_eq!(a.view(NodeId(0)).get(NodeId(3)).unwrap().last_heard_frame, 1);
        assert_eq!(a.view(NodeId(0)).nodes().collect::<Vec<_>>(), vec![NodeId(3)]);
    }

    #[test]
    fn rows_are_edge_aligned_with_the_topology() {
        // Chain 0-1-2-3 plus chord 0-2: rows have distinct shapes.
        let topo = Topology::from_edges(
            4,
            &[
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(0), NodeId(2)),
            ],
        );
        let mut a = NeighborArena::new(&topo);
        for l in topo.nodes() {
            for (p, &nb) in topo.neighbors(l).iter().enumerate() {
                assert!(a.heard_at(l, p, nb, Some(p as u16), SlotSet::EMPTY, 7, 1));
            }
        }
        for l in topo.nodes() {
            let v = a.view(l);
            assert_eq!(v.len(), topo.degree(l));
            assert_eq!(v.nodes().collect::<Vec<_>>(), topo.neighbors(l));
        }
    }

    #[test]
    fn remove_and_reset_row() {
        let topo = star(4);
        let mut a = NeighborArena::new(&topo);
        a.heard(NodeId(0), NodeId(1), Some(0), SlotSet::EMPTY, 4, 0);
        a.heard(NodeId(0), NodeId(2), Some(1), SlotSet::EMPTY, 2, 0);
        assert_eq!(a.view(NodeId(0)).min_gateway_dist(), 2);
        assert!(a.remove(NodeId(0), NodeId(2)));
        assert!(!a.remove(NodeId(0), NodeId(2)), "vacated entries are not present");
        assert_eq!(a.view(NodeId(0)).min_gateway_dist(), 4);
        a.reset_row(NodeId(0));
        assert!(a.view(NodeId(0)).is_empty());
        assert_eq!(a.view(NodeId(0)).min_gateway_dist(), u16::MAX);
    }

    #[test]
    fn staleness_detection() {
        let topo = star(3);
        let mut a = NeighborArena::new(&topo);
        a.heard(NodeId(0), NodeId(1), Some(0), SlotSet::EMPTY, 1, 10);
        a.heard(NodeId(0), NodeId(2), Some(1), SlotSet::EMPTY, 1, 14);
        // max_missed = 3: stale iff frame - last_heard > 3.
        assert_eq!(a.view(NodeId(0)).stale(14, 3), vec![NodeId(1)]);
        assert!(a.view(NodeId(0)).stale(13, 3).is_empty());
        assert_eq!(a.view(NodeId(0)).stale(100, 3), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn occupancy_union_and_caches() {
        let topo = star(3);
        let mut a = NeighborArena::new(&topo);
        a.heard(NodeId(0), NodeId(1), Some(2), [4u16].into_iter().collect(), 1, 0);
        a.heard(NodeId(0), NodeId(2), Some(3), [5u16].into_iter().collect(), 1, 0);
        let v = a.view(NodeId(0));
        assert_eq!(v.one_hop_occupancy().iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(v.two_hop_occupancy().iter().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
        // A same-slot re-advertisement keeps the cache; a slot change
        // invalidates it.
        a.heard(NodeId(0), NodeId(1), Some(2), SlotSet::EMPTY, 1, 1);
        assert_eq!(a.view(NodeId(0)).one_hop_occupancy().iter().collect::<Vec<_>>(), vec![2, 3]);
        a.heard(NodeId(0), NodeId(1), Some(7), SlotSet::EMPTY, 1, 2);
        assert_eq!(a.view(NodeId(0)).one_hop_occupancy().iter().collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn joining_neighbour_without_slot() {
        let topo = star(2);
        let mut a = NeighborArena::new(&topo);
        a.heard(NodeId(0), NodeId(1), None, SlotSet::EMPTY, u16::MAX, 0);
        assert!(a.view(NodeId(0)).one_hop_occupancy().is_empty());
        assert_eq!(a.view(NodeId(0)).min_gateway_dist(), u16::MAX);
        assert_eq!(a.view(NodeId(0)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "topology row")]
    fn off_row_neighbour_rejected() {
        // 1 and 2 are not adjacent in a star: hearing across a non-edge is
        // a bug in the caller.
        let topo = star(3);
        let mut a = NeighborArena::new(&topo);
        a.heard(NodeId(1), NodeId(2), None, SlotSet::EMPTY, 0, 0);
    }
}
