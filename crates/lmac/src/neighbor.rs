//! Per-node neighbour tables.
//!
//! Each MAC instance tracks, for every neighbour it has heard: the slot the
//! neighbour owns, the neighbour's advertised 1-hop occupancy (giving this
//! node 2-hop knowledge), its advertised gateway hop distance, and the last
//! frame it was heard in. Staleness drives LMAC's dead-neighbour upcall.
//!
//! ## Row-aligned layout
//!
//! The table is laid out over the node's *potential* neighbourhood — its
//! CSR topology row, ascending — with a `present` flag per entry
//! ([`NeighborTable::for_row`]). The reception hot loop updates one entry
//! per listener per slot; with the row fixed, the MAC resolves the entry's
//! position once per transmission from its edge-mirror index and lands on
//! [`NeighborTable::heard_at`] — a direct indexed store, no per-event
//! binary search. [`NeighborTable::heard`] (search by id, inserting
//! off-row neighbours like the old map did) remains for cold paths and
//! tests.

use std::cell::Cell;

use dirq_net::NodeId;

use crate::slots::SlotSet;

/// What a node knows about one neighbour.
#[derive(Clone, Copy, Debug)]
pub struct NeighborInfo {
    /// Slot the neighbour transmits in (`None` while it is still joining).
    pub slot: Option<u16>,
    /// The neighbour's advertised 1-hop occupied-slot bitmap.
    pub occupied: SlotSet,
    /// The neighbour's advertised hop distance to the gateway
    /// (`u16::MAX` = unknown).
    pub gateway_dist: u16,
    /// Frame number in which the neighbour was last heard.
    pub last_heard_frame: u64,
}

/// One row slot of the table.
#[derive(Clone, Debug)]
struct RowEntry {
    id: NodeId,
    present: bool,
    info: NeighborInfo,
}

impl RowEntry {
    fn vacant(id: NodeId) -> Self {
        RowEntry {
            id,
            present: false,
            info: NeighborInfo {
                slot: None,
                occupied: SlotSet::EMPTY,
                gateway_dist: u16::MAX,
                last_heard_frame: 0,
            },
        }
    }
}

/// A node's view of its one-hop neighbourhood.
///
/// The aggregate views the MAC reads every slot — 1-hop slot occupancy and
/// the minimum advertised gateway distance — are cached and recomputed
/// lazily only when an update could have changed them. In steady state
/// (every neighbour re-advertising the same slot/distance each frame) the
/// caches never invalidate.
#[derive(Clone, Debug, Default)]
pub struct NeighborTable {
    /// Row entries, ascending by id; `present` marks heard neighbours.
    entries: Vec<RowEntry>,
    present_count: usize,
    occupancy_cache: Cell<Option<SlotSet>>,
    min_gw_cache: Cell<Option<u16>>,
}

impl NeighborTable {
    /// Empty table (no pre-allocated row).
    pub fn new() -> Self {
        NeighborTable::default()
    }

    /// Table pre-sized over a fixed candidate neighbourhood (a CSR
    /// topology row, ascending). Entry positions then match row positions,
    /// enabling [`NeighborTable::heard_at`].
    pub fn for_row(row: &[NodeId]) -> Self {
        debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row must be ascending");
        NeighborTable {
            entries: row.iter().map(|&id| RowEntry::vacant(id)).collect(),
            present_count: 0,
            occupancy_cache: Cell::new(None),
            min_gw_cache: Cell::new(None),
        }
    }

    /// Record hearing `node` in `frame`; returns `true` when the neighbour
    /// is new to the table (triggering LMAC's new-neighbour upcall).
    pub fn heard(
        &mut self,
        node: NodeId,
        slot: Option<u16>,
        occupied: SlotSet,
        gateway_dist: u16,
        frame: u64,
    ) -> bool {
        match self.entries.binary_search_by_key(&node, |e| e.id) {
            Ok(i) => self.heard_at(i, node, slot, occupied, gateway_dist, frame),
            Err(i) => {
                // Off-row neighbour (tables not built over a topology row):
                // grow the row, preserving ascending order.
                self.entries.insert(i, RowEntry::vacant(node));
                self.heard_at(i, node, slot, occupied, gateway_dist, frame)
            }
        }
    }

    /// [`NeighborTable::heard`] with the entry position already known (the
    /// neighbour's position in this node's topology row) — the reception
    /// hot path. `pos` must address `node`'s entry.
    #[inline]
    pub fn heard_at(
        &mut self,
        pos: usize,
        node: NodeId,
        slot: Option<u16>,
        occupied: SlotSet,
        gateway_dist: u16,
        frame: u64,
    ) -> bool {
        let e = &mut self.entries[pos];
        debug_assert_eq!(e.id, node, "heard_at position does not address the neighbour");
        let is_new = !e.present;
        if is_new {
            e.present = true;
            self.present_count += 1;
            self.occupancy_cache.set(None);
            self.min_gw_cache.set(None);
        } else {
            if e.info.slot != slot {
                self.occupancy_cache.set(None);
            }
            if e.info.gateway_dist != gateway_dist {
                self.min_gw_cache.set(None);
            }
        }
        e.info.slot = slot;
        e.info.occupied = occupied;
        e.info.gateway_dist = gateway_dist;
        e.info.last_heard_frame = frame;
        is_new
    }

    /// Look up a neighbour.
    pub fn get(&self, node: NodeId) -> Option<&NeighborInfo> {
        self.entries
            .binary_search_by_key(&node, |e| e.id)
            .ok()
            .map(|i| &self.entries[i])
            .filter(|e| e.present)
            .map(|e| &e.info)
    }

    /// Remove a neighbour; returns whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        match self.entries.binary_search_by_key(&node, |e| e.id) {
            Ok(i) if self.entries[i].present => {
                self.entries[i].present = false;
                self.present_count -= 1;
                self.occupancy_cache.set(None);
                self.min_gw_cache.set(None);
                true
            }
            _ => false,
        }
    }

    fn present(&self) -> impl Iterator<Item = &RowEntry> {
        self.entries.iter().filter(|e| e.present)
    }

    /// Neighbours unheard since `frame - max_missed` (exclusive), i.e.
    /// candidates for a dead-neighbour upcall at `frame`.
    pub fn stale(&self, frame: u64, max_missed: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_stale(frame, max_missed, &mut out);
        out
    }

    /// Allocation-free variant of [`NeighborTable::stale`]: append the
    /// stale neighbours (ascending) to a caller-owned buffer.
    pub fn collect_stale(&self, frame: u64, max_missed: u32, out: &mut Vec<NodeId>) {
        out.extend(
            self.present()
                .filter(|e| frame.saturating_sub(e.info.last_heard_frame) > u64::from(max_missed))
                .map(|e| e.id),
        );
    }

    /// Union of all neighbours' slots and advertised occupancies — the
    /// 2-hop occupancy picture used for slot selection.
    pub fn two_hop_occupancy(&self) -> SlotSet {
        let mut s = SlotSet::EMPTY;
        for e in self.present() {
            if let Some(slot) = e.info.slot {
                s.insert(slot);
            }
            s.union_with(e.info.occupied);
        }
        s
    }

    /// Slots owned by direct neighbours only (1-hop occupancy) — this is
    /// what a node advertises in its own control section. Cached; O(1) in
    /// steady state.
    pub fn one_hop_occupancy(&self) -> SlotSet {
        if let Some(cached) = self.occupancy_cache.get() {
            return cached;
        }
        let mut s = SlotSet::EMPTY;
        for e in self.present() {
            if let Some(slot) = e.info.slot {
                s.insert(slot);
            }
        }
        self.occupancy_cache.set(Some(s));
        s
    }

    /// Smallest advertised gateway distance among neighbours
    /// (`u16::MAX` when none known). Cached; O(1) in steady state.
    pub fn min_gateway_dist(&self) -> u16 {
        if let Some(cached) = self.min_gw_cache.get() {
            return cached;
        }
        let min = self.present().map(|e| e.info.gateway_dist).min().unwrap_or(u16::MAX);
        self.min_gw_cache.set(Some(min));
        min
    }

    /// All known neighbour ids, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.present().map(|e| e.id)
    }

    /// Number of known neighbours.
    pub fn len(&self) -> usize {
        self.present_count
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.present_count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heard_inserts_then_updates() {
        let mut t = NeighborTable::new();
        assert!(t.heard(NodeId(3), Some(5), SlotSet::EMPTY, 2, 10));
        assert!(!t.heard(NodeId(3), Some(6), SlotSet::EMPTY, 1, 11));
        let info = t.get(NodeId(3)).unwrap();
        assert_eq!(info.slot, Some(6));
        assert_eq!(info.gateway_dist, 1);
        assert_eq!(info.last_heard_frame, 11);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn row_table_marks_presence_without_growing() {
        let row = [NodeId(2), NodeId(5), NodeId(9)];
        let mut t = NeighborTable::for_row(&row);
        assert!(t.is_empty());
        assert!(t.get(NodeId(5)).is_none(), "vacant entries are invisible");
        assert!(t.heard(NodeId(5), Some(3), SlotSet::EMPTY, 1, 0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.nodes().collect::<Vec<_>>(), vec![NodeId(5)]);
        // Position 2 addresses NodeId(9) — the row is fixed.
        assert!(t.heard_at(2, NodeId(9), Some(4), SlotSet::EMPTY, 2, 0));
        assert!(!t.heard_at(2, NodeId(9), Some(4), SlotSet::EMPTY, 2, 1));
        assert_eq!(t.get(NodeId(9)).unwrap().last_heard_frame, 1);
        assert!(t.remove(NodeId(5)));
        assert!(!t.remove(NodeId(5)), "vacated entries are not present");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn staleness_detection() {
        let mut t = NeighborTable::new();
        t.heard(NodeId(1), Some(0), SlotSet::EMPTY, 1, 10);
        t.heard(NodeId(2), Some(1), SlotSet::EMPTY, 1, 14);
        // max_missed = 3: stale iff frame - last_heard > 3.
        assert_eq!(t.stale(14, 3), vec![NodeId(1)]);
        assert!(t.stale(13, 3).is_empty());
        assert_eq!(t.stale(100, 3), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn occupancy_union() {
        let mut t = NeighborTable::new();
        t.heard(NodeId(1), Some(2), [4u16].into_iter().collect(), 1, 0);
        t.heard(NodeId(2), Some(3), [5u16].into_iter().collect(), 1, 0);
        let one = t.one_hop_occupancy();
        assert_eq!(one.iter().collect::<Vec<_>>(), vec![2, 3]);
        let two = t.two_hop_occupancy();
        assert_eq!(two.iter().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn joining_neighbour_without_slot() {
        let mut t = NeighborTable::new();
        t.heard(NodeId(9), None, SlotSet::EMPTY, u16::MAX, 0);
        assert!(t.one_hop_occupancy().is_empty());
        assert_eq!(t.min_gateway_dist(), u16::MAX);
    }

    #[test]
    fn remove_and_min_gateway() {
        let mut t = NeighborTable::new();
        t.heard(NodeId(1), Some(0), SlotSet::EMPTY, 4, 0);
        t.heard(NodeId(2), Some(1), SlotSet::EMPTY, 2, 0);
        assert_eq!(t.min_gateway_dist(), 2);
        assert!(t.remove(NodeId(2)));
        assert_eq!(t.min_gateway_dist(), 4);
        assert!(!t.remove(NodeId(2)));
    }

    #[test]
    fn nodes_sorted() {
        let mut t = NeighborTable::new();
        t.heard(NodeId(5), None, SlotSet::EMPTY, 0, 0);
        t.heard(NodeId(1), None, SlotSet::EMPTY, 0, 0);
        t.heard(NodeId(3), None, SlotSet::EMPTY, 0, 0);
        assert_eq!(t.nodes().collect::<Vec<_>>(), vec![NodeId(1), NodeId(3), NodeId(5)]);
    }
}
