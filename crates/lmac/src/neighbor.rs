//! Per-node neighbour tables.
//!
//! Each MAC instance tracks, for every neighbour it has heard: the slot the
//! neighbour owns, the neighbour's advertised 1-hop occupancy (giving this
//! node 2-hop knowledge), its advertised gateway hop distance, and the last
//! frame it was heard in. Staleness drives LMAC's dead-neighbour upcall.

use std::cell::Cell;

use dirq_net::NodeId;

use crate::slots::SlotSet;

/// What a node knows about one neighbour.
#[derive(Clone, Copy, Debug)]
pub struct NeighborInfo {
    /// Slot the neighbour transmits in (`None` while it is still joining).
    pub slot: Option<u16>,
    /// The neighbour's advertised 1-hop occupied-slot bitmap.
    pub occupied: SlotSet,
    /// The neighbour's advertised hop distance to the gateway
    /// (`u16::MAX` = unknown).
    pub gateway_dist: u16,
    /// Frame number in which the neighbour was last heard.
    pub last_heard_frame: u64,
}

/// A node's view of its one-hop neighbourhood.
///
/// The aggregate views the MAC reads every slot — 1-hop slot occupancy and
/// the minimum advertised gateway distance — are cached and recomputed
/// lazily only when an update could have changed them. In steady state
/// (every neighbour re-advertising the same slot/distance each frame) the
/// caches never invalidate.
#[derive(Clone, Debug, Default)]
pub struct NeighborTable {
    entries: Vec<(NodeId, NeighborInfo)>,
    occupancy_cache: Cell<Option<SlotSet>>,
    min_gw_cache: Cell<Option<u16>>,
}

impl NeighborTable {
    /// Empty table.
    pub fn new() -> Self {
        NeighborTable::default()
    }

    /// Record hearing `node` in `frame`; returns `true` when the neighbour
    /// is new to the table (triggering LMAC's new-neighbour upcall).
    pub fn heard(
        &mut self,
        node: NodeId,
        slot: Option<u16>,
        occupied: SlotSet,
        gateway_dist: u16,
        frame: u64,
    ) -> bool {
        match self.entries.binary_search_by_key(&node, |e| e.0) {
            Ok(i) => {
                let e = &mut self.entries[i].1;
                if e.slot != slot {
                    self.occupancy_cache.set(None);
                }
                if e.gateway_dist != gateway_dist {
                    self.min_gw_cache.set(None);
                }
                e.slot = slot;
                e.occupied = occupied;
                e.gateway_dist = gateway_dist;
                e.last_heard_frame = frame;
                false
            }
            Err(i) => {
                self.entries.insert(
                    i,
                    (node, NeighborInfo { slot, occupied, gateway_dist, last_heard_frame: frame }),
                );
                self.occupancy_cache.set(None);
                self.min_gw_cache.set(None);
                true
            }
        }
    }

    /// Look up a neighbour.
    pub fn get(&self, node: NodeId) -> Option<&NeighborInfo> {
        self.entries.binary_search_by_key(&node, |e| e.0).ok().map(|i| &self.entries[i].1)
    }

    /// Remove a neighbour; returns whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        match self.entries.binary_search_by_key(&node, |e| e.0) {
            Ok(i) => {
                self.entries.remove(i);
                self.occupancy_cache.set(None);
                self.min_gw_cache.set(None);
                true
            }
            Err(_) => false,
        }
    }

    /// Neighbours unheard since `frame - max_missed` (exclusive), i.e.
    /// candidates for a dead-neighbour upcall at `frame`.
    pub fn stale(&self, frame: u64, max_missed: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_stale(frame, max_missed, &mut out);
        out
    }

    /// Allocation-free variant of [`NeighborTable::stale`]: append the
    /// stale neighbours (ascending) to a caller-owned buffer.
    pub fn collect_stale(&self, frame: u64, max_missed: u32, out: &mut Vec<NodeId>) {
        out.extend(
            self.entries
                .iter()
                .filter(|(_, info)| {
                    frame.saturating_sub(info.last_heard_frame) > u64::from(max_missed)
                })
                .map(|&(n, _)| n),
        );
    }

    /// Union of all neighbours' slots and advertised occupancies — the
    /// 2-hop occupancy picture used for slot selection.
    pub fn two_hop_occupancy(&self) -> SlotSet {
        let mut s = SlotSet::EMPTY;
        for (_, info) in &self.entries {
            if let Some(slot) = info.slot {
                s.insert(slot);
            }
            s.union_with(info.occupied);
        }
        s
    }

    /// Slots owned by direct neighbours only (1-hop occupancy) — this is
    /// what a node advertises in its own control section. Cached; O(1) in
    /// steady state.
    pub fn one_hop_occupancy(&self) -> SlotSet {
        if let Some(cached) = self.occupancy_cache.get() {
            return cached;
        }
        let mut s = SlotSet::EMPTY;
        for (_, info) in &self.entries {
            if let Some(slot) = info.slot {
                s.insert(slot);
            }
        }
        self.occupancy_cache.set(Some(s));
        s
    }

    /// Smallest advertised gateway distance among neighbours
    /// (`u16::MAX` when none known). Cached; O(1) in steady state.
    pub fn min_gateway_dist(&self) -> u16 {
        if let Some(cached) = self.min_gw_cache.get() {
            return cached;
        }
        let min = self.entries.iter().map(|(_, i)| i.gateway_dist).min().unwrap_or(u16::MAX);
        self.min_gw_cache.set(Some(min));
        min
    }

    /// All known neighbour ids, ascending.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|&(n, _)| n)
    }

    /// Number of known neighbours.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heard_inserts_then_updates() {
        let mut t = NeighborTable::new();
        assert!(t.heard(NodeId(3), Some(5), SlotSet::EMPTY, 2, 10));
        assert!(!t.heard(NodeId(3), Some(6), SlotSet::EMPTY, 1, 11));
        let info = t.get(NodeId(3)).unwrap();
        assert_eq!(info.slot, Some(6));
        assert_eq!(info.gateway_dist, 1);
        assert_eq!(info.last_heard_frame, 11);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn staleness_detection() {
        let mut t = NeighborTable::new();
        t.heard(NodeId(1), Some(0), SlotSet::EMPTY, 1, 10);
        t.heard(NodeId(2), Some(1), SlotSet::EMPTY, 1, 14);
        // max_missed = 3: stale iff frame - last_heard > 3.
        assert_eq!(t.stale(14, 3), vec![NodeId(1)]);
        assert!(t.stale(13, 3).is_empty());
        assert_eq!(t.stale(100, 3), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn occupancy_union() {
        let mut t = NeighborTable::new();
        t.heard(NodeId(1), Some(2), [4u16].into_iter().collect(), 1, 0);
        t.heard(NodeId(2), Some(3), [5u16].into_iter().collect(), 1, 0);
        let one = t.one_hop_occupancy();
        assert_eq!(one.iter().collect::<Vec<_>>(), vec![2, 3]);
        let two = t.two_hop_occupancy();
        assert_eq!(two.iter().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn joining_neighbour_without_slot() {
        let mut t = NeighborTable::new();
        t.heard(NodeId(9), None, SlotSet::EMPTY, u16::MAX, 0);
        assert!(t.one_hop_occupancy().is_empty());
        assert_eq!(t.min_gateway_dist(), u16::MAX);
    }

    #[test]
    fn remove_and_min_gateway() {
        let mut t = NeighborTable::new();
        t.heard(NodeId(1), Some(0), SlotSet::EMPTY, 4, 0);
        t.heard(NodeId(2), Some(1), SlotSet::EMPTY, 2, 0);
        assert_eq!(t.min_gateway_dist(), 2);
        assert!(t.remove(NodeId(2)));
        assert_eq!(t.min_gateway_dist(), 4);
        assert!(!t.remove(NodeId(2)));
    }

    #[test]
    fn nodes_sorted() {
        let mut t = NeighborTable::new();
        t.heard(NodeId(5), None, SlotSet::EMPTY, 0, 0);
        t.heard(NodeId(1), None, SlotSet::EMPTY, 0, 0);
        t.heard(NodeId(3), None, SlotSet::EMPTY, 0, 0);
        assert_eq!(t.nodes().collect::<Vec<_>>(), vec![NodeId(1), NodeId(3), NodeId(5)]);
    }
}
