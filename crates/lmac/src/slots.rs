//! Slot-occupancy bitmaps.
//!
//! LMAC nodes advertise which slots they believe are taken in their 1-hop
//! neighbourhood; receivers union those advertisements to learn 2-hop
//! occupancy. A `u128` bitmap caps frames at 128 slots, far beyond the
//! paper's scale (50 nodes).

/// Maximum number of slots per frame supported by [`SlotSet`].
pub const MAX_SLOTS: u16 = 128;

/// A set of slot indices, backed by a `u128` bitmap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotSet(u128);

impl SlotSet {
    /// The empty set.
    pub const EMPTY: SlotSet = SlotSet(0);

    /// Set containing exactly `slot`.
    #[inline]
    pub fn single(slot: u16) -> SlotSet {
        assert!(slot < MAX_SLOTS, "slot {slot} out of range");
        SlotSet(1u128 << slot)
    }

    /// Insert `slot`.
    #[inline]
    pub fn insert(&mut self, slot: u16) {
        assert!(slot < MAX_SLOTS, "slot {slot} out of range");
        self.0 |= 1u128 << slot;
    }

    /// Remove `slot`.
    #[inline]
    pub fn remove(&mut self, slot: u16) {
        assert!(slot < MAX_SLOTS, "slot {slot} out of range");
        self.0 &= !(1u128 << slot);
    }

    /// Whether `slot` is present.
    #[inline]
    pub fn contains(&self, slot: u16) -> bool {
        slot < MAX_SLOTS && (self.0 >> slot) & 1 == 1
    }

    /// The raw bitmap, for checkpointing.
    #[inline]
    pub fn bits(&self) -> u128 {
        self.0
    }

    /// Rebuild from a [`SlotSet::bits`] bitmap.
    #[inline]
    pub fn from_bits(bits: u128) -> SlotSet {
        SlotSet(bits)
    }

    /// Union with another set.
    #[inline]
    pub fn union(&self, other: SlotSet) -> SlotSet {
        SlotSet(self.0 | other.0)
    }

    /// In-place union.
    #[inline]
    pub fn union_with(&mut self, other: SlotSet) {
        self.0 |= other.0;
    }

    /// Number of occupied slots.
    #[inline]
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Slots in `0..frame_len` *not* present in this set, in ascending
    /// order. This is the candidate list for LMAC's slot choice.
    pub fn free_slots(&self, frame_len: u16) -> Vec<u16> {
        assert!(frame_len <= MAX_SLOTS, "frame too long");
        (0..frame_len).filter(|&s| !self.contains(s)).collect()
    }

    /// Iterator over occupied slots in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        (0..MAX_SLOTS).filter(move |&s| self.contains(s))
    }
}

impl FromIterator<u16> for SlotSet {
    fn from_iter<I: IntoIterator<Item = u16>>(iter: I) -> Self {
        let mut s = SlotSet::EMPTY;
        for slot in iter {
            s.insert(slot);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = SlotSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(127);
        assert!(s.contains(0) && s.contains(127) && !s.contains(64));
        assert_eq!(s.len(), 2);
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_merges() {
        let a: SlotSet = [1u16, 3].into_iter().collect();
        let b: SlotSet = [3u16, 5].into_iter().collect();
        let u = a.union(b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn free_slots_complement() {
        let s: SlotSet = [0u16, 2].into_iter().collect();
        assert_eq!(s.free_slots(4), vec![1, 3]);
        assert_eq!(SlotSet::EMPTY.free_slots(3), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_slot_rejected() {
        let mut s = SlotSet::EMPTY;
        s.insert(128);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s: SlotSet = [5u16].into_iter().collect();
        assert!(!s.contains(200));
    }

    proptest! {
        /// free_slots and the set partition 0..frame_len.
        #[test]
        fn prop_free_slots_partition(
            slots in proptest::collection::btree_set(0u16..64, 0..32),
            frame_len in 1u16..=64,
        ) {
            let s: SlotSet = slots.iter().copied().collect();
            let free = s.free_slots(frame_len);
            for slot in 0..frame_len {
                let in_set = s.contains(slot);
                let in_free = free.contains(&slot);
                prop_assert!(in_set ^ in_free, "slot {slot} must be in exactly one side");
            }
        }

        /// Union is commutative and idempotent.
        #[test]
        fn prop_union_laws(
            a in proptest::collection::vec(0u16..128, 0..20),
            b in proptest::collection::vec(0u16..128, 0..20),
        ) {
            let sa: SlotSet = a.iter().copied().collect();
            let sb: SlotSet = b.iter().copied().collect();
            prop_assert_eq!(sa.union(sb), sb.union(sa));
            prop_assert_eq!(sa.union(sa), sa);
        }
    }
}
