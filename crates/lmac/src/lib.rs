//! # dirq-lmac — the LMAC medium-access substrate
//!
//! DirQ (Chatterjea et al., ICPPW'06) runs on top of **LMAC** (van Hoesel &
//! Havinga 2004): a TDMA MAC for wireless sensor networks with a completely
//! distributed, self-organising slot-scheduling algorithm. The DirQ paper
//! leans on two LMAC properties:
//!
//! 1. **Scheduled, collision-free data exchange** once slot selection has
//!    converged — each node owns one slot per frame and transmits a control
//!    section (identity, occupied-slot bitmap, gateway hop distance) plus an
//!    optional data section addressed to a set of neighbours.
//! 2. **Cross-layer notifications**: LMAC's neighbour bookkeeping detects
//!    dead and new neighbours, and DirQ subscribes to those events to repair
//!    its spanning tree and range tables (Section 4.2 of the paper).
//!
//! This crate reproduces exactly that contract:
//!
//! * [`slots`] — fixed-size slot bitmaps used by the distributed scheduler.
//! * [`config`] — frame geometry, liveness and parallelism parameters.
//! * [`neighbor`] — the network-owned, edge-aligned neighbour arena with
//!   last-heard tracking, read through typed per-node views.
//! * [`indication`] — the upcall stream handed to the upper layer
//!   (deliveries, dead-neighbour and new-neighbour events).
//! * [`network`] — [`network::LmacNetwork`], the slot-synchronous state
//!   machine simulating every node's MAC instance over a shared
//!   [`dirq_net::Topology`].
//!
//! ## Modelling notes (documented substitutions)
//!
//! * Slot boundaries are globally synchronous (no clock drift); LMAC's
//!   guard times make this a reasonable abstraction at epoch scale.
//! * Links are reliable when the radio graph says two nodes are connected;
//!   the only losses modelled are slot **collisions** (two transmitters
//!   within interference range of a listener in the same slot), which is
//!   the failure mode LMAC's scheduler actually has to resolve.
//! * Energy is split into two ledgers: the *data* ledger counts exactly the
//!   messages the paper's Section-5 cost model counts (1 unit per data
//!   transmission, 1 unit per *intended* reception), while the *control*
//!   ledger tracks LMAC's own overhead, which the paper excludes because it
//!   is identical for DirQ and flooding.

#![warn(missing_docs)]

pub mod config;
pub mod indication;
pub mod neighbor;
pub mod network;
pub mod slots;

pub use config::LmacConfig;
pub use indication::{Destination, MacIndication, PayloadHandle};
pub use neighbor::{NeighborArena, NeighborInfo, NeighborView};
pub use network::LmacNetwork;
pub use slots::SlotSet;
