//! LMAC frame geometry and liveness parameters.

use crate::slots::MAX_SLOTS;

/// Configuration of the simulated LMAC instance.
#[derive(Clone, Copy, Debug)]
pub struct LmacConfig {
    /// Slots per TDMA frame. Must exceed the densest 2-hop neighbourhood
    /// for the distributed scheduler to converge.
    pub slots_per_frame: u16,
    /// Frames a neighbour may stay unheard before it is declared dead and a
    /// cross-layer notification is raised. LMAC keeps this small: a silent
    /// node wastes its reserved slot.
    pub max_missed_frames: u32,
    /// Frames a joining node listens before choosing a slot. LMAC mandates
    /// at least one full frame of observation.
    pub listen_frames_before_pick: u32,
    /// Data messages one slot's data section can carry. The control section
    /// advertises the recipients of each; the paper's cost model counts
    /// messages, not slots.
    pub data_messages_per_slot: usize,
    /// Worker threads for the colour-class parallel listener phase
    /// (1 = fully serial slot loop, the default). The listener loop is
    /// sharded across the topology's precomputed 2-hop colour classes and
    /// merged back in listener order, so results are **bit-identical at
    /// any setting**; helper threads are clamped to the machine's
    /// available parallelism.
    pub workers: usize,
}

impl Default for LmacConfig {
    fn default() -> Self {
        LmacConfig {
            slots_per_frame: 32,
            max_missed_frames: 3,
            listen_frames_before_pick: 1,
            data_messages_per_slot: 4,
            workers: 1,
        }
    }
}

impl LmacConfig {
    /// Validate invariants; call once at network construction.
    pub fn validate(&self) {
        assert!(
            self.slots_per_frame > 0 && self.slots_per_frame <= MAX_SLOTS,
            "slots_per_frame must be in 1..={MAX_SLOTS}"
        );
        assert!(self.max_missed_frames >= 1, "max_missed_frames must be at least 1");
        assert!(self.data_messages_per_slot >= 1, "a slot must carry at least one message");
        assert!(self.workers >= 1, "workers must be at least 1 (1 = serial)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        LmacConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "slots_per_frame")]
    fn zero_slots_rejected() {
        LmacConfig { slots_per_frame: 0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "slots_per_frame")]
    fn oversized_frame_rejected() {
        LmacConfig { slots_per_frame: 129, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "max_missed_frames")]
    fn zero_missed_frames_rejected() {
        LmacConfig { max_missed_frames: 0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "workers")]
    fn zero_workers_rejected() {
        LmacConfig { workers: 0, ..Default::default() }.validate();
    }
}
