//! The cost model generalised to concrete topologies.
//!
//! The paper derives its bounds on complete k-ary trees "due to the nature
//! of DirQ", but its simulated network is a 50-node irregular graph. These
//! calculators apply the same counting rules to any [`Topology`] +
//! [`SpanningTree`] pair, which is what the scenario engine and the ATC
//! budget computation actually use.

use dirq_net::{NodeId, SpanningTree, Topology};

/// Cost bounds for a concrete deployment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopologyCosts {
    /// Nodes attached to the tree.
    pub n: u64,
    /// Undirected radio links among attached nodes.
    pub links: u64,
    /// Internal (forwarding) tree nodes.
    pub internal: u64,
    /// Flooding cost `N + 2·links` (broadcasts heard by every neighbour).
    pub flooding: f64,
    /// Max query-dissemination cost `internal + (N − 1)`.
    pub cqd_max: f64,
    /// Max update cost `2(N − 1)`.
    pub cud_max: f64,
}

impl TopologyCosts {
    /// Compute over the attached portion of `tree` within `topo`.
    pub fn compute(topo: &Topology, tree: &SpanningTree) -> Self {
        assert_eq!(topo.len(), tree.len(), "topology/tree size mismatch");
        let attached: Vec<NodeId> = topo.nodes().filter(|&n| tree.is_attached(n)).collect();
        let n = attached.len() as u64;
        let mut links = 0u64;
        for &a in &attached {
            for &b in topo.neighbors(a) {
                if b > a && tree.is_attached(b) {
                    links += 1;
                }
            }
        }
        let internal = attached.iter().filter(|&&v| !tree.children(v).is_empty()).count() as u64;
        let edges = n.saturating_sub(1) as f64;
        TopologyCosts {
            n,
            links,
            internal,
            flooding: n as f64 + 2.0 * links as f64,
            cqd_max: internal as f64 + edges,
            cud_max: 2.0 * edges,
        }
    }

    /// `fMax = (CF − CQDmax)/CUDmax`: the per-query update budget that
    /// keeps worst-case DirQ below flooding (`None` for edgeless trees).
    pub fn f_max(&self) -> Option<f64> {
        (self.cud_max > 0.0).then(|| (self.flooding - self.cqd_max) / self.cud_max)
    }

    /// Network-wide update budget per hour: `fMax × queries_per_hour`.
    /// This is the paper's `Umax/Hr` reference line in Fig. 6.
    pub fn u_max_per_hour(&self, queries_per_hour: f64) -> Option<f64> {
        self.f_max().map(|f| f * queries_per_hour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kary::KaryCosts;

    #[test]
    fn matches_kary_model_on_exact_trees() {
        for (k, d) in [(2u32, 4u32), (3, 3), (8, 2), (2, 1)] {
            let (topo, tree) = SpanningTree::complete_kary(k as usize, d);
            let tc = TopologyCosts::compute(&topo, &tree);
            let kc = KaryCosts::compute(k, d);
            assert_eq!(tc.n as u128, kc.n);
            assert_eq!(tc.flooding as u128, kc.flooding, "k={k} d={d}");
            assert_eq!(tc.cqd_max as u128, kc.cqd_max, "k={k} d={d}");
            assert_eq!(tc.cud_max as u128, kc.cud_max, "k={k} d={d}");
            let tf = tc.f_max().unwrap();
            let kf = kc.f_max().unwrap();
            assert!((tf - kf).abs() < 1e-12);
        }
    }

    #[test]
    fn extra_radio_links_raise_flooding_only() {
        // A 4-node path as tree, but with an extra chord 0–3 in the radio
        // graph: flooding pays for the chord, the tree costs do not.
        let topo = Topology::from_edges(
            4,
            &[
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(0), NodeId(3)),
            ],
        );
        let tree = SpanningTree::bfs(&topo, NodeId::ROOT);
        // BFS over this ring: 0 -> {1, 3}, 1 -> 2 (3 attaches under 0).
        let tc = TopologyCosts::compute(&topo, &tree);
        assert_eq!(tc.n, 4);
        assert_eq!(tc.links, 4);
        assert_eq!(tc.flooding, 4.0 + 8.0);
        assert_eq!(tc.cud_max, 6.0);
        // internal nodes: 0 and 1.
        assert_eq!(tc.internal, 2);
        assert_eq!(tc.cqd_max, 2.0 + 3.0);
    }

    #[test]
    fn detached_nodes_excluded() {
        let (topo, mut tree) = SpanningTree::complete_kary(2, 2);
        tree.detach_subtree(NodeId(1)); // removes 1, 3, 4
        let tc = TopologyCosts::compute(&topo, &tree);
        assert_eq!(tc.n, 4);
        // Remaining radio links among {0, 2, 5, 6}: 0-2, 2-5, 2-6.
        assert_eq!(tc.links, 3);
        assert_eq!(tc.internal, 2); // 0 and 2
    }

    #[test]
    fn u_max_scales_with_query_rate() {
        let (topo, tree) = SpanningTree::complete_kary(2, 4);
        let tc = TopologyCosts::compute(&topo, &tree);
        let u20 = tc.u_max_per_hour(20.0).unwrap();
        let u40 = tc.u_max_per_hour(40.0).unwrap();
        assert!((u40 / u20 - 2.0).abs() < 1e-12);
        // k=2, d=4: fMax = 46/60.
        assert!((u20 - 20.0 * 46.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn fmax_none_for_single_node() {
        let topo = Topology::from_edges(1, &[]);
        let tree = SpanningTree::new(1, NodeId::ROOT);
        let tc = TopologyCosts::compute(&topo, &tree);
        assert_eq!(tc.f_max(), None);
    }
}
