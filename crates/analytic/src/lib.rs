//! # dirq-analytic — the Section 5 cost model
//!
//! Closed-form costs of flooding vs directed dissemination on complete
//! k-ary trees, as derived in Section 5 of the DirQ paper, plus their
//! generalisation to arbitrary concrete topologies/trees.
//!
//! The published equations are OCR-damaged; the derivations were recovered
//! from the stated assumptions and validated against the paper's worked
//! example (k = 2, d = 4 ⇒ fMax ≈ 0.76):
//!
//! * Unit costs: 1 per transmission, 1 per reception.
//! * **Flooding** (Eq. 3/4): every node broadcasts once (`CTx = N`), every
//!   broadcast is heard by all graph neighbours (`CRx = 2·links`):
//!   `CF = N + 2·links`; on a complete k-ary tree of depth d,
//!   `CF = (3k^(d+1) − 2k − 1)/(k − 1)`.
//! * **Max query dissemination** (Eq. 6): all leaves relevant. Every
//!   forwarding (internal) node transmits the query once; every non-root
//!   node receives it once: `CQDmax = internal + (N − 1)`; closed form
//!   `(k^(d+1) + k^d − k − 1)/(k − 1)`.
//! * **Max update cost** (Eq. 7): every non-root node unicasts one update
//!   to its parent: `CUDmax = 2(N − 1) = 2(k^(d+1) − k)/(k − 1)`.
//! * **Update budget** (Eq. 8/9): `CQDmax + f·CUDmax < CF` ⇒
//!   `fMax = (CF − CQDmax)/CUDmax = (2k^(d+1) − k^d − k)/(2(k^(d+1) − k))`.
//!   For k = 2, d = 4 this is exactly 46/60 = 0.7666…, which the paper
//!   truncates to "0.76". (The paper's companion claim of "1 update every
//!   1.03 queries" is an arithmetic slip: 1/0.7667 ≈ 1.30.)

#![warn(missing_docs)]

pub mod kary;
pub mod topo;

pub use kary::KaryCosts;
pub use topo::TopologyCosts;
