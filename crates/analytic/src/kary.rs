//! Exact k-ary-tree cost formulas (Eqs. 3–9).
//!
//! All quantities are computed in `u128` so every supported (k, d) is
//! exact; `f_max` is additionally exposed as an exact rational.

/// Closed-form cost model of a complete k-ary tree with depth `d`
/// (root at depth 0, leaves at depth `d`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KaryCosts {
    /// Arity (k ≥ 1; k = 1 degenerates to a path).
    pub k: u32,
    /// Depth (d ≥ 0).
    pub d: u32,
    /// Total node count `N`.
    pub n: u128,
    /// Leaf count `k^d`.
    pub leaves: u128,
    /// Internal (forwarding) node count `N − leaves`.
    pub internal: u128,
    /// Eq. 4: total flooding cost `CF = 3N − 2`.
    pub flooding: u128,
    /// Eq. 6: maximum query-dissemination cost
    /// `CQDmax = internal + (N − 1)`.
    pub cqd_max: u128,
    /// Eq. 7: maximum update cost `CUDmax = 2(N − 1)`.
    pub cud_max: u128,
}

impl KaryCosts {
    /// Compute the model for `(k, d)`.
    ///
    /// # Panics
    /// Panics if `k == 0` or the tree exceeds `u128` range.
    pub fn compute(k: u32, d: u32) -> Self {
        assert!(k >= 1, "arity must be at least 1");
        let kk = k as u128;
        let leaves = kk.checked_pow(d).expect("k^d overflows u128");
        let n: u128 = if k == 1 {
            d as u128 + 1
        } else {
            (kk.checked_pow(d + 1).expect("k^(d+1) overflows u128") - 1) / (kk - 1)
        };
        let internal = n - leaves;
        // A tree always has N − 1 edges.
        let edges = n - 1;
        let flooding = n + 2 * edges;
        let cqd_max = internal + edges;
        let cud_max = 2 * edges;
        KaryCosts { k, d, n, leaves, internal, flooding, cqd_max, cud_max }
    }

    /// Eq. 9: maximum updates per query keeping DirQ under flooding,
    /// as an exact rational `(numerator, denominator)`:
    /// `fMax = (CF − CQDmax) / CUDmax`.
    ///
    /// Returns `None` for degenerate trees with no edges (d = 0).
    pub fn f_max_exact(&self) -> Option<(u128, u128)> {
        if self.cud_max == 0 {
            return None;
        }
        Some((self.flooding - self.cqd_max, self.cud_max))
    }

    /// Eq. 9 as a float.
    pub fn f_max(&self) -> Option<f64> {
        self.f_max_exact().map(|(num, den)| num as f64 / den as f64)
    }

    /// The identity behind Eq. 8: `CQDmax + fMax·CUDmax = CF` exactly.
    /// Exposed for property tests.
    pub fn budget_identity_holds(&self) -> bool {
        match self.f_max_exact() {
            Some((num, den)) => {
                // cqd + (num/den)·cud == cf  ⇔  cqd·den + num·cud == cf·den
                self.cqd_max * den + num * self.cud_max == self.flooding * den
            }
            None => true,
        }
    }

    /// Closed-form cross-checks from the paper (valid for k ≥ 2):
    /// `CF = (3k^(d+1) − 2k − 1)/(k − 1)`,
    /// `CQDmax = (k^(d+1) + k^d − k − 1)/(k − 1)`,
    /// `CUDmax = 2(k^(d+1) − k)/(k − 1)`.
    pub fn closed_forms(&self) -> Option<(u128, u128, u128)> {
        if self.k < 2 {
            return None;
        }
        let k = self.k as u128;
        let kd = k.pow(self.d);
        let kd1 = k.pow(self.d + 1);
        let cf = (3 * kd1 - 2 * k - 1) / (k - 1);
        let cqd = (kd1 + kd - k - 1) / (k - 1);
        let cud = 2 * (kd1 - k) / (k - 1);
        Some((cf, cqd, cud))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_worked_example_k2_d4() {
        let c = KaryCosts::compute(2, 4);
        assert_eq!(c.n, 31);
        assert_eq!(c.leaves, 16);
        assert_eq!(c.internal, 15);
        assert_eq!(c.flooding, 91);
        assert_eq!(c.cqd_max, 45);
        assert_eq!(c.cud_max, 60);
        // fMax = 46/60 ≈ 0.7667, the paper's "0.76".
        assert_eq!(c.f_max_exact(), Some((46, 60)));
        let f = c.f_max().unwrap();
        assert!((f - 0.766_666_7).abs() < 1e-6);
        // The paper truncates to two decimals.
        assert_eq!(format!("{:.2}", (f * 100.0).floor() / 100.0), "0.76");
    }

    #[test]
    fn path_graph_degenerate_case() {
        // k = 1, d = 4: a 5-node path.
        let c = KaryCosts::compute(1, 4);
        assert_eq!(c.n, 5);
        assert_eq!(c.leaves, 1);
        assert_eq!(c.internal, 4);
        assert_eq!(c.flooding, 13); // 5 + 2·4
        assert_eq!(c.cqd_max, 8); // 4 tx + 4 rx
        assert_eq!(c.cud_max, 8);
    }

    #[test]
    fn root_only_tree() {
        let c = KaryCosts::compute(3, 0);
        assert_eq!(c.n, 1);
        assert_eq!(c.flooding, 1); // one broadcast, nobody listens
        assert_eq!(c.cqd_max, 0);
        assert_eq!(c.cud_max, 0);
        assert_eq!(c.f_max(), None);
    }

    #[test]
    fn closed_forms_match_counts() {
        for k in 2u32..=8 {
            for d in 1u32..=8 {
                let c = KaryCosts::compute(k, d);
                let (cf, cqd, cud) = c.closed_forms().unwrap();
                assert_eq!(cf, c.flooding, "CF mismatch at k={k} d={d}");
                assert_eq!(cqd, c.cqd_max, "CQD mismatch at k={k} d={d}");
                assert_eq!(cud, c.cud_max, "CUD mismatch at k={k} d={d}");
            }
        }
    }

    #[test]
    fn dirq_worst_case_cheaper_than_flooding() {
        // CQDmax < CF for every non-trivial tree: directed dissemination
        // beats flooding even before the update budget is spent.
        for k in 1u32..=8 {
            for d in 1u32..=10 {
                let c = KaryCosts::compute(k, d);
                assert!(c.cqd_max < c.flooding, "k={k} d={d}");
            }
        }
    }

    proptest! {
        /// The budget identity CQD + fMax·CUD = CF holds exactly.
        #[test]
        fn prop_budget_identity(k in 1u32..=8, d in 0u32..=12) {
            let c = KaryCosts::compute(k, d);
            prop_assert!(c.budget_identity_holds());
        }

        /// fMax lies in (0, 1]: fewer than one update per query is always
        /// safe on trees of depth ≥ 1; never more than ~1 in the worst case.
        #[test]
        fn prop_f_max_range(k in 1u32..=8, d in 1u32..=12) {
            let c = KaryCosts::compute(k, d);
            let f = c.f_max().unwrap();
            prop_assert!(f > 0.0 && f <= 1.0, "fMax={f} at k={k} d={d}");
        }

        /// fMax decreases with depth for fixed k: deeper trees spend more
        /// on updates per query, so the safe budget shrinks.
        #[test]
        fn prop_f_max_monotone_in_depth(k in 2u32..=8, d in 1u32..=10) {
            let shallow = KaryCosts::compute(k, d).f_max().unwrap();
            let deep = KaryCosts::compute(k, d + 1).f_max().unwrap();
            prop_assert!(deep < shallow, "fMax must shrink with depth (k={k} d={d})");
        }

        /// Structural counts: N = leaves + internal, edges = N − 1 implied
        /// by the cost relations.
        #[test]
        fn prop_structural_counts(k in 1u32..=6, d in 0u32..=10) {
            let c = KaryCosts::compute(k, d);
            prop_assert_eq!(c.n, c.leaves + c.internal);
            prop_assert_eq!(c.flooding, c.n + 2 * (c.n - 1));
            prop_assert_eq!(c.cud_max, 2 * (c.n - 1));
        }
    }
}
