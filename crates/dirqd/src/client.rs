//! Blocking client for the dirqd protocol.
//!
//! One [`Client`] wraps one TCP connection; calls are synchronous
//! request/response pairs. Open several clients to drive concurrent
//! query load (the daemon batches submissions per deployment).

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

use dirq_sim::json::Json;

use crate::protocol::{parse_fingerprint, read_line, write_line};

/// A failed daemon call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connection refused, broken pipe, framing).
    Io(io::Error),
    /// The daemon answered with `ok: false`.
    Remote(String),
    /// The daemon's answer was missing an expected field.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Remote(msg) => write!(f, "daemon: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Shorthand for daemon-call results.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A deployment summary as the daemon reports it.
#[derive(Clone, Debug)]
pub struct DeploySummary {
    /// Deployment name.
    pub name: String,
    /// Registry preset.
    pub preset: String,
    /// Scheme label.
    pub scheme: String,
    /// Engine seed.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// Preset epoch budget.
    pub epochs: u64,
    /// Current epoch.
    pub epoch: u64,
}

impl DeploySummary {
    fn from_json(doc: &Json) -> Result<DeploySummary> {
        let text = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ClientError::Protocol(format!("missing field {k:?}")))
        };
        let num = |k: &str| {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| ClientError::Protocol(format!("missing field {k:?}")))
        };
        Ok(DeploySummary {
            name: text("name")?,
            preset: text("preset")?,
            scheme: text("scheme")?,
            seed: num("seed")? as u64,
            nodes: num("nodes")? as usize,
            epochs: num("epochs")? as u64,
            epoch: num("epoch")? as u64,
        })
    }
}

/// The scored outcome of one client query.
#[derive(Clone, Copy, Debug)]
pub struct QueryReport {
    /// Assigned query id.
    pub id: u64,
    /// Epoch the query was injected at.
    pub epoch: u64,
    /// Epoch the batch finished resolving at.
    pub answered_epoch: u64,
    /// Nodes whose current value satisfies the query.
    pub true_sources: usize,
    /// Satisfying nodes the dissemination actually reached.
    pub sources_reached: usize,
    /// Source recall in `[0, 1]`.
    pub recall: f64,
    /// Query-dissemination transmissions attributed to this query.
    pub tx: u64,
    /// Matching receptions.
    pub rx: u64,
}

/// A snapshot the daemon wrote to disk.
#[derive(Clone, Debug)]
pub struct SnapshotReport {
    /// Image path.
    pub path: String,
    /// Image size in bytes (header + body).
    pub bytes: u64,
    /// Epoch the capture happened at.
    pub epoch: u64,
    /// Engine state fingerprint at capture.
    pub fingerprint: u64,
}

/// One blocking connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    /// One raw request/response round trip; checks the `ok` envelope.
    pub fn call(&mut self, request: &Json) -> Result<Json> {
        write_line(&mut self.writer, request)?;
        let response = read_line(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("daemon closed the connection".into()))?;
        match response.get("ok") {
            Some(Json::Bool(true)) => Ok(response),
            Some(Json::Bool(false)) => Err(ClientError::Remote(
                response.get("error").and_then(Json::as_str).unwrap_or("unspecified").to_string(),
            )),
            _ => Err(ClientError::Protocol("response lacks an \"ok\" field".into())),
        }
    }

    fn request(cmd: &str) -> Json {
        let mut obj = Json::object();
        obj.set("cmd", Json::Str(cmd.to_string()));
        obj
    }

    /// Create a deployment from a registry preset.
    pub fn deploy(
        &mut self,
        name: &str,
        preset: &str,
        scale: Option<f64>,
        scheme: Option<&str>,
        seed: Option<u64>,
    ) -> Result<DeploySummary> {
        let mut req = Self::request("deploy");
        req.set("name", Json::Str(name.to_string()));
        req.set("preset", Json::Str(preset.to_string()));
        if let Some(s) = scale {
            req.set("scale", Json::Num(s));
        }
        if let Some(s) = scheme {
            req.set("scheme", Json::Str(s.to_string()));
        }
        if let Some(s) = seed {
            req.set("seed", Json::Num(s as f64));
        }
        DeploySummary::from_json(&self.call(&req)?)
    }

    /// Submit one range query and block until its batch resolves.
    pub fn query(
        &mut self,
        deployment: &str,
        stype: u8,
        lo: f64,
        hi: f64,
        region: Option<[f64; 4]>,
    ) -> Result<QueryReport> {
        let mut req = Self::request("query");
        req.set("deployment", Json::Str(deployment.to_string()));
        req.set("stype", Json::Num(f64::from(stype)));
        req.set("lo", Json::Num(lo));
        req.set("hi", Json::Num(hi));
        if let Some(r) = region {
            req.set("region", Json::Arr(r.iter().map(|&x| Json::Num(x)).collect()));
        }
        let doc = self.call(&req)?;
        let num = |k: &str| {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| ClientError::Protocol(format!("missing field {k:?}")))
        };
        Ok(QueryReport {
            id: num("id")? as u64,
            epoch: num("epoch")? as u64,
            answered_epoch: num("answered_epoch")? as u64,
            true_sources: num("true_sources")? as usize,
            sources_reached: num("sources_reached")? as usize,
            recall: num("recall")?,
            tx: num("tx")? as u64,
            rx: num("rx")? as u64,
        })
    }

    /// Advance a deployment by `epochs`; returns the new epoch.
    pub fn step(&mut self, deployment: &str, epochs: u64) -> Result<u64> {
        let mut req = Self::request("step");
        req.set("deployment", Json::Str(deployment.to_string()));
        req.set("epochs", Json::Num(epochs as f64));
        let doc = self.call(&req)?;
        doc.get("epoch")
            .and_then(Json::as_f64)
            .map(|e| e as u64)
            .ok_or_else(|| ClientError::Protocol("missing field \"epoch\"".into()))
    }

    /// List every deployment.
    pub fn status(&mut self) -> Result<Vec<DeploySummary>> {
        let doc = self.call(&Self::request("status"))?;
        doc.get("deployments")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing field \"deployments\"".into()))?
            .iter()
            .map(DeploySummary::from_json)
            .collect()
    }

    /// The engine-state fingerprint of a deployment, with its epoch.
    pub fn fingerprint(&mut self, deployment: &str) -> Result<(u64, u64)> {
        let mut req = Self::request("fingerprint");
        req.set("deployment", Json::Str(deployment.to_string()));
        let doc = self.call(&req)?;
        let epoch = doc
            .get("epoch")
            .and_then(Json::as_f64)
            .ok_or_else(|| ClientError::Protocol("missing field \"epoch\"".into()))?
            as u64;
        let fp = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(parse_fingerprint)
            .ok_or_else(|| ClientError::Protocol("missing field \"fingerprint\"".into()))?;
        Ok((epoch, fp))
    }

    /// Capture a deployment to an image file on the daemon's filesystem.
    pub fn snapshot(&mut self, deployment: &str, path: &str) -> Result<SnapshotReport> {
        let mut req = Self::request("snapshot");
        req.set("deployment", Json::Str(deployment.to_string()));
        req.set("path", Json::Str(path.to_string()));
        let doc = self.call(&req)?;
        let num = |k: &str| {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| ClientError::Protocol(format!("missing field {k:?}")))
        };
        Ok(SnapshotReport {
            path: doc.get("path").and_then(Json::as_str).unwrap_or(path).to_string(),
            bytes: num("bytes")? as u64,
            epoch: num("epoch")? as u64,
            fingerprint: doc
                .get("fingerprint")
                .and_then(Json::as_str)
                .and_then(parse_fingerprint)
                .ok_or_else(|| ClientError::Protocol("missing field \"fingerprint\"".into()))?,
        })
    }

    /// Create a deployment from an image file on the daemon's filesystem.
    pub fn restore(&mut self, name: &str, path: &str) -> Result<DeploySummary> {
        let mut req = Self::request("restore");
        req.set("name", Json::Str(name.to_string()));
        req.set("path", Json::Str(path.to_string()));
        DeploySummary::from_json(&self.call(&req)?)
    }

    /// Stop the daemon (all deployments are torn down).
    pub fn shutdown(&mut self) -> Result<()> {
        self.call(&Self::request("shutdown")).map(|_| ())
    }
}
