//! Blocking client for the dirqd protocol.
//!
//! One [`Client`] wraps one TCP connection; calls are synchronous
//! request/response pairs. Open several clients to drive concurrent
//! query load. Blocking queries ([`Client::query`]) wait for the
//! outcome; non-blocking ones ([`Client::query_async`]) return the
//! assigned id at injection and resolve later through [`Client::poll`]
//! or [`Client::drain`].
//!
//! Every reply read carries a socket deadline ([`DEFAULT_READ_TIMEOUT`]
//! unless [`Client::set_timeout`] changes it) so a dead daemon yields
//! [`ClientError::Timeout`] instead of blocking forever. The daemon
//! bounds its own engine round trips more tightly (see
//! [`crate::protocol::DEFAULT_TIMEOUT_MS`]), so under the defaults a
//! wedged *deployment* still produces an orderly remote `timeout` error
//! while the connection stays usable; a client-side timeout means the
//! daemon itself is gone and the connection must be abandoned (the
//! stream may hold a half-delivered reply).

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use dirq_sim::json::Json;

use crate::protocol::{parse_fingerprint, read_line, write_line};

/// Default socket read deadline. Longer than the daemon's own default
/// engine deadline, so daemon-side timeouts win when both are left at
/// their defaults.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(120);

/// A failed daemon call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connection refused, broken pipe, framing).
    Io(io::Error),
    /// No reply within the read deadline. The connection is no longer
    /// safe to reuse — the reply may arrive later and desynchronise the
    /// request/response pairing.
    Timeout,
    /// The daemon answered with `ok: false`.
    Remote {
        /// Machine-matchable error kind (see [`crate::protocol::kind`]).
        kind: String,
        /// Human-readable message.
        message: String,
    },
    /// The daemon's answer was missing an expected field.
    Protocol(String),
}

impl ClientError {
    /// The remote error kind, when this is a remote error.
    pub fn kind(&self) -> Option<&str> {
        match self {
            ClientError::Remote { kind, .. } => Some(kind),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Timeout => write!(f, "timed out waiting for the daemon's reply"),
            ClientError::Remote { kind, message } => write!(f, "daemon: [{kind}] {message}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        // A socket read deadline surfaces as WouldBlock (unix) or
        // TimedOut depending on platform.
        if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
            ClientError::Timeout
        } else {
            ClientError::Io(e)
        }
    }
}

/// Shorthand for daemon-call results.
pub type Result<T> = std::result::Result<T, ClientError>;

/// Optional `deploy`/`restore` parameters (see the protocol reference
/// in [`crate::protocol`]); `None` everywhere means the daemon's
/// defaults.
#[derive(Clone, Debug, Default)]
pub struct DeployOptions {
    /// Epoch-budget scale.
    pub scale: Option<f64>,
    /// Scheme label.
    pub scheme: Option<String>,
    /// Engine seed (u64, carried losslessly).
    pub seed: Option<u64>,
    /// Admission policy: `"fifo"` or `"rr"`.
    pub policy: Option<String>,
    /// Admission-queue bound (0 rejects every submission).
    pub queue_cap: Option<u64>,
    /// Submissions admitted per epoch boundary (0 = all waiting).
    pub admit_per_epoch: Option<u64>,
    /// Auto-checkpoint period in epochs (0 = off).
    pub checkpoint_every_epochs: Option<u64>,
    /// Directory rotating checkpoints are written into.
    pub checkpoint_dir: Option<String>,
}

impl DeployOptions {
    fn apply(&self, req: &mut Json) {
        if let Some(v) = self.scale {
            req.set("scale", Json::Num(v));
        }
        if let Some(v) = &self.scheme {
            req.set("scheme", Json::Str(v.clone()));
        }
        if let Some(v) = self.seed {
            req.set("seed", Json::from_u64(v));
        }
        if let Some(v) = &self.policy {
            req.set("policy", Json::Str(v.clone()));
        }
        if let Some(v) = self.queue_cap {
            req.set("queue_cap", Json::from_u64(v));
        }
        if let Some(v) = self.admit_per_epoch {
            req.set("admit_per_epoch", Json::from_u64(v));
        }
        if let Some(v) = self.checkpoint_every_epochs {
            req.set("checkpoint_every_epochs", Json::from_u64(v));
        }
        if let Some(v) = &self.checkpoint_dir {
            req.set("checkpoint_dir", Json::Str(v.clone()));
        }
    }
}

/// A deployment summary as the daemon reports it.
#[derive(Clone, Debug)]
pub struct DeploySummary {
    /// Deployment name.
    pub name: String,
    /// Registry preset.
    pub preset: String,
    /// Scheme label.
    pub scheme: String,
    /// Engine seed.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// Preset epoch budget.
    pub epochs: u64,
    /// Current epoch.
    pub epoch: u64,
    /// Admission policy label.
    pub policy: String,
    /// `(slot, epoch)` of the checkpoint image this deployment was
    /// resumed from, when the daemon recovered it at startup.
    pub recovered: Option<(u64, u64)>,
}

impl DeploySummary {
    fn from_json(doc: &Json) -> Result<DeploySummary> {
        let text = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ClientError::Protocol(format!("missing field {k:?}")))
        };
        let int = |k: &str| {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("missing field {k:?}")))
        };
        Ok(DeploySummary {
            name: text("name")?,
            preset: text("preset")?,
            scheme: text("scheme")?,
            seed: int("seed")?,
            nodes: int("nodes")? as usize,
            epochs: int("epochs")?,
            epoch: int("epoch")?,
            policy: text("policy").unwrap_or_else(|_| "fifo".to_string()),
            recovered: doc.get("recovered").and_then(|r| {
                Some((
                    r.get("slot").and_then(Json::as_u64)?,
                    r.get("epoch").and_then(Json::as_u64)?,
                ))
            }),
        })
    }
}

/// The full `status` response: pool size, deployments, and anything the
/// recovery scan could not resume.
#[derive(Clone, Debug)]
pub struct StatusReport {
    /// Serving-pool worker count the daemon was started with.
    pub serving_threads: u64,
    /// Every live deployment, name-ascending.
    pub deployments: Vec<DeploySummary>,
    /// `(name, error)` for each deployment `--recover` found but could
    /// not resume from any checkpoint slot.
    pub unrecoverable: Vec<(String, String)>,
}

/// The scored outcome of one client query.
#[derive(Clone, Copy, Debug)]
pub struct QueryReport {
    /// Assigned query id.
    pub id: u64,
    /// Epoch the query was injected at.
    pub epoch: u64,
    /// Epoch the query finalised at.
    pub answered_epoch: u64,
    /// `answered_epoch - epoch`: the in-engine answer latency.
    pub epochs_to_answer: u64,
    /// Nodes whose current value satisfies the query.
    pub true_sources: usize,
    /// Satisfying nodes the dissemination actually reached.
    pub sources_reached: usize,
    /// Source recall in `[0, 1]`.
    pub recall: f64,
    /// Query-dissemination transmissions attributed to this query.
    pub tx: u64,
    /// Matching receptions.
    pub rx: u64,
}

impl QueryReport {
    fn from_json(doc: &Json) -> Result<QueryReport> {
        let int = |k: &str| {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("missing field {k:?}")))
        };
        Ok(QueryReport {
            id: int("id")?,
            epoch: int("epoch")?,
            answered_epoch: int("answered_epoch")?,
            epochs_to_answer: int("epochs_to_answer")?,
            true_sources: int("true_sources")? as usize,
            sources_reached: int("sources_reached")? as usize,
            recall: doc
                .get("recall")
                .and_then(Json::as_f64)
                .ok_or_else(|| ClientError::Protocol("missing field \"recall\"".into()))?,
            tx: int("tx")?,
            rx: int("rx")?,
        })
    }
}

/// One `drain` response: completed queries since the request cursor.
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Completed queries in sequence order, each with its log sequence
    /// number.
    pub results: Vec<(u64, QueryReport)>,
    /// Cursor to pass to the next drain (one past the last returned
    /// sequence, or the log head when nothing was returned).
    pub cursor: u64,
    /// Queries still queued or in flight on the deployment.
    pub pending: u64,
    /// Deployment epoch at reply time.
    pub epoch: u64,
}

/// A snapshot the daemon wrote to disk.
#[derive(Clone, Debug)]
pub struct SnapshotReport {
    /// Image path.
    pub path: String,
    /// Image size in bytes (header + body).
    pub bytes: u64,
    /// Epoch the capture happened at.
    pub epoch: u64,
    /// Engine state fingerprint at capture.
    pub fingerprint: u64,
}

/// One blocking connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon with the default read deadline.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    /// Change (or with `None` remove) the socket read deadline.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.writer.set_read_timeout(timeout)?;
        Ok(())
    }

    /// One raw request/response round trip; checks the `ok` envelope.
    pub fn call(&mut self, request: &Json) -> Result<Json> {
        write_line(&mut self.writer, request)?;
        let response = read_line(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("daemon closed the connection".into()))?;
        match response.get("ok") {
            Some(Json::Bool(true)) => Ok(response),
            Some(Json::Bool(false)) => Err(ClientError::Remote {
                kind: response
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
                message: response
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            }),
            _ => Err(ClientError::Protocol("response lacks an \"ok\" field".into())),
        }
    }

    fn request(cmd: &str) -> Json {
        let mut obj = Json::object();
        obj.set("cmd", Json::Str(cmd.to_string()));
        obj
    }

    /// Create a deployment from a registry preset.
    pub fn deploy(
        &mut self,
        name: &str,
        preset: &str,
        options: &DeployOptions,
    ) -> Result<DeploySummary> {
        let mut req = Self::request("deploy");
        req.set("name", Json::Str(name.to_string()));
        req.set("preset", Json::Str(preset.to_string()));
        options.apply(&mut req);
        DeploySummary::from_json(&self.call(&req)?)
    }

    fn query_request(
        deployment: &str,
        stype: u8,
        lo: f64,
        hi: f64,
        region: Option<[f64; 4]>,
    ) -> Json {
        let mut req = Self::request("query");
        req.set("deployment", Json::Str(deployment.to_string()));
        req.set("stype", Json::Num(f64::from(stype)));
        req.set("lo", Json::Num(lo));
        req.set("hi", Json::Num(hi));
        if let Some(r) = region {
            req.set("region", Json::Arr(r.iter().map(|&x| Json::Num(x)).collect()));
        }
        req
    }

    /// Submit one range query and block until it completes.
    pub fn query(
        &mut self,
        deployment: &str,
        stype: u8,
        lo: f64,
        hi: f64,
        region: Option<[f64; 4]>,
    ) -> Result<QueryReport> {
        let req = Self::query_request(deployment, stype, lo, hi, region);
        QueryReport::from_json(&self.call(&req)?)
    }

    /// Submit one range query without waiting for the outcome: returns
    /// `(id, injection_epoch)` once the query is injected. Fetch the
    /// outcome later with [`Client::poll`] or [`Client::drain`]. The
    /// optional `client` tag feeds the daemon's round-robin admission
    /// policy.
    pub fn query_async(
        &mut self,
        deployment: &str,
        stype: u8,
        lo: f64,
        hi: f64,
        region: Option<[f64; 4]>,
        client: Option<&str>,
    ) -> Result<(u64, u64)> {
        let mut req = Self::query_request(deployment, stype, lo, hi, region);
        req.set("async", Json::Bool(true));
        if let Some(c) = client {
            req.set("client", Json::Str(c.to_string()));
        }
        let doc = self.call(&req)?;
        let int = |k: &str| {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("missing field {k:?}")))
        };
        Ok((int("id")?, int("epoch")?))
    }

    /// Check one submitted query: `Ok(Some(report))` once completed,
    /// `Ok(None)` while still in flight. An id the deployment never
    /// assigned (or whose result aged out of the log) is a remote
    /// `not_found` error.
    pub fn poll(&mut self, deployment: &str, id: u64) -> Result<Option<QueryReport>> {
        let mut req = Self::request("poll");
        req.set("deployment", Json::Str(deployment.to_string()));
        req.set("id", Json::from_u64(id));
        let doc = self.call(&req)?;
        match doc.get("done").and_then(Json::as_bool) {
            Some(true) => Ok(Some(QueryReport::from_json(&doc)?)),
            Some(false) => Ok(None),
            None => Err(ClientError::Protocol("missing field \"done\"".into())),
        }
    }

    /// Fetch every completed query with log sequence `>= cursor` (the
    /// daemon caps one response; loop until `results` comes back empty).
    /// Start from cursor 0, or from `u64::MAX` to learn the current log
    /// head without consuming anything.
    pub fn drain(&mut self, deployment: &str, cursor: u64) -> Result<DrainReport> {
        let mut req = Self::request("drain");
        req.set("deployment", Json::Str(deployment.to_string()));
        req.set("cursor", Json::from_u64(cursor));
        let doc = self.call(&req)?;
        let int = |k: &str| {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("missing field {k:?}")))
        };
        let mut results = Vec::new();
        for item in doc
            .get("results")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing field \"results\"".into()))?
        {
            let seq = item
                .get("seq")
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol("drain result lacks \"seq\"".into()))?;
            results.push((seq, QueryReport::from_json(item)?));
        }
        Ok(DrainReport {
            results,
            cursor: int("cursor")?,
            pending: int("pending")?,
            epoch: int("epoch")?,
        })
    }

    /// Advance a deployment by `epochs`; returns the new epoch.
    pub fn step(&mut self, deployment: &str, epochs: u64) -> Result<u64> {
        let mut req = Self::request("step");
        req.set("deployment", Json::Str(deployment.to_string()));
        req.set("epochs", Json::from_u64(epochs));
        let doc = self.call(&req)?;
        doc.get("epoch")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing field \"epoch\"".into()))
    }

    /// List every deployment.
    pub fn status(&mut self) -> Result<Vec<DeploySummary>> {
        Ok(self.status_full()?.deployments)
    }

    /// The full `status` response, including the serving-pool size and
    /// the recovery scan's `unrecoverable` list.
    pub fn status_full(&mut self) -> Result<StatusReport> {
        let doc = self.call(&Self::request("status"))?;
        let deployments = doc
            .get("deployments")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing field \"deployments\"".into()))?
            .iter()
            .map(DeploySummary::from_json)
            .collect::<Result<Vec<_>>>()?;
        let unrecoverable = doc
            .get("unrecoverable")
            .and_then(Json::as_array)
            .map(|items| {
                items
                    .iter()
                    .map(|u| {
                        let text = |k: &str| {
                            u.get(k).and_then(Json::as_str).map(str::to_string).unwrap_or_default()
                        };
                        (text("name"), text("error"))
                    })
                    .collect()
            })
            .unwrap_or_default();
        Ok(StatusReport {
            serving_threads: doc.get("serving_threads").and_then(Json::as_u64).unwrap_or(0),
            deployments,
            unrecoverable,
        })
    }

    /// The engine-state fingerprint of a deployment, with its epoch.
    pub fn fingerprint(&mut self, deployment: &str) -> Result<(u64, u64)> {
        let mut req = Self::request("fingerprint");
        req.set("deployment", Json::Str(deployment.to_string()));
        let doc = self.call(&req)?;
        let epoch = doc
            .get("epoch")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("missing field \"epoch\"".into()))?;
        let fp = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(parse_fingerprint)
            .ok_or_else(|| ClientError::Protocol("missing field \"fingerprint\"".into()))?;
        Ok((epoch, fp))
    }

    /// Capture a deployment to an image file on the daemon's filesystem.
    pub fn snapshot(&mut self, deployment: &str, path: &str) -> Result<SnapshotReport> {
        let mut req = Self::request("snapshot");
        req.set("deployment", Json::Str(deployment.to_string()));
        req.set("path", Json::Str(path.to_string()));
        let doc = self.call(&req)?;
        let int = |k: &str| {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("missing field {k:?}")))
        };
        Ok(SnapshotReport {
            path: doc.get("path").and_then(Json::as_str).unwrap_or(path).to_string(),
            bytes: int("bytes")?,
            epoch: int("epoch")?,
            fingerprint: doc
                .get("fingerprint")
                .and_then(Json::as_str)
                .and_then(parse_fingerprint)
                .ok_or_else(|| ClientError::Protocol("missing field \"fingerprint\"".into()))?,
        })
    }

    /// Create a deployment from an image file on the daemon's
    /// filesystem. `options` may override serving knobs (seed, scale and
    /// scheme come from the image header and are ignored here).
    pub fn restore(
        &mut self,
        name: &str,
        path: &str,
        options: &DeployOptions,
    ) -> Result<DeploySummary> {
        let mut req = Self::request("restore");
        req.set("name", Json::Str(name.to_string()));
        req.set("path", Json::Str(path.to_string()));
        options.apply(&mut req);
        DeploySummary::from_json(&self.call(&req)?)
    }

    /// Stop the daemon (all deployments are torn down).
    pub fn shutdown(&mut self) -> Result<()> {
        self.call(&Self::request("shutdown")).map(|_| ())
    }
}
