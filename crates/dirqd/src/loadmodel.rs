//! The deterministic query-load model shared by the load generator and
//! the golden recorder.
//!
//! The loadgen's latency-histogram phase drives [`HIST_QUERIES`]
//! barriered queries (submit, wait for completion, submit the next)
//! with content from [`hist_query`]. Because the daemon injects each
//! barriered submission at the next epoch boundary and steps until it
//! finalises, the *epochs-to-answer* of every query is a deterministic
//! function of the deployment recipe — [`reference_epochs_histogram`]
//! reproduces it engine-level, with no daemon involved, which is what
//! lets `record_goldens --check` gate the recorded histogram while the
//! wall-clock percentiles beside it stay machine-specific.

use dirq_core::Engine;
use dirq_data::SensorType;

use crate::protocol::resolve_deployment;

/// Queries in the barriered histogram phase.
pub const HIST_QUERIES: usize = 24;

/// Content of the `k`-th histogram query: `(stype, lo, hi)`. Windows
/// sweep the value range of both sensor types so latencies are sampled
/// across differently sized result sets, without RNG.
pub fn hist_query(k: usize) -> (u8, f64, f64) {
    let stype = (k % 2) as u8;
    let lo = 12.0 + ((k * 7) % 9) as f64;
    let hi = lo + 6.0 + (k % 4) as f64;
    (stype, lo, hi)
}

/// Replay the histogram phase engine-level: build the preset's default
/// deployment, step `warmup` epochs, then run the barriered sequence,
/// returning each query's epochs-to-answer in submission order.
///
/// This mirrors the daemon's serving loop exactly — a barriered
/// submission injects at the current epoch boundary and the engine
/// steps until it finalises, stopping on the boundary after the
/// finalising epoch.
pub fn reference_epochs_histogram(preset: &str, scale: f64, warmup: u64) -> Vec<u64> {
    let (spec, scheme) =
        resolve_deployment(preset, scale, None).unwrap_or_else(|e| panic!("resolve {preset}: {e}"));
    let seed = spec.seed;
    let mut engine = Engine::new(spec.config(scheme, seed));
    engine.enable_completed_log();
    for _ in 0..warmup {
        engine.step_epoch();
    }
    let mut latencies = Vec::with_capacity(HIST_QUERIES);
    for k in 0..HIST_QUERIES {
        let (stype, lo, hi) = hist_query(k);
        let id = engine.submit_external_query(SensorType(stype), lo, hi, None);
        loop {
            engine.step_epoch();
            if let Some(done) = engine.completed_by_id(id.0) {
                latencies.push(done.answered_epoch - done.outcome.epoch);
                break;
            }
        }
    }
    latencies
}

/// One step of a barriered serving script ([`replay_serving`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServingOp {
    /// An explicit `step` command: advance this many epochs.
    Step(u64),
    /// A blocking range query `(stype, lo, hi)`: inject at the current
    /// epoch boundary, then step until it finalises.
    Query(u8, f64, f64),
}

/// Replay a barriered op sequence engine-level, with no daemon
/// involved, and return the final `(epoch, state_fingerprint)`.
///
/// This mirrors one deployment's scheduled turns in the serving pool
/// exactly: a blocking query is admitted and injected at the current
/// epoch boundary, the engine steps one epoch per turn until the query
/// finalises, and an explicit `step` never admits anything. The daemon
/// differential tests pin that a deployment multiplexed over any
/// `--serving-threads` count walks this exact trajectory.
pub fn replay_serving(
    preset: &str,
    scale: f64,
    seed: Option<u64>,
    ops: &[ServingOp],
) -> (u64, u64) {
    let (spec, scheme) =
        resolve_deployment(preset, scale, None).unwrap_or_else(|e| panic!("resolve {preset}: {e}"));
    let seed = seed.unwrap_or(spec.seed);
    let mut engine = Engine::new(spec.config(scheme, seed));
    engine.enable_completed_log();
    for op in ops {
        match *op {
            ServingOp::Step(epochs) => {
                for _ in 0..epochs {
                    engine.step_epoch();
                }
            }
            ServingOp::Query(stype, lo, hi) => {
                let id = engine.submit_external_query(SensorType(stype), lo, hi, None);
                loop {
                    engine.step_epoch();
                    if engine.completed_by_id(id.0).is_some() {
                        break;
                    }
                }
            }
        }
    }
    (engine.epoch(), engine.state_fingerprint())
}

/// Collapse per-query latencies into sorted `(epochs, count)` pairs —
/// the shape BENCH_3.json records.
pub fn histogram_counts(latencies: &[u64]) -> Vec<(u64, u64)> {
    let mut counts = std::collections::BTreeMap::new();
    for &l in latencies {
        *counts.entry(l).or_insert(0u64) += 1;
    }
    counts.into_iter().collect()
}

/// The `p`-th percentile (0–100) of a sample, nearest-rank on a sorted
/// copy. Returns 0.0 on an empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_accumulate_sorted() {
        assert_eq!(histogram_counts(&[3, 1, 3, 3, 2]), vec![(1, 1), (2, 1), (3, 3)]);
        assert!(histogram_counts(&[]).is_empty());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&s, 50.0), 2.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
        assert_eq!(percentile(&s, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn reference_histogram_is_deterministic() {
        let a = reference_epochs_histogram("dense_grid_100", 0.1, 8);
        let b = reference_epochs_histogram("dense_grid_100", 0.1, 8);
        assert_eq!(a.len(), HIST_QUERIES);
        assert_eq!(a, b);
        assert!(a.iter().all(|&l| l > 0), "every query needs at least one epoch to answer");
    }
}
