//! # dirqd — a query-serving daemon for live DirQ deployments
//!
//! The simulation workspace runs experiments as batch jobs; `dirqd`
//! turns an [`Engine`](dirq_core::Engine) into a *service*: named
//! deployments built from the scenario registry, hosted behind a
//! newline-JSON TCP protocol, accepting ad-hoc range queries from
//! clients and answering them with scored outcomes once the protocol's
//! completion window has elapsed.
//!
//! Three pieces:
//!
//! * [`daemon`] — the server: deployments multiplexed over a fixed-size
//!   serving pool, epoch-boundary batching of client queries,
//!   snapshot/restore of the full engine state to versioned image
//!   files, and crash recovery from rotating auto-checkpoints.
//! * [`client`] — a blocking protocol client ([`Client`]).
//! * [`protocol`] — the wire format: bounded newline-JSON lines and the
//!   snapshot image header.
//!
//! Binaries: `dirqd` (serve), `dirq-cli` (one-shot protocol calls from
//! the shell) and `loadgen` (the throughput harness recording
//! `BENCH_3.json`, plus the CI `--smoke` mode).
//!
//! ## Determinism contract
//!
//! Engines are deterministic; the daemon preserves that per deployment
//! by forcing every mutation through one command stream and ordering
//! concurrent query submissions by content at each epoch boundary. Two
//! daemons fed the same barriered call sequence produce byte-identical
//! engine state — `state_fingerprint` equality after a
//! snapshot/restore round trip is asserted by the integration tests and
//! the loadgen smoke mode.

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod loadmodel;
pub mod protocol;

pub use client::{
    Client, ClientError, DeployOptions, DeploySummary, DrainReport, QueryReport, SnapshotReport,
    StatusReport,
};
pub use daemon::{Daemon, DaemonOptions, DeploymentInfo, RecoveredFrom};
pub use protocol::{AdmissionPolicy, ImageHeader, ServingOptions, MAX_LINE_BYTES};
