//! The daemon: named live deployments behind a TCP protocol endpoint.
//!
//! Deployments are passive [`Slot`] state objects multiplexed over a
//! fixed-size **serving pool** (`--serving-threads N`, default one
//! worker per available hardware thread), so thousands of deployments
//! cost thousands of structs, not thousands of OS threads. Connection
//! handlers never touch an engine directly — they push commands into a
//! slot's mailbox, schedule the slot onto the pool, and wait (with a
//! deadline) for the reply, so every deployment still processes exactly
//! one command stream in a deterministic order and a wedged deployment
//! costs its caller a typed `timeout` error, not a hung connection.
//!
//! ## Scheduled turns
//!
//! A pool worker runs one deployment **turn** at a time: drain the
//! mailbox in arrival order, process every command, and — while any
//! query is queued or in flight — admit a scheduling round, inject it
//! ordered **by content** (sensor type, window bounds, region, client
//! tag) rather than arrival time, step one epoch, and sweep
//! completions. A slot reschedules itself while it has backlog and goes
//! idle otherwise; a tiny CAS state machine (idle → queued → running →
//! dirty) guarantees a slot occupies at most one worker at a time and
//! that a command arriving mid-turn re-queues it. Because a turn is the
//! old engine-thread loop iteration verbatim, per-deployment
//! trajectories are bit-identical to the thread-per-deployment daemon
//! at **any** `--serving-threads` count — the property the differential
//! tests pin against [`crate::loadmodel::replay_serving`].
//!
//! ## The serving loop
//!
//! External queries pass through a per-deployment **admission queue**
//! (bounded at [`ServingOptions::queue_cap`]; beyond it submissions are
//! rejected with `queue_full`). Blocking queries reply at completion;
//! `async` queries reply with their id at injection and resolve later
//! through `poll`/`drain`. Because every admission round is injected
//! content-ordered, a fixed sequence of barriered rounds drives the
//! engine along a reproducible trajectory regardless of socket
//! scheduling, submission policy, or when results are polled.
//!
//! ## Crash recovery
//!
//! `--recover <dir>` scans the rotating auto-checkpoint slots
//! (`<name>.<slot>.dirqsnap`) at startup, validates every frame, and
//! resumes each deployment from its newest valid image — a torn or
//! truncated newest slot (the expected wreckage of `kill -9` mid-write)
//! falls back to the older slot. Deployments whose slots are all
//! unreadable are reported under `unrecoverable` in `status` instead of
//! aborting startup; recovered ones carry a `recovered` object naming
//! the slot and epoch they resumed from.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dirq_core::{CompletedQuery, Engine, Protocol};
use dirq_data::SensorType;
use dirq_net::{Position, Rect};
use dirq_scenario::Scheme;
use dirq_sim::json::Json;
use dirq_sim::snap::{check_image, frame_image, parse_image};

use crate::protocol::{
    err_response, fingerprint_hex, kind, ok_response, read_line, request_timeout,
    resolve_deployment, write_line, ImageHeader, IMAGE_EXTENSION,
};

pub use crate::protocol::{AdmissionPolicy, ServingOptions, DEFAULT_QUEUE_CAP};

/// Most results one `drain` response returns (the client loops).
pub const DRAIN_MAX_RESULTS: usize = 512;

/// Completed external results retained for `poll`/`drain` before the
/// oldest are evicted.
pub const RESULTS_LOG_CAP: usize = 65_536;

/// Rotating auto-checkpoint slots per deployment.
pub const CHECKPOINT_SLOTS: u64 = 2;

/// One query waiting in the admission queue.
struct Submission {
    stype: u8,
    lo: f64,
    hi: f64,
    region: Option<[f64; 4]>,
    /// Client tag for round-robin scheduling (empty when the request
    /// carried none).
    client: String,
    /// Async submissions get their id at injection; blocking ones get
    /// the full outcome at completion.
    is_async: bool,
    reply: Sender<Json>,
}

impl Submission {
    /// Content ordering key — injection order within an admission round
    /// must not depend on socket arrival time.
    fn key(&self) -> (u8, u64, u64, u8, [u64; 4]) {
        let region_bits = self.region.map_or([0; 4], |r| r.map(f64::to_bits));
        (
            self.stype,
            self.lo.to_bits(),
            self.hi.to_bits(),
            u8::from(self.region.is_some()),
            region_bits,
        )
    }
}

/// Commands a connection handler can push into a slot's mailbox.
enum EngineCmd {
    Submit(Submission),
    Poll {
        id: u64,
        reply: Sender<Json>,
    },
    Drain {
        cursor: u64,
        reply: Sender<Json>,
    },
    Step {
        epochs: u64,
        reply: Sender<Json>,
    },
    Fingerprint {
        reply: Sender<Json>,
    },
    SnapshotTo {
        path: String,
        reply: Sender<Json>,
    },
    /// Diagnostics: occupy the slot's turn for `ms` (bounded) — the
    /// deterministic wedge the timeout tests use.
    Stall {
        ms: u64,
        reply: Sender<Json>,
    },
}

/// Where a recovered deployment resumed from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveredFrom {
    /// Rotation slot index of the image used.
    pub slot: u64,
    /// Epoch the image was captured at.
    pub epoch: u64,
}

/// Static facts about a deployment, shared with `status` handlers.
#[derive(Clone)]
pub struct DeploymentInfo {
    /// Deployment name (the protocol handle).
    pub name: String,
    /// Registry preset it was built from.
    pub preset: String,
    /// Epoch-budget scale applied to the preset.
    pub scale: f64,
    /// Scheme label.
    pub scheme: String,
    /// Engine seed.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// The preset's epoch budget (the daemon may step past it).
    pub epochs: u64,
    /// Whether nodes carry positions (spatially scoped queries allowed).
    pub location_enabled: bool,
    /// Serving knobs this deployment was installed with.
    pub serving: ServingOptions,
    /// Set when this deployment was resumed by `--recover`.
    pub recovered: Option<RecoveredFrom>,
}

impl DeploymentInfo {
    fn to_json(&self, epoch: u64) -> Json {
        let mut obj = Json::object();
        obj.set("name", Json::Str(self.name.clone()));
        obj.set("preset", Json::Str(self.preset.clone()));
        obj.set("scale", Json::Num(self.scale));
        obj.set("scheme", Json::Str(self.scheme.clone()));
        obj.set("seed", Json::from_u64(self.seed));
        obj.set("nodes", Json::from_u64(self.nodes as u64));
        obj.set("epochs", Json::from_u64(self.epochs));
        obj.set("epoch", Json::from_u64(epoch));
        obj.set("policy", Json::Str(self.serving.policy.label().to_string()));
        obj.set("queue_cap", Json::from_u64(self.serving.queue_cap as u64));
        obj.set("admit_per_epoch", Json::from_u64(self.serving.admit_per_epoch as u64));
        obj.set("checkpoint_every_epochs", Json::from_u64(self.serving.checkpoint_every_epochs));
        obj.set("upkeep_workers", Json::from_u64(self.serving.upkeep_workers as u64));
        if let Some(r) = &self.recovered {
            let mut rec = Json::object();
            rec.set("slot", Json::from_u64(r.slot));
            rec.set("epoch", Json::from_u64(r.epoch));
            obj.set("recovered", rec);
        }
        obj
    }
}

// Slot scheduling states: a slot occupies at most one pool worker, and
// a command arriving mid-turn marks it dirty so the finishing worker
// re-queues it instead of dropping the wakeup.
const SCHED_IDLE: u8 = 0;
const SCHED_QUEUED: u8 = 1;
const SCHED_RUNNING: u8 = 2;
const SCHED_DIRTY: u8 = 3;

/// One deployment: passive state scheduled onto pool workers in turns.
struct Slot {
    info: DeploymentInfo,
    /// Last epoch boundary a turn published (lock-free `status` reads).
    epoch: Arc<AtomicU64>,
    /// Commands pushed by connection handlers, drained at turn start in
    /// arrival order.
    mailbox: Mutex<VecDeque<EngineCmd>>,
    /// Engine + admission queue + results log; locked only by the one
    /// worker running this slot's turn.
    serving: Mutex<Serving>,
    /// [`SCHED_IDLE`]/[`SCHED_QUEUED`]/[`SCHED_RUNNING`]/[`SCHED_DIRTY`].
    sched: AtomicU8,
}

/// A deployment with all its checkpoint slots unreadable at `--recover`.
#[derive(Clone, Debug)]
pub struct Unrecoverable {
    /// Deployment name parsed from the image filenames.
    pub name: String,
    /// Per-slot failure detail, newest candidate first.
    pub error: String,
}

struct Shared {
    deployments: Mutex<HashMap<String, Arc<Slot>>>,
    /// Deployments `--recover` found but could not resume.
    unrecoverable: Mutex<Vec<Unrecoverable>>,
    /// Slots with work, awaiting a pool worker.
    ready: Mutex<VecDeque<Arc<Slot>>>,
    /// Wakes pool workers when `ready` gains a slot or at shutdown.
    work: Condvar,
    /// Serving-pool size (surfaced via `status`).
    serving_threads: usize,
    /// Tells pool workers to exit; set at shutdown.
    stopping: AtomicBool,
    shutting_down: AtomicBool,
}

/// Daemon-wide construction options ([`Daemon::bind_with`]).
#[derive(Clone, Debug, Default)]
pub struct DaemonOptions {
    /// Serving-pool worker threads; `0` means one per available
    /// hardware thread.
    pub serving_threads: usize,
    /// Checkpoint directory to scan at startup: every deployment with a
    /// valid rotating image is resumed before the daemon accepts
    /// connections.
    pub recover: Option<String>,
}

/// A running daemon bound to a local TCP port.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Bind to `addr` with default options (use port 0 for an ephemeral
    /// port; see [`Daemon::local_addr`]).
    pub fn bind(addr: &str) -> io::Result<Daemon> {
        Daemon::bind_with(addr, DaemonOptions::default())
    }

    /// Bind to `addr`, size the serving pool, and run the `--recover`
    /// scan (if any) before any connection is accepted.
    pub fn bind_with(addr: &str, options: DaemonOptions) -> io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        let threads = match options.serving_threads {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        };
        let shared = Arc::new(Shared {
            deployments: Mutex::new(HashMap::new()),
            unrecoverable: Mutex::new(Vec::new()),
            ready: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            serving_threads: threads,
            stopping: AtomicBool::new(false),
            shutting_down: AtomicBool::new(false),
        });
        if let Some(dir) = &options.recover {
            recover_from_dir(&shared, dir)?;
        }
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dirqd-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Ok(Daemon { listener, shared, workers })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Bind and serve on a background thread — the in-process form the
    /// load generator and the integration tests use. Returns the bound
    /// address and the serving thread's handle (joins after `shutdown`).
    pub fn spawn(addr: &str) -> io::Result<(SocketAddr, JoinHandle<io::Result<()>>)> {
        Daemon::spawn_with(addr, DaemonOptions::default())
    }

    /// [`Daemon::spawn`] with explicit [`DaemonOptions`].
    pub fn spawn_with(
        addr: &str,
        options: DaemonOptions,
    ) -> io::Result<(SocketAddr, JoinHandle<io::Result<()>>)> {
        let daemon = Daemon::bind_with(addr, options)?;
        let local = daemon.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("dirqd-accept".into())
            .spawn(move || daemon.serve())
            .expect("spawn daemon thread");
        Ok((local, handle))
    }

    /// Serve until a client issues `shutdown`. Blocks; run on its own
    /// thread for in-process use (see the loadgen and the tests).
    pub fn serve(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        for conn in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &shared, addr);
            });
        }
        // Stop the pool (under the ready lock so no worker misses the
        // flag between checking it and blocking on the condvar), join
        // every worker, and drop the slots so serve() returning means
        // the daemon's state is fully torn down.
        {
            let _ready = self.shared.ready.lock().expect("ready queue");
            self.shared.stopping.store(true, Ordering::SeqCst);
            self.shared.work.notify_all();
        }
        for w in self.workers {
            let _ = w.join();
        }
        self.shared.deployments.lock().expect("deployment map").clear();
        Ok(())
    }
}

// --- the serving pool -----------------------------------------------------

/// A pool worker: pop a ready slot, run one turn, re-queue it if it
/// still wants the CPU (backlog, or commands that arrived mid-turn).
fn worker_loop(shared: &Shared) {
    loop {
        let slot = {
            let mut ready = shared.ready.lock().expect("ready queue");
            loop {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(s) = ready.pop_front() {
                    break s;
                }
                ready = shared.work.wait(ready).expect("ready queue");
            }
        };
        slot.sched.store(SCHED_RUNNING, Ordering::SeqCst);
        let wants_more = run_turn(&slot);
        finish_turn(shared, slot, wants_more);
    }
}

/// One scheduled turn — exactly one iteration of the old
/// thread-per-deployment serving loop: drain the mailbox in arrival
/// order, process every command, then (with backlog) admit + inject a
/// content-ordered round, step one epoch, and sweep completions.
/// Returns whether the slot still has backlog and wants rescheduling.
fn run_turn(slot: &Slot) -> bool {
    let mut serving = slot.serving.lock().expect("slot serving state");
    let cmds: Vec<EngineCmd> = {
        let mut mailbox = slot.mailbox.lock().expect("slot mailbox");
        mailbox.drain(..).collect()
    };
    for cmd in cmds {
        serving.process(cmd);
    }
    if serving.backlog() > 0 {
        serving.admit_and_inject();
        serving.engine.step_epoch();
        serving.post_step();
    }
    serving.backlog() > 0
}

/// Post-turn state transition. The running worker owns the RUNNING /
/// DIRTY state; enqueuers can only flip RUNNING → DIRTY, so the CAS
/// loop here terminates after at most one retry.
fn finish_turn(shared: &Shared, slot: Arc<Slot>, wants_more: bool) {
    loop {
        let seen = slot.sched.load(Ordering::SeqCst);
        let requeue = wants_more || seen == SCHED_DIRTY;
        let target = if requeue { SCHED_QUEUED } else { SCHED_IDLE };
        if slot.sched.compare_exchange(seen, target, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
            if requeue {
                if shared.stopping.load(Ordering::SeqCst) {
                    // Shutdown: park the slot instead of spinning the
                    // pool forever on leftover backlog.
                    slot.sched.store(SCHED_IDLE, Ordering::SeqCst);
                    return;
                }
                let mut ready = shared.ready.lock().expect("ready queue");
                ready.push_back(slot);
                shared.work.notify_one();
            }
            return;
        }
    }
}

/// Make sure `slot` is (or will be) scheduled: idle slots are pushed
/// onto the ready queue; a slot mid-turn is marked dirty so the worker
/// re-queues it. Safe against lost wakeups because callers push into
/// the mailbox *before* calling this, and `run_turn` drains the mailbox
/// after the worker publishes RUNNING.
fn schedule(shared: &Shared, slot: &Arc<Slot>) {
    loop {
        match slot.sched.load(Ordering::SeqCst) {
            SCHED_QUEUED | SCHED_DIRTY => return,
            SCHED_IDLE => {
                if slot
                    .sched
                    .compare_exchange(SCHED_IDLE, SCHED_QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    let mut ready = shared.ready.lock().expect("ready queue");
                    ready.push_back(Arc::clone(slot));
                    shared.work.notify_one();
                    return;
                }
            }
            _ => {
                if slot
                    .sched
                    .compare_exchange(
                        SCHED_RUNNING,
                        SCHED_DIRTY,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
                {
                    return;
                }
            }
        }
    }
}

/// Push `cmd` into the slot's mailbox and schedule it.
fn enqueue(shared: &Shared, slot: &Arc<Slot>, cmd: EngineCmd) {
    slot.mailbox.lock().expect("slot mailbox").push_back(cmd);
    schedule(shared, slot);
}

// --- connection handling --------------------------------------------------

/// One client connection: a request/response loop over protocol lines.
fn handle_connection(
    stream: TcpStream,
    shared: &Shared,
    daemon_addr: SocketAddr,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let request = match read_line(&mut reader) {
            Ok(Some(doc)) => doc,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Report the broken line and drop the connection — the
                // stream may be desynchronised.
                let _ = write_line(&mut writer, &err_response(kind::BAD_LINE, &e.to_string()));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let cmd = request.get("cmd").and_then(Json::as_str).unwrap_or_default().to_string();
        let response = match cmd.as_str() {
            "deploy" => handle_deploy(&request, shared),
            "query" => handle_query(&request, shared),
            "poll" => handle_poll(&request, shared),
            "drain" => handle_drain(&request, shared),
            "step" => handle_step(&request, shared),
            "status" => handle_status(shared),
            "fingerprint" => handle_fingerprint(&request, shared),
            "snapshot" => handle_snapshot(&request, shared),
            "restore" => handle_restore(&request, shared),
            "debug_stall" => handle_stall(&request, shared),
            "shutdown" => {
                write_line(&mut writer, &ok_response())?;
                initiate_shutdown(shared, daemon_addr);
                return Ok(());
            }
            "" => err_response(kind::BAD_REQUEST, "missing \"cmd\" field"),
            other => err_response(kind::BAD_REQUEST, &format!("unknown command {other:?}")),
        };
        write_line(&mut writer, &response)?;
    }
}

/// Flag the daemon as stopping and wake the accept loop with a
/// throwaway connection so `serve` observes the flag.
fn initiate_shutdown(shared: &Shared, daemon_addr: SocketAddr) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    if let Ok(s) = TcpStream::connect(daemon_addr) {
        drop(s);
    }
}

fn bad(msg: &str) -> Json {
    err_response(kind::BAD_REQUEST, msg)
}

fn str_field(doc: &Json, key: &str) -> Result<String, Json> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(&format!("missing string field {key:?}")))
}

fn num_field(doc: &Json, key: &str) -> Result<f64, Json> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(&format!("missing numeric field {key:?}")))
}

/// An optional field that must be the right type *when present* —
/// absent and `null` mean "default", anything else mistyped is a typed
/// error rather than a silent fallback.
fn opt_field<T>(
    doc: &Json,
    key: &str,
    expect: &str,
    get: impl Fn(&Json) -> Option<T>,
) -> Result<Option<T>, Json> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => get(v).map(Some).ok_or_else(|| bad(&format!("{key} must be {expect}"))),
    }
}

fn opt_u64_field(doc: &Json, key: &str) -> Result<Option<u64>, Json> {
    opt_field(doc, key, "a non-negative integer", Json::as_u64)
}

fn opt_str_field(doc: &Json, key: &str) -> Result<Option<String>, Json> {
    opt_field(doc, key, "a string", |v| v.as_str().map(str::to_string))
}

/// Parse the serving knobs a `deploy`/`restore` request may carry.
fn serving_options(request: &Json) -> Result<ServingOptions, Json> {
    let mut opts = ServingOptions::default();
    if let Some(label) = opt_str_field(request, "policy")? {
        opts.policy = AdmissionPolicy::parse(&label)
            .ok_or_else(|| bad(&format!("unknown admission policy {label:?} (fifo|rr)")))?;
    }
    if let Some(cap) = opt_u64_field(request, "queue_cap")? {
        opts.queue_cap = usize::try_from(cap).map_err(|_| bad("queue_cap out of range"))?;
    }
    if let Some(n) = opt_u64_field(request, "admit_per_epoch")? {
        opts.admit_per_epoch =
            usize::try_from(n).map_err(|_| bad("admit_per_epoch out of range"))?;
    }
    if let Some(every) = opt_u64_field(request, "checkpoint_every_epochs")? {
        opts.checkpoint_every_epochs = every;
    }
    opts.checkpoint_dir = opt_str_field(request, "checkpoint_dir")?;
    if opts.checkpoint_every_epochs > 0 && opts.checkpoint_dir.is_none() {
        return Err(bad("checkpoint_every_epochs requires checkpoint_dir"));
    }
    if let Some(w) = opt_u64_field(request, "upkeep_workers")? {
        opts.upkeep_workers =
            usize::try_from(w).map_err(|_| bad("upkeep_workers out of range"))?.max(1);
    }
    Ok(opts)
}

/// Clone a deployment's slot handle under the map lock.
fn lookup(shared: &Shared, name: &str) -> Result<Arc<Slot>, Json> {
    let deployments = shared.deployments.lock().expect("deployment map");
    deployments
        .get(name)
        .map(Arc::clone)
        .ok_or_else(|| err_response(kind::NOT_FOUND, &format!("no deployment named {name:?}")))
}

/// Enqueue `cmd` and wait for the slot's reply, bounded by `timeout` —
/// a wedged deployment yields a typed `timeout` error instead of
/// hanging the connection handler.
fn round_trip(
    shared: &Shared,
    slot: &Arc<Slot>,
    cmd: EngineCmd,
    rx: Receiver<Json>,
    timeout: Duration,
) -> Json {
    if shared.stopping.load(Ordering::SeqCst) {
        return err_response(kind::SHUTDOWN, "deployment is shutting down");
    }
    enqueue(shared, slot, cmd);
    match rx.recv_timeout(timeout) {
        Ok(doc) => doc,
        Err(RecvTimeoutError::Timeout) => err_response(
            kind::TIMEOUT,
            &format!("deployment did not answer within {}ms", timeout.as_millis()),
        ),
        Err(RecvTimeoutError::Disconnected) => {
            err_response(kind::SHUTDOWN, "deployment engine stopped")
        }
    }
}

fn handle_deploy(request: &Json, shared: &Shared) -> Json {
    let name = match str_field(request, "name") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let preset = match str_field(request, "preset") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let scale = match opt_field(request, "scale", "a number", Json::as_f64) {
        Ok(v) => v.unwrap_or(1.0),
        Err(e) => return e,
    };
    let scheme_label = match opt_str_field(request, "scheme") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (spec, scheme) = match resolve_deployment(&preset, scale, scheme_label.as_deref()) {
        Ok(v) => v,
        Err(msg) => return deployment_resolution_error(&msg),
    };
    // Seeds are u64s: parse losslessly, and reject (rather than round)
    // negative or fractional values.
    let seed = match opt_u64_field(request, "seed") {
        Ok(v) => v.unwrap_or(spec.seed),
        Err(e) => return e,
    };
    let serving = match serving_options(request) {
        Ok(v) => v,
        Err(e) => return e,
    };
    install(shared, &name, &preset, scale, spec, scheme, seed, serving, None, None)
}

/// [`resolve_deployment`] reports both lookup misses and bad parameters
/// as strings; map the lookup misses to `not_found`.
fn deployment_resolution_error(msg: &str) -> Json {
    if msg.starts_with("unknown") {
        err_response(kind::NOT_FOUND, msg)
    } else {
        bad(msg)
    }
}

fn handle_restore(request: &Json, shared: &Shared) -> Json {
    let name = match str_field(request, "name") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let path = match str_field(request, "path") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let serving = match serving_options(request) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => return err_response(kind::IO, &format!("read {path:?}: {e}")),
    };
    let (header_json, body) = match parse_image(&bytes) {
        Ok(v) => v,
        Err(e) => return err_response(kind::BAD_IMAGE, &format!("parse {path:?}: {e}")),
    };
    let header = match ImageHeader::from_json(&header_json) {
        Ok(h) => h,
        Err(msg) => return err_response(kind::BAD_IMAGE, &msg),
    };
    let (spec, scheme) = match header.resolve() {
        Ok(v) => v,
        Err(msg) => return err_response(kind::BAD_IMAGE, &msg),
    };
    if spec.n_nodes != header.nodes {
        return err_response(
            kind::BAD_IMAGE,
            &format!(
                "image header claims {} nodes but preset {:?} deploys {}",
                header.nodes, header.preset, spec.n_nodes
            ),
        );
    }
    install(
        shared,
        &name,
        &header.preset,
        header.scale,
        spec,
        scheme,
        header.seed,
        serving,
        Some(body),
        None,
    )
}

/// Build the engine (outside the map lock — deployment can take a
/// while), optionally overlay a snapshot body, and register the slot
/// under `name`.
#[allow(clippy::too_many_arguments)]
fn install(
    shared: &Shared,
    name: &str,
    preset: &str,
    scale: f64,
    spec: dirq_scenario::ScenarioSpec,
    scheme: Scheme,
    seed: u64,
    serving: ServingOptions,
    body: Option<&[u8]>,
    recovered: Option<RecoveredFrom>,
) -> Json {
    {
        let deployments = shared.deployments.lock().expect("deployment map");
        if deployments.contains_key(name) {
            return err_response(kind::EXISTS, &format!("deployment {name:?} already exists"));
        }
    }
    let mut cfg = spec.config(scheme, seed);
    cfg.upkeep_workers = serving.upkeep_workers.max(1);
    let info = DeploymentInfo {
        name: name.to_string(),
        preset: preset.to_string(),
        scale,
        scheme: scheme.label(),
        seed,
        nodes: cfg.n_nodes,
        epochs: cfg.epochs,
        location_enabled: cfg.location_enabled,
        serving,
        recovered,
    };
    let mut engine = Engine::new(cfg);
    if let Some(body) = body {
        if let Err(e) = engine.restore(body) {
            return err_response(kind::BAD_IMAGE, &format!("restore: {e}"));
        }
    }
    engine.enable_completed_log();
    let epoch = Arc::new(AtomicU64::new(engine.epoch()));
    let current = epoch.load(Ordering::SeqCst);
    let slot = Arc::new(Slot {
        serving: Mutex::new(Serving {
            sweep_cursor: engine.completed_next_seq(),
            engine,
            info: info.clone(),
            epoch: Arc::clone(&epoch),
            queue: VecDeque::new(),
            inflight: HashMap::new(),
            rr_round: 0,
            results: VecDeque::new(),
            next_result_seq: 0,
        }),
        info: info.clone(),
        epoch,
        mailbox: Mutex::new(VecDeque::new()),
        sched: AtomicU8::new(SCHED_IDLE),
    });
    let mut deployments = shared.deployments.lock().expect("deployment map");
    if deployments.contains_key(name) {
        // Raced another deploy of the same name; ours simply drops.
        return err_response(kind::EXISTS, &format!("deployment {name:?} already exists"));
    }
    deployments.insert(name.to_string(), slot);
    let mut ok = ok_response();
    merge_fields(&mut ok, &info.to_json(current));
    ok
}

fn handle_query(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    // Sensor types are u8s on the engine side: reject out-of-range
    // values instead of silently wrapping them.
    let stype = match num_field(request, "stype") {
        Ok(v) if v.fract() == 0.0 && (0.0..=255.0).contains(&v) => v as u8,
        Ok(v) => return bad(&format!("stype must be an integer in 0..=255, got {v}")),
        Err(e) => return e,
    };
    let (lo, hi) = match (num_field(request, "lo"), num_field(request, "hi")) {
        (Ok(lo), Ok(hi)) => (lo, hi),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    let region = match request.get("region") {
        None | Some(Json::Null) => None,
        Some(doc) => match doc.as_array() {
            Some(v) if v.len() == 4 => {
                let mut corners = [0.0; 4];
                for (slot, item) in corners.iter_mut().zip(v) {
                    match item.as_f64() {
                        Some(x) if x.is_finite() => *slot = x,
                        _ => return bad("region must be [x0, y0, x1, y1] (finite numbers)"),
                    }
                }
                Some(corners)
            }
            _ => return bad("region must be [x0, y0, x1, y1] (finite numbers)"),
        },
    };
    let is_async = match opt_field(request, "async", "a boolean", Json::as_bool) {
        Ok(v) => v.unwrap_or(false),
        Err(e) => return e,
    };
    let client = match opt_str_field(request, "client") {
        Ok(v) => v.unwrap_or_default(),
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let slot = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    if region.is_some() && !slot.info.location_enabled {
        return err_response(
            kind::UNSUPPORTED,
            &format!(
                "deployment {deployment:?} has no location extension; spatial queries unsupported"
            ),
        );
    }
    if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
        return bad("query window must satisfy lo <= hi (finite)");
    }
    let (reply_tx, reply_rx) = channel();
    round_trip(
        shared,
        &slot,
        EngineCmd::Submit(Submission { stype, lo, hi, region, client, is_async, reply: reply_tx }),
        reply_rx,
        timeout,
    )
}

fn handle_poll(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let id = match opt_u64_field(request, "id") {
        Ok(Some(v)) => v,
        Ok(None) => return bad("missing integer field \"id\""),
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let slot = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(shared, &slot, EngineCmd::Poll { id, reply: reply_tx }, reply_rx, timeout)
}

fn handle_drain(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let cursor = match opt_u64_field(request, "cursor") {
        Ok(v) => v.unwrap_or(0),
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let slot = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(shared, &slot, EngineCmd::Drain { cursor, reply: reply_tx }, reply_rx, timeout)
}

fn handle_step(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let epochs = match opt_u64_field(request, "epochs") {
        Ok(Some(v)) => v,
        Ok(None) => return bad("missing integer field \"epochs\""),
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let slot = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(shared, &slot, EngineCmd::Step { epochs, reply: reply_tx }, reply_rx, timeout)
}

fn handle_status(shared: &Shared) -> Json {
    let rows: Vec<Json> = {
        let deployments = shared.deployments.lock().expect("deployment map");
        let mut rows: Vec<(String, Json)> = deployments
            .values()
            .map(|d| (d.info.name.clone(), d.info.to_json(d.epoch.load(Ordering::SeqCst))))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows.into_iter().map(|(_, j)| j).collect()
    };
    let unrecoverable: Vec<Json> = {
        let failed = shared.unrecoverable.lock().expect("unrecoverable list");
        failed
            .iter()
            .map(|u| {
                let mut obj = Json::object();
                obj.set("name", Json::Str(u.name.clone()));
                obj.set("error", Json::Str(u.error.clone()));
                obj
            })
            .collect()
    };
    let mut ok = ok_response();
    ok.set("serving_threads", Json::from_u64(shared.serving_threads as u64));
    ok.set("deployments", Json::Arr(rows));
    ok.set("unrecoverable", Json::Arr(unrecoverable));
    ok
}

fn handle_fingerprint(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let slot = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(shared, &slot, EngineCmd::Fingerprint { reply: reply_tx }, reply_rx, timeout)
}

fn handle_snapshot(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let path = match str_field(request, "path") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let slot = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(shared, &slot, EngineCmd::SnapshotTo { path, reply: reply_tx }, reply_rx, timeout)
}

fn handle_stall(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let ms = match opt_u64_field(request, "ms") {
        Ok(Some(v)) => v.min(10_000),
        Ok(None) => return bad("missing integer field \"ms\""),
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let slot = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(shared, &slot, EngineCmd::Stall { ms, reply: reply_tx }, reply_rx, timeout)
}

// --- crash recovery -------------------------------------------------------

/// One rotating checkpoint image found by [`scan_checkpoint_dir`].
#[derive(Clone, Debug)]
pub struct CheckpointSlot {
    /// Deployment name encoded in the filename.
    pub name: String,
    /// Rotation slot index encoded in the filename.
    pub slot: u64,
    /// Full path of the image file.
    pub path: PathBuf,
    /// Parsed image header, or why this slot is unusable (torn write,
    /// bad magic, wrong format version, broken header).
    pub header: Result<ImageHeader, String>,
}

/// Parse `<name>.<slot>.dirqsnap`, splitting the slot off the *right*
/// so deployment names may themselves contain dots.
fn parse_checkpoint_filename(file: &str) -> Option<(String, u64)> {
    let stem = file.strip_suffix(IMAGE_EXTENSION)?.strip_suffix('.')?;
    let (name, slot) = stem.rsplit_once('.')?;
    if name.is_empty() {
        return None;
    }
    Some((name.to_string(), slot.parse().ok()?))
}

/// Scan `dir` for rotating checkpoint images and validate each frame.
/// Files not matching `<name>.<slot>.dirqsnap` are ignored. The result
/// is ordered name-ascending, and within a name best-candidate first:
/// valid slots by epoch (then slot index) descending, unreadable slots
/// last — so recovery tries the newest valid image and falls back in
/// order.
pub fn scan_checkpoint_dir(dir: &Path) -> io::Result<Vec<CheckpointSlot>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let file_name = entry.file_name();
        let Some((name, slot)) = parse_checkpoint_filename(&file_name.to_string_lossy()) else {
            continue;
        };
        let header = std::fs::read(entry.path())
            .map_err(|e| format!("read: {e}"))
            .and_then(|bytes| check_image(&bytes).map_err(|e| e.to_string()))
            .and_then(|doc| ImageHeader::from_json(&doc));
        found.push(CheckpointSlot { name, slot, path: entry.path(), header });
    }
    // Rank: valid beats invalid, then epoch, then slot index. Reverse
    // within a name so the best candidate sorts first.
    let rank = |s: &CheckpointSlot| match &s.header {
        Ok(h) => (1u8, h.epoch, s.slot),
        Err(_) => (0, 0, s.slot),
    };
    found.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| rank(b).cmp(&rank(a))));
    Ok(found)
}

/// The `--recover` pass: resume every deployment in `dir` from its
/// newest valid checkpoint image, falling back slot-by-slot on torn or
/// stale frames. Runs before the daemon accepts connections; a
/// deployment with no usable slot lands in `unrecoverable` (surfaced
/// via `status`) instead of failing startup. Only scan-level I/O errors
/// (e.g. the directory is missing) abort.
fn recover_from_dir(shared: &Shared, dir: &str) -> io::Result<()> {
    let mut by_name: BTreeMap<String, Vec<CheckpointSlot>> = BTreeMap::new();
    for slot in scan_checkpoint_dir(Path::new(dir))? {
        by_name.entry(slot.name.clone()).or_default().push(slot);
    }
    for (name, candidates) in by_name {
        let mut failures: Vec<String> = Vec::new();
        let mut resumed = false;
        for candidate in candidates {
            match try_resume(shared, &name, &candidate, dir) {
                Ok(()) => {
                    resumed = true;
                    break;
                }
                Err(msg) => failures.push(format!("slot {}: {msg}", candidate.slot)),
            }
        }
        if !resumed {
            shared
                .unrecoverable
                .lock()
                .expect("unrecoverable list")
                .push(Unrecoverable { name, error: failures.join("; ") });
        }
    }
    Ok(())
}

/// Resume one deployment from one checkpoint candidate. The serving
/// recipe embedded in the image header is resumed verbatim except for
/// `checkpoint_dir`, which is re-pointed at the recovery directory so
/// the resumed deployment keeps rotating its checkpoints in place.
fn try_resume(
    shared: &Shared,
    name: &str,
    candidate: &CheckpointSlot,
    dir: &str,
) -> Result<(), String> {
    let header = candidate.header.as_ref().map_err(String::clone)?;
    let (spec, scheme) = header.resolve()?;
    if spec.n_nodes != header.nodes {
        return Err(format!(
            "image header claims {} nodes but preset {:?} deploys {}",
            header.nodes, header.preset, spec.n_nodes
        ));
    }
    let mut serving = header.serving.clone().unwrap_or_default();
    if serving.checkpoint_every_epochs > 0 {
        serving.checkpoint_dir = Some(dir.to_string());
    }
    // Re-read: the scan only validated and kept the header.
    let bytes = std::fs::read(&candidate.path).map_err(|e| format!("read: {e}"))?;
    let (_, body) = parse_image(&bytes).map_err(|e| e.to_string())?;
    let recovered = RecoveredFrom { slot: candidate.slot, epoch: header.epoch };
    let response = install(
        shared,
        name,
        &header.preset,
        header.scale,
        spec,
        scheme,
        header.seed,
        serving,
        Some(body),
        Some(recovered),
    );
    if response.get("ok") == Some(&Json::Bool(true)) {
        Ok(())
    } else {
        Err(response.get("error").and_then(Json::as_str).unwrap_or("install failed").to_string())
    }
}

// --- per-deployment serving state -----------------------------------------

/// A query injected into the engine and not yet finalised. `Some` holds
/// the blocking caller's reply channel; async callers were answered at
/// injection and resolve through the results log.
type Inflight = Option<Sender<Json>>;

/// A slot's serving state: engine, admission queue, in-flight set, and
/// the bounded results log `poll`/`drain` read.
struct Serving {
    engine: Engine,
    info: DeploymentInfo,
    /// Published epoch-boundary mirror for lock-free `status` reads.
    epoch: Arc<AtomicU64>,
    /// Bounded admission queue, arrival order.
    queue: VecDeque<Submission>,
    /// Injected, not yet finalised, by query id.
    inflight: HashMap<u64, Inflight>,
    /// Rotating start index for round-robin admission.
    rr_round: u64,
    /// Cursor into the engine's completed log (internal workload
    /// completions are swept past; external ones land in `results`).
    sweep_cursor: u64,
    /// Completed external queries: `(seq, query id, outcome fields)`.
    results: VecDeque<(u64, u64, Json)>,
    /// Sequence number the next completed result will receive.
    next_result_seq: u64,
}

impl Serving {
    /// Queued + in-flight work; the slot keeps rescheduling itself
    /// while non-zero.
    fn backlog(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// Handle one command.
    fn process(&mut self, cmd: EngineCmd) {
        match cmd {
            EngineCmd::Submit(s) => {
                if self.queue.len() >= self.info.serving.queue_cap {
                    let _ = s.reply.send(err_response(
                        kind::QUEUE_FULL,
                        &format!(
                            "admission queue at capacity ({}); resubmit later",
                            self.info.serving.queue_cap
                        ),
                    ));
                } else {
                    self.queue.push_back(s);
                }
            }
            EngineCmd::Poll { id, reply } => {
                let _ = reply.send(self.poll(id));
            }
            EngineCmd::Drain { cursor, reply } => {
                let _ = reply.send(self.drain(cursor));
            }
            EngineCmd::Step { epochs, reply } => {
                // An explicit step never admits queued submissions —
                // they inject after it, whenever they arrived.
                for _ in 0..epochs {
                    self.engine.step_epoch();
                    self.post_step();
                }
                let mut ok = ok_response();
                ok.set("epoch", Json::from_u64(self.engine.epoch()));
                let _ = reply.send(ok);
            }
            EngineCmd::Fingerprint { reply } => {
                let mut ok = ok_response();
                ok.set("epoch", Json::from_u64(self.engine.epoch()));
                ok.set("fingerprint", Json::Str(fingerprint_hex(self.engine.state_fingerprint())));
                let _ = reply.send(ok);
            }
            EngineCmd::SnapshotTo { path, reply } => {
                let _ = reply.send(write_snapshot(&self.engine, &self.info, &path));
            }
            EngineCmd::Stall { ms, reply } => {
                std::thread::sleep(Duration::from_millis(ms));
                let mut ok = ok_response();
                ok.set("epoch", Json::from_u64(self.engine.epoch()));
                let _ = reply.send(ok);
            }
        }
    }

    /// Draw one admission round from the queue under the deployment's
    /// policy.
    fn admit(&mut self) -> Vec<Submission> {
        let cap = self.info.serving.admit_per_epoch;
        let take = if cap == 0 { self.queue.len() } else { cap.min(self.queue.len()) };
        if take == 0 {
            return Vec::new();
        }
        match self.info.serving.policy {
            AdmissionPolicy::Fifo => self.queue.drain(..take).collect(),
            AdmissionPolicy::RoundRobin => {
                // One per client per turn, clients visited in sorted-name
                // order; the start position rotates round-by-round so the
                // alphabetically first client is not structurally ahead.
                let clients: Vec<String> = self
                    .queue
                    .iter()
                    .map(|s| s.client.clone())
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                let start = (self.rr_round % clients.len() as u64) as usize;
                self.rr_round = self.rr_round.wrapping_add(1);
                let mut admitted = Vec::with_capacity(take);
                let mut turn = 0usize;
                while admitted.len() < take {
                    let client = &clients[(start + turn) % clients.len()];
                    turn += 1;
                    if let Some(pos) = self.queue.iter().position(|s| &s.client == client) {
                        admitted.push(self.queue.remove(pos).expect("position just found"));
                    }
                }
                admitted
            }
        }
    }

    /// Admit one round and inject it, ordered by content (client tag as
    /// tiebreak) so the trajectory is arrival-order-invariant. Async
    /// submissions are answered here with their assigned id.
    fn admit_and_inject(&mut self) {
        let mut admitted = self.admit();
        if admitted.is_empty() {
            return;
        }
        admitted.sort_by(|a, b| a.key().cmp(&b.key()).then_with(|| a.client.cmp(&b.client)));
        let boundary = self.engine.epoch();
        for s in admitted {
            let region = s.region.map(|[x0, y0, x1, y1]| {
                Rect::new(Position { x: x0, y: y0 }, Position { x: x1, y: y1 })
            });
            let id = self.engine.submit_external_query(SensorType(s.stype), s.lo, s.hi, region);
            if s.is_async {
                let mut ok = ok_response();
                ok.set("id", Json::from_u64(id.0));
                ok.set("epoch", Json::from_u64(boundary));
                let _ = s.reply.send(ok);
                self.inflight.insert(id.0, None);
            } else {
                self.inflight.insert(id.0, Some(s.reply));
            }
        }
    }

    /// After every `step_epoch`, wherever it happens: publish the epoch,
    /// sweep newly finalised queries out of the engine's completed log
    /// (blocking callers are answered, everything external lands in the
    /// results log), and maybe write an auto-checkpoint.
    fn post_step(&mut self) {
        let now = self.engine.epoch();
        self.epoch.store(now, Ordering::SeqCst);
        let mut finished: Vec<(u64, Json)> = Vec::new();
        for (seq, done) in self.engine.completed_since(self.sweep_cursor) {
            self.sweep_cursor = seq + 1;
            // The engine also finalises its own workload queries; only
            // externally submitted ids leave the sweep.
            if self.inflight.contains_key(&done.outcome.id.0) {
                finished.push((done.outcome.id.0, outcome_fields(done)));
            }
        }
        for (id, fields) in finished {
            if let Some(Some(reply)) = self.inflight.remove(&id) {
                let mut ok = ok_response();
                merge_fields(&mut ok, &fields);
                let _ = reply.send(ok);
            }
            if self.results.len() == RESULTS_LOG_CAP {
                self.results.pop_front();
            }
            self.results.push_back((self.next_result_seq, id, fields));
            self.next_result_seq += 1;
        }
        let every = self.info.serving.checkpoint_every_epochs;
        if every > 0 && now.is_multiple_of(every) {
            self.write_checkpoint(now / every % CHECKPOINT_SLOTS);
        }
    }

    /// Write one rotating checkpoint image. Failures are logged, never
    /// fatal — checkpointing is a recovery aid, not a serving dependency.
    fn write_checkpoint(&self, slot: u64) {
        let dir = self.info.serving.checkpoint_dir.as_deref().unwrap_or(".");
        let path = format!("{dir}/{name}.{slot}.{IMAGE_EXTENSION}", name = self.info.name);
        let result = write_snapshot(&self.engine, &self.info, &path);
        if result.get("ok") != Some(&Json::Bool(true)) {
            let why = result.get("error").and_then(Json::as_str).unwrap_or("unknown error");
            eprintln!("dirqd: checkpoint {path:?} failed: {why}");
        }
    }

    fn poll(&self, id: u64) -> Json {
        if let Some((_, _, fields)) = self.results.iter().rev().find(|(_, rid, _)| *rid == id) {
            let mut ok = ok_response();
            ok.set("done", Json::Bool(true));
            merge_fields(&mut ok, fields);
            return ok;
        }
        if self.inflight.contains_key(&id) {
            let mut ok = ok_response();
            ok.set("done", Json::Bool(false));
            ok.set("epoch", Json::from_u64(self.engine.epoch()));
            return ok;
        }
        err_response(kind::NOT_FOUND, &format!("unknown or expired query id {id}"))
    }

    fn drain(&self, cursor: u64) -> Json {
        let first_seq = self.next_result_seq - self.results.len() as u64;
        let skip = cursor.saturating_sub(first_seq).min(self.results.len() as u64) as usize;
        let mut out = Vec::new();
        let mut next_cursor = cursor.max(first_seq).min(self.next_result_seq);
        for (seq, _, fields) in self.results.iter().skip(skip).take(DRAIN_MAX_RESULTS) {
            let mut item = fields.clone();
            item.set("seq", Json::from_u64(*seq));
            out.push(item);
            next_cursor = seq + 1;
        }
        let mut ok = ok_response();
        ok.set("results", Json::Arr(out));
        ok.set("cursor", Json::from_u64(next_cursor));
        ok.set("pending", Json::from_u64(self.backlog() as u64));
        ok.set("epoch", Json::from_u64(self.engine.epoch()));
        ok
    }
}

/// Serialize, frame and persist a snapshot image. The header embeds the
/// deployment's serving recipe so `--recover` resumes it under the
/// knobs it was running with.
fn write_snapshot(engine: &Engine, info: &DeploymentInfo, path: &str) -> Json {
    let header = ImageHeader {
        preset: info.preset.clone(),
        scale: info.scale,
        scheme: info.scheme.clone(),
        seed: info.seed,
        epoch: engine.epoch(),
        nodes: info.nodes,
        serving: Some(info.serving.clone()),
    };
    let image = frame_image(&header.to_json(), &engine.snapshot());
    if let Err(e) = std::fs::write(path, &image) {
        return err_response(kind::IO, &format!("write {path:?}: {e}"));
    }
    let mut ok = ok_response();
    ok.set("path", Json::Str(path.to_string()));
    ok.set("bytes", Json::from_u64(image.len() as u64));
    ok.set("epoch", Json::from_u64(engine.epoch()));
    ok.set("fingerprint", Json::Str(fingerprint_hex(engine.state_fingerprint())));
    ok
}

/// Render one completed query's result fields (no `ok` envelope — the
/// caller wraps for `query`/`poll` replies or embeds for `drain`).
fn outcome_fields(done: &CompletedQuery) -> Json {
    let o = &done.outcome;
    let mut fields = Json::object();
    fields.set("id", Json::from_u64(o.id.0));
    fields.set("epoch", Json::from_u64(o.epoch));
    fields.set("answered_epoch", Json::from_u64(done.answered_epoch));
    fields.set("epochs_to_answer", Json::from_u64(done.answered_epoch.saturating_sub(o.epoch)));
    fields.set("true_sources", Json::from_u64(o.true_sources as u64));
    fields.set("sources_reached", Json::from_u64(o.sources_reached as u64));
    fields.set("should_receive", Json::from_u64(o.should_receive as u64));
    fields.set("received_should", Json::from_u64(o.received_should as u64));
    fields.set("received_should_not", Json::from_u64(o.received_should_not as u64));
    fields.set("recall", Json::Num(o.source_recall()));
    fields.set("tx", Json::from_u64(done.tx));
    fields.set("rx", Json::from_u64(done.rx));
    fields
}

/// Copy every field of `src` (an object) onto `dst`.
fn merge_fields(dst: &mut Json, src: &Json) {
    if let Json::Obj(fields) = src {
        for (k, v) in fields {
            dst.set(k, v.clone());
        }
    }
}

/// The protocol scheme label of an engine's configured protocol — a
/// display helper for the CLI.
pub fn protocol_label(p: Protocol) -> &'static str {
    match p {
        Protocol::Dirq => "dirq",
        Protocol::Flooding => "flooding",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(name: &str, slot: u64, epoch: u64, dir: &Path) -> PathBuf {
        let header = ImageHeader {
            preset: "p".into(),
            scale: 1.0,
            scheme: "s".into(),
            seed: 7,
            epoch,
            nodes: 3,
            serving: None,
        };
        let path = dir.join(format!("{name}.{slot}.{IMAGE_EXTENSION}"));
        std::fs::write(&path, frame_image(&header.to_json(), b"body")).expect("write image");
        path
    }

    #[test]
    fn checkpoint_filenames_split_slot_off_the_right() {
        assert_eq!(parse_checkpoint_filename("a.0.dirqsnap"), Some(("a".into(), 0)));
        assert_eq!(parse_checkpoint_filename("a.b.12.dirqsnap"), Some(("a.b".into(), 12)));
        assert_eq!(parse_checkpoint_filename("a.dirqsnap"), None, "no slot component");
        assert_eq!(parse_checkpoint_filename(".0.dirqsnap"), None, "empty name");
        assert_eq!(parse_checkpoint_filename("a.x.dirqsnap"), None, "non-numeric slot");
        assert_eq!(parse_checkpoint_filename("a.0.snap"), None, "wrong extension");
    }

    #[test]
    fn scan_orders_candidates_newest_valid_first() {
        let dir = std::env::temp_dir().join(format!("dirqd-scan-{:x}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        // "a": slot 0 newer than slot 1 (rotation wrapped).
        image("a", 0, 40, &dir);
        image("a", 1, 20, &dir);
        // "b": newest slot torn mid-write; older slot intact.
        let torn = image("b", 1, 60, &dir);
        let bytes = std::fs::read(&torn).expect("read image");
        std::fs::write(&torn, &bytes[..bytes.len() / 2]).expect("truncate image");
        image("b", 0, 30, &dir);
        std::fs::write(dir.join("notes.txt"), b"ignored").expect("write stray file");

        let slots = scan_checkpoint_dir(&dir).expect("scan");
        let order: Vec<(String, u64, bool)> =
            slots.iter().map(|s| (s.name.clone(), s.slot, s.header.is_ok())).collect();
        assert_eq!(
            order,
            vec![
                ("a".into(), 0, true),
                ("a".into(), 1, true),
                ("b".into(), 0, true),
                ("b".into(), 1, false),
            ],
            "valid slots epoch-descending, torn slot last"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
