//! The daemon: named live deployments behind a TCP protocol endpoint.
//!
//! Each deployment owns one [`Engine`] on a dedicated thread, driven by
//! a command channel. Connection handlers never touch an engine
//! directly — they translate protocol lines into commands and wait (with
//! a deadline) for the engine thread's reply, so every deployment
//! processes exactly one command stream in a deterministic order and a
//! wedged deployment costs its caller a typed `timeout` error, not a
//! hung connection.
//!
//! ## The serving loop
//!
//! External queries pass through a per-deployment **admission queue**
//! (bounded at [`ServingOptions::queue_cap`]; beyond it submissions are
//! rejected with `queue_full`). While any query is queued or in flight
//! the engine thread runs one epoch per iteration: admit a scheduling
//! round from the queue (policy `fifo` or per-client round-robin),
//! inject the round ordered **by content** (sensor type, window bounds,
//! region, client tag) rather than arrival time, step one epoch, sweep
//! completions, then service whatever read-only commands arrived in the
//! meantime. Blocking queries reply at completion; `async` queries reply
//! with their id at injection and resolve later through `poll`/`drain`.
//!
//! Because every admission round is injected content-ordered, a fixed
//! sequence of barriered rounds drives the engine along a reproducible
//! trajectory regardless of socket scheduling, submission policy, or
//! when results are polled — the property the load generator's
//! fingerprint checks pin.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dirq_core::{CompletedQuery, Engine, Protocol};
use dirq_data::SensorType;
use dirq_net::{Position, Rect};
use dirq_scenario::Scheme;
use dirq_sim::json::Json;
use dirq_sim::snap::{frame_image, parse_image};

use crate::protocol::{
    err_response, fingerprint_hex, kind, ok_response, read_line, request_timeout,
    resolve_deployment, write_line, ImageHeader,
};

/// Default admission-queue bound when `deploy` doesn't set `queue_cap`.
pub const DEFAULT_QUEUE_CAP: usize = 4096;

/// Most results one `drain` response returns (the client loops).
pub const DRAIN_MAX_RESULTS: usize = 512;

/// Completed external results retained for `poll`/`drain` before the
/// oldest are evicted.
pub const RESULTS_LOG_CAP: usize = 65_536;

/// Rotating auto-checkpoint slots per deployment.
pub const CHECKPOINT_SLOTS: u64 = 2;

/// How query submissions are drawn from the admission queue at each
/// epoch boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Arrival order across all clients.
    Fifo,
    /// One per client per turn, clients visited in sorted-name order
    /// from a start position that rotates each round, so no client name
    /// is structurally favoured.
    RoundRobin,
}

impl AdmissionPolicy {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::RoundRobin => "rr",
        }
    }

    /// Parse a wire label.
    pub fn parse(s: &str) -> Option<AdmissionPolicy> {
        match s {
            "fifo" => Some(AdmissionPolicy::Fifo),
            "rr" => Some(AdmissionPolicy::RoundRobin),
            _ => None,
        }
    }
}

/// Per-deployment serving knobs, set at `deploy`/`restore` time.
#[derive(Clone, Debug)]
pub struct ServingOptions {
    /// Admission scheduling policy.
    pub policy: AdmissionPolicy,
    /// Admission-queue bound; `0` rejects every submission (useful as a
    /// deterministic `queue_full` probe).
    pub queue_cap: usize,
    /// Submissions admitted per epoch boundary; `0` admits everything
    /// waiting.
    pub admit_per_epoch: usize,
    /// Auto-checkpoint period in epochs; `0` disables.
    pub checkpoint_every_epochs: u64,
    /// Directory rotating checkpoint images are written into (required
    /// when `checkpoint_every_epochs > 0`).
    pub checkpoint_dir: Option<String>,
    /// Intra-engine protocol-upkeep workers
    /// ([`dirq_core::ScenarioConfig::upkeep_workers`]); never affects
    /// results, only epoch wall time.
    pub upkeep_workers: usize,
}

impl Default for ServingOptions {
    fn default() -> ServingOptions {
        ServingOptions {
            policy: AdmissionPolicy::Fifo,
            queue_cap: DEFAULT_QUEUE_CAP,
            admit_per_epoch: 0,
            checkpoint_every_epochs: 0,
            checkpoint_dir: None,
            upkeep_workers: 1,
        }
    }
}

/// One query waiting in the admission queue.
struct Submission {
    stype: u8,
    lo: f64,
    hi: f64,
    region: Option<[f64; 4]>,
    /// Client tag for round-robin scheduling (empty when the request
    /// carried none).
    client: String,
    /// Async submissions get their id at injection; blocking ones get
    /// the full outcome at completion.
    is_async: bool,
    reply: Sender<Json>,
}

impl Submission {
    /// Content ordering key — injection order within an admission round
    /// must not depend on socket arrival time.
    fn key(&self) -> (u8, u64, u64, u8, [u64; 4]) {
        let region_bits = self.region.map_or([0; 4], |r| r.map(f64::to_bits));
        (
            self.stype,
            self.lo.to_bits(),
            self.hi.to_bits(),
            u8::from(self.region.is_some()),
            region_bits,
        )
    }
}

/// Commands a connection handler can send to an engine thread.
enum EngineCmd {
    Submit(Submission),
    Poll {
        id: u64,
        reply: Sender<Json>,
    },
    Drain {
        cursor: u64,
        reply: Sender<Json>,
    },
    Step {
        epochs: u64,
        reply: Sender<Json>,
    },
    Fingerprint {
        reply: Sender<Json>,
    },
    SnapshotTo {
        path: String,
        reply: Sender<Json>,
    },
    /// Diagnostics: occupy the engine thread for `ms` (bounded) — the
    /// deterministic wedge the timeout tests use.
    Stall {
        ms: u64,
        reply: Sender<Json>,
    },
    Stop,
}

/// Static facts about a deployment, shared with `status` handlers.
#[derive(Clone)]
pub struct DeploymentInfo {
    /// Deployment name (the protocol handle).
    pub name: String,
    /// Registry preset it was built from.
    pub preset: String,
    /// Epoch-budget scale applied to the preset.
    pub scale: f64,
    /// Scheme label.
    pub scheme: String,
    /// Engine seed.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// The preset's epoch budget (the daemon may step past it).
    pub epochs: u64,
    /// Whether nodes carry positions (spatially scoped queries allowed).
    pub location_enabled: bool,
    /// Serving knobs this deployment was installed with.
    pub serving: ServingOptions,
}

impl DeploymentInfo {
    fn to_json(&self, epoch: u64) -> Json {
        let mut obj = Json::object();
        obj.set("name", Json::Str(self.name.clone()));
        obj.set("preset", Json::Str(self.preset.clone()));
        obj.set("scale", Json::Num(self.scale));
        obj.set("scheme", Json::Str(self.scheme.clone()));
        obj.set("seed", Json::from_u64(self.seed));
        obj.set("nodes", Json::from_u64(self.nodes as u64));
        obj.set("epochs", Json::from_u64(self.epochs));
        obj.set("epoch", Json::from_u64(epoch));
        obj.set("policy", Json::Str(self.serving.policy.label().to_string()));
        obj.set("queue_cap", Json::from_u64(self.serving.queue_cap as u64));
        obj.set("admit_per_epoch", Json::from_u64(self.serving.admit_per_epoch as u64));
        obj.set("checkpoint_every_epochs", Json::from_u64(self.serving.checkpoint_every_epochs));
        obj.set("upkeep_workers", Json::from_u64(self.serving.upkeep_workers as u64));
        obj
    }
}

struct Deployment {
    info: DeploymentInfo,
    /// Last epoch boundary the engine thread published.
    epoch: Arc<AtomicU64>,
    tx: Sender<EngineCmd>,
    thread: Option<JoinHandle<()>>,
}

struct Shared {
    deployments: Mutex<HashMap<String, Deployment>>,
    shutting_down: AtomicBool,
}

/// A running daemon bound to a local TCP port.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Daemon {
    /// Bind to `addr` (use port 0 for an ephemeral port; see
    /// [`Daemon::local_addr`]).
    pub fn bind(addr: &str) -> io::Result<Daemon> {
        Ok(Daemon {
            listener: TcpListener::bind(addr)?,
            shared: Arc::new(Shared {
                deployments: Mutex::new(HashMap::new()),
                shutting_down: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Bind and serve on a background thread — the in-process form the
    /// load generator and the integration tests use. Returns the bound
    /// address and the serving thread's handle (joins after `shutdown`).
    pub fn spawn(addr: &str) -> io::Result<(SocketAddr, JoinHandle<io::Result<()>>)> {
        let daemon = Daemon::bind(addr)?;
        let local = daemon.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("dirqd-accept".into())
            .spawn(move || daemon.serve())
            .expect("spawn daemon thread");
        Ok((local, handle))
    }

    /// Serve until a client issues `shutdown`. Blocks; run on its own
    /// thread for in-process use (see the loadgen and the tests).
    pub fn serve(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        for conn in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &shared, addr);
            });
        }
        // Join every engine thread so serve() returning means the
        // daemon's state is fully torn down.
        let mut deployments = self.shared.deployments.lock().expect("deployment map");
        for (_, mut d) in deployments.drain() {
            let _ = d.tx.send(EngineCmd::Stop);
            if let Some(t) = d.thread.take() {
                let _ = t.join();
            }
        }
        Ok(())
    }
}

/// One client connection: a request/response loop over protocol lines.
fn handle_connection(
    stream: TcpStream,
    shared: &Shared,
    daemon_addr: SocketAddr,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let request = match read_line(&mut reader) {
            Ok(Some(doc)) => doc,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Report the broken line and drop the connection — the
                // stream may be desynchronised.
                let _ = write_line(&mut writer, &err_response(kind::BAD_LINE, &e.to_string()));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let cmd = request.get("cmd").and_then(Json::as_str).unwrap_or_default().to_string();
        let response = match cmd.as_str() {
            "deploy" => handle_deploy(&request, shared),
            "query" => handle_query(&request, shared),
            "poll" => handle_poll(&request, shared),
            "drain" => handle_drain(&request, shared),
            "step" => handle_step(&request, shared),
            "status" => handle_status(shared),
            "fingerprint" => handle_fingerprint(&request, shared),
            "snapshot" => handle_snapshot(&request, shared),
            "restore" => handle_restore(&request, shared),
            "debug_stall" => handle_stall(&request, shared),
            "shutdown" => {
                write_line(&mut writer, &ok_response())?;
                initiate_shutdown(shared, daemon_addr);
                return Ok(());
            }
            "" => err_response(kind::BAD_REQUEST, "missing \"cmd\" field"),
            other => err_response(kind::BAD_REQUEST, &format!("unknown command {other:?}")),
        };
        write_line(&mut writer, &response)?;
    }
}

/// Flag the daemon as stopping and wake the accept loop with a
/// throwaway connection so `serve` observes the flag.
fn initiate_shutdown(shared: &Shared, daemon_addr: SocketAddr) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    if let Ok(s) = TcpStream::connect(daemon_addr) {
        drop(s);
    }
}

fn bad(msg: &str) -> Json {
    err_response(kind::BAD_REQUEST, msg)
}

fn str_field(doc: &Json, key: &str) -> Result<String, Json> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(&format!("missing string field {key:?}")))
}

fn num_field(doc: &Json, key: &str) -> Result<f64, Json> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(&format!("missing numeric field {key:?}")))
}

/// An optional field that must be the right type *when present* —
/// absent and `null` mean "default", anything else mistyped is a typed
/// error rather than a silent fallback.
fn opt_field<T>(
    doc: &Json,
    key: &str,
    expect: &str,
    get: impl Fn(&Json) -> Option<T>,
) -> Result<Option<T>, Json> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => get(v).map(Some).ok_or_else(|| bad(&format!("{key} must be {expect}"))),
    }
}

fn opt_u64_field(doc: &Json, key: &str) -> Result<Option<u64>, Json> {
    opt_field(doc, key, "a non-negative integer", Json::as_u64)
}

fn opt_str_field(doc: &Json, key: &str) -> Result<Option<String>, Json> {
    opt_field(doc, key, "a string", |v| v.as_str().map(str::to_string))
}

/// Parse the serving knobs a `deploy`/`restore` request may carry.
fn serving_options(request: &Json) -> Result<ServingOptions, Json> {
    let mut opts = ServingOptions::default();
    if let Some(label) = opt_str_field(request, "policy")? {
        opts.policy = AdmissionPolicy::parse(&label)
            .ok_or_else(|| bad(&format!("unknown admission policy {label:?} (fifo|rr)")))?;
    }
    if let Some(cap) = opt_u64_field(request, "queue_cap")? {
        opts.queue_cap = usize::try_from(cap).map_err(|_| bad("queue_cap out of range"))?;
    }
    if let Some(n) = opt_u64_field(request, "admit_per_epoch")? {
        opts.admit_per_epoch =
            usize::try_from(n).map_err(|_| bad("admit_per_epoch out of range"))?;
    }
    if let Some(every) = opt_u64_field(request, "checkpoint_every_epochs")? {
        opts.checkpoint_every_epochs = every;
    }
    opts.checkpoint_dir = opt_str_field(request, "checkpoint_dir")?;
    if opts.checkpoint_every_epochs > 0 && opts.checkpoint_dir.is_none() {
        return Err(bad("checkpoint_every_epochs requires checkpoint_dir"));
    }
    if let Some(w) = opt_u64_field(request, "upkeep_workers")? {
        opts.upkeep_workers =
            usize::try_from(w).map_err(|_| bad("upkeep_workers out of range"))?.max(1);
    }
    Ok(opts)
}

/// Clone the channel/epoch handles of a deployment under the map lock.
fn lookup(
    shared: &Shared,
    name: &str,
) -> Result<(DeploymentInfo, Arc<AtomicU64>, Sender<EngineCmd>), Json> {
    let deployments = shared.deployments.lock().expect("deployment map");
    deployments
        .get(name)
        .map(|d| (d.info.clone(), Arc::clone(&d.epoch), d.tx.clone()))
        .ok_or_else(|| err_response(kind::NOT_FOUND, &format!("no deployment named {name:?}")))
}

/// Send `cmd` and wait for the engine thread's reply, bounded by
/// `timeout` — a wedged deployment yields a typed `timeout` error
/// instead of hanging the connection handler.
fn round_trip(
    tx: &Sender<EngineCmd>,
    cmd: EngineCmd,
    rx: Receiver<Json>,
    timeout: Duration,
) -> Json {
    if tx.send(cmd).is_err() {
        return err_response(kind::SHUTDOWN, "deployment is shutting down");
    }
    match rx.recv_timeout(timeout) {
        Ok(doc) => doc,
        Err(RecvTimeoutError::Timeout) => err_response(
            kind::TIMEOUT,
            &format!("deployment did not answer within {}ms", timeout.as_millis()),
        ),
        Err(RecvTimeoutError::Disconnected) => {
            err_response(kind::SHUTDOWN, "deployment engine stopped")
        }
    }
}

fn handle_deploy(request: &Json, shared: &Shared) -> Json {
    let name = match str_field(request, "name") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let preset = match str_field(request, "preset") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let scale = match opt_field(request, "scale", "a number", Json::as_f64) {
        Ok(v) => v.unwrap_or(1.0),
        Err(e) => return e,
    };
    let scheme_label = match opt_str_field(request, "scheme") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (spec, scheme) = match resolve_deployment(&preset, scale, scheme_label.as_deref()) {
        Ok(v) => v,
        Err(msg) => return deployment_resolution_error(&msg),
    };
    // Seeds are u64s: parse losslessly, and reject (rather than round)
    // negative or fractional values.
    let seed = match opt_u64_field(request, "seed") {
        Ok(v) => v.unwrap_or(spec.seed),
        Err(e) => return e,
    };
    let serving = match serving_options(request) {
        Ok(v) => v,
        Err(e) => return e,
    };
    install(shared, &name, &preset, scale, spec, scheme, seed, serving, None)
}

/// [`resolve_deployment`] reports both lookup misses and bad parameters
/// as strings; map the lookup misses to `not_found`.
fn deployment_resolution_error(msg: &str) -> Json {
    if msg.starts_with("unknown") {
        err_response(kind::NOT_FOUND, msg)
    } else {
        bad(msg)
    }
}

fn handle_restore(request: &Json, shared: &Shared) -> Json {
    let name = match str_field(request, "name") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let path = match str_field(request, "path") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let serving = match serving_options(request) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => return err_response(kind::IO, &format!("read {path:?}: {e}")),
    };
    let (header_json, body) = match parse_image(&bytes) {
        Ok(v) => v,
        Err(e) => return err_response(kind::BAD_IMAGE, &format!("parse {path:?}: {e}")),
    };
    let header = match ImageHeader::from_json(&header_json) {
        Ok(h) => h,
        Err(msg) => return err_response(kind::BAD_IMAGE, &msg),
    };
    let (spec, scheme) = match header.resolve() {
        Ok(v) => v,
        Err(msg) => return err_response(kind::BAD_IMAGE, &msg),
    };
    if spec.n_nodes != header.nodes {
        return err_response(
            kind::BAD_IMAGE,
            &format!(
                "image header claims {} nodes but preset {:?} deploys {}",
                header.nodes, header.preset, spec.n_nodes
            ),
        );
    }
    install(
        shared,
        &name,
        &header.preset,
        header.scale,
        spec,
        scheme,
        header.seed,
        serving,
        Some(body),
    )
}

/// Build the engine (outside the map lock — deployment can take a
/// while), optionally overlay a snapshot body, and register the engine
/// thread under `name`.
#[allow(clippy::too_many_arguments)]
fn install(
    shared: &Shared,
    name: &str,
    preset: &str,
    scale: f64,
    spec: dirq_scenario::ScenarioSpec,
    scheme: Scheme,
    seed: u64,
    serving: ServingOptions,
    body: Option<&[u8]>,
) -> Json {
    {
        let deployments = shared.deployments.lock().expect("deployment map");
        if deployments.contains_key(name) {
            return err_response(kind::EXISTS, &format!("deployment {name:?} already exists"));
        }
    }
    let mut cfg = spec.config(scheme, seed);
    cfg.upkeep_workers = serving.upkeep_workers.max(1);
    let info = DeploymentInfo {
        name: name.to_string(),
        preset: preset.to_string(),
        scale,
        scheme: scheme.label(),
        seed,
        nodes: cfg.n_nodes,
        epochs: cfg.epochs,
        location_enabled: cfg.location_enabled,
        serving,
    };
    let mut engine = Engine::new(cfg);
    if let Some(body) = body {
        if let Err(e) = engine.restore(body) {
            return err_response(kind::BAD_IMAGE, &format!("restore: {e}"));
        }
    }
    engine.enable_completed_log();
    let epoch = Arc::new(AtomicU64::new(engine.epoch()));
    let (tx, rx) = channel();
    let thread_epoch = Arc::clone(&epoch);
    let thread_info = info.clone();
    let thread = std::thread::Builder::new()
        .name(format!("dirqd-{name}"))
        .spawn(move || engine_thread(engine, thread_info, thread_epoch, rx))
        .expect("spawn engine thread");
    let current = epoch.load(Ordering::SeqCst);
    let mut deployments = shared.deployments.lock().expect("deployment map");
    if deployments.contains_key(name) {
        // Raced another deploy of the same name; tear ours down.
        drop(deployments);
        let _ = tx.send(EngineCmd::Stop);
        let _ = thread.join();
        return err_response(kind::EXISTS, &format!("deployment {name:?} already exists"));
    }
    let response = info.to_json(current);
    deployments.insert(name.to_string(), Deployment { info, epoch, tx, thread: Some(thread) });
    let mut ok = ok_response();
    let Json::Obj(fields) = response else { unreachable!("info renders an object") };
    for (k, v) in fields {
        ok.set(&k, v);
    }
    ok
}

fn handle_query(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    // Sensor types are u8s on the engine side: reject out-of-range
    // values instead of silently wrapping them.
    let stype = match num_field(request, "stype") {
        Ok(v) if v.fract() == 0.0 && (0.0..=255.0).contains(&v) => v as u8,
        Ok(v) => return bad(&format!("stype must be an integer in 0..=255, got {v}")),
        Err(e) => return e,
    };
    let (lo, hi) = match (num_field(request, "lo"), num_field(request, "hi")) {
        (Ok(lo), Ok(hi)) => (lo, hi),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    let region = match request.get("region") {
        None | Some(Json::Null) => None,
        Some(doc) => match doc.as_array() {
            Some(v) if v.len() == 4 => {
                let mut corners = [0.0; 4];
                for (slot, item) in corners.iter_mut().zip(v) {
                    match item.as_f64() {
                        Some(x) if x.is_finite() => *slot = x,
                        _ => return bad("region must be [x0, y0, x1, y1] (finite numbers)"),
                    }
                }
                Some(corners)
            }
            _ => return bad("region must be [x0, y0, x1, y1] (finite numbers)"),
        },
    };
    let is_async = match opt_field(request, "async", "a boolean", Json::as_bool) {
        Ok(v) => v.unwrap_or(false),
        Err(e) => return e,
    };
    let client = match opt_str_field(request, "client") {
        Ok(v) => v.unwrap_or_default(),
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let (info, _, tx) = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    if region.is_some() && !info.location_enabled {
        return err_response(
            kind::UNSUPPORTED,
            &format!(
                "deployment {deployment:?} has no location extension; spatial queries unsupported"
            ),
        );
    }
    if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
        return bad("query window must satisfy lo <= hi (finite)");
    }
    let (reply_tx, reply_rx) = channel();
    round_trip(
        &tx,
        EngineCmd::Submit(Submission { stype, lo, hi, region, client, is_async, reply: reply_tx }),
        reply_rx,
        timeout,
    )
}

fn handle_poll(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let id = match opt_u64_field(request, "id") {
        Ok(Some(v)) => v,
        Ok(None) => return bad("missing integer field \"id\""),
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let (_, _, tx) = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(&tx, EngineCmd::Poll { id, reply: reply_tx }, reply_rx, timeout)
}

fn handle_drain(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let cursor = match opt_u64_field(request, "cursor") {
        Ok(v) => v.unwrap_or(0),
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let (_, _, tx) = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(&tx, EngineCmd::Drain { cursor, reply: reply_tx }, reply_rx, timeout)
}

fn handle_step(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let epochs = match opt_u64_field(request, "epochs") {
        Ok(Some(v)) => v,
        Ok(None) => return bad("missing integer field \"epochs\""),
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let (_, _, tx) = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(&tx, EngineCmd::Step { epochs, reply: reply_tx }, reply_rx, timeout)
}

fn handle_status(shared: &Shared) -> Json {
    let deployments = shared.deployments.lock().expect("deployment map");
    let mut rows: Vec<(String, Json)> = deployments
        .values()
        .map(|d| (d.info.name.clone(), d.info.to_json(d.epoch.load(Ordering::SeqCst))))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let mut ok = ok_response();
    ok.set("deployments", Json::Arr(rows.into_iter().map(|(_, j)| j).collect()));
    ok
}

fn handle_fingerprint(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let (_, _, tx) = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(&tx, EngineCmd::Fingerprint { reply: reply_tx }, reply_rx, timeout)
}

fn handle_snapshot(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let path = match str_field(request, "path") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let (_, _, tx) = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(&tx, EngineCmd::SnapshotTo { path, reply: reply_tx }, reply_rx, timeout)
}

fn handle_stall(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let ms = match opt_u64_field(request, "ms") {
        Ok(Some(v)) => v.min(10_000),
        Ok(None) => return bad("missing integer field \"ms\""),
        Err(e) => return e,
    };
    let timeout = match request_timeout(request) {
        Ok(v) => v,
        Err(msg) => return bad(&msg),
    };
    let (_, _, tx) = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(&tx, EngineCmd::Stall { ms, reply: reply_tx }, reply_rx, timeout)
}

// --- the engine thread ----------------------------------------------------

/// A query injected into the engine and not yet finalised. `Some` holds
/// the blocking caller's reply channel; async callers were answered at
/// injection and resolve through the results log.
type Inflight = Option<Sender<Json>>;

/// The engine thread's serving state: admission queue, in-flight set,
/// and the bounded results log `poll`/`drain` read.
struct Serving {
    engine: Engine,
    info: DeploymentInfo,
    /// Published epoch-boundary mirror for lock-free `status` reads.
    epoch: Arc<AtomicU64>,
    /// Bounded admission queue, arrival order.
    queue: VecDeque<Submission>,
    /// Injected, not yet finalised, by query id.
    inflight: HashMap<u64, Inflight>,
    /// Rotating start index for round-robin admission.
    rr_round: u64,
    /// Cursor into the engine's completed log (internal workload
    /// completions are swept past; external ones land in `results`).
    sweep_cursor: u64,
    /// Completed external queries: `(seq, query id, outcome fields)`.
    results: VecDeque<(u64, u64, Json)>,
    /// Sequence number the next completed result will receive.
    next_result_seq: u64,
}

impl Serving {
    /// Queued + in-flight work; the thread steps epochs while non-zero.
    fn backlog(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// Handle one command; `true` means stop.
    fn process(&mut self, cmd: EngineCmd) -> bool {
        match cmd {
            EngineCmd::Submit(s) => {
                if self.queue.len() >= self.info.serving.queue_cap {
                    let _ = s.reply.send(err_response(
                        kind::QUEUE_FULL,
                        &format!(
                            "admission queue at capacity ({}); resubmit later",
                            self.info.serving.queue_cap
                        ),
                    ));
                } else {
                    self.queue.push_back(s);
                }
            }
            EngineCmd::Poll { id, reply } => {
                let _ = reply.send(self.poll(id));
            }
            EngineCmd::Drain { cursor, reply } => {
                let _ = reply.send(self.drain(cursor));
            }
            EngineCmd::Step { epochs, reply } => {
                // An explicit step never admits queued submissions —
                // they inject after it, whenever they arrived.
                for _ in 0..epochs {
                    self.engine.step_epoch();
                    self.post_step();
                }
                let mut ok = ok_response();
                ok.set("epoch", Json::from_u64(self.engine.epoch()));
                let _ = reply.send(ok);
            }
            EngineCmd::Fingerprint { reply } => {
                let mut ok = ok_response();
                ok.set("epoch", Json::from_u64(self.engine.epoch()));
                ok.set("fingerprint", Json::Str(fingerprint_hex(self.engine.state_fingerprint())));
                let _ = reply.send(ok);
            }
            EngineCmd::SnapshotTo { path, reply } => {
                let _ = reply.send(write_snapshot(&self.engine, &self.info, &path));
            }
            EngineCmd::Stall { ms, reply } => {
                std::thread::sleep(Duration::from_millis(ms));
                let mut ok = ok_response();
                ok.set("epoch", Json::from_u64(self.engine.epoch()));
                let _ = reply.send(ok);
            }
            EngineCmd::Stop => return true,
        }
        false
    }

    /// Draw one admission round from the queue under the deployment's
    /// policy.
    fn admit(&mut self) -> Vec<Submission> {
        let cap = self.info.serving.admit_per_epoch;
        let take = if cap == 0 { self.queue.len() } else { cap.min(self.queue.len()) };
        if take == 0 {
            return Vec::new();
        }
        match self.info.serving.policy {
            AdmissionPolicy::Fifo => self.queue.drain(..take).collect(),
            AdmissionPolicy::RoundRobin => {
                // One per client per turn, clients visited in sorted-name
                // order; the start position rotates round-by-round so the
                // alphabetically first client is not structurally ahead.
                let clients: Vec<String> = self
                    .queue
                    .iter()
                    .map(|s| s.client.clone())
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                let start = (self.rr_round % clients.len() as u64) as usize;
                self.rr_round = self.rr_round.wrapping_add(1);
                let mut admitted = Vec::with_capacity(take);
                let mut turn = 0usize;
                while admitted.len() < take {
                    let client = &clients[(start + turn) % clients.len()];
                    turn += 1;
                    if let Some(pos) = self.queue.iter().position(|s| &s.client == client) {
                        admitted.push(self.queue.remove(pos).expect("position just found"));
                    }
                }
                admitted
            }
        }
    }

    /// Admit one round and inject it, ordered by content (client tag as
    /// tiebreak) so the trajectory is arrival-order-invariant. Async
    /// submissions are answered here with their assigned id.
    fn admit_and_inject(&mut self) {
        let mut admitted = self.admit();
        if admitted.is_empty() {
            return;
        }
        admitted.sort_by(|a, b| a.key().cmp(&b.key()).then_with(|| a.client.cmp(&b.client)));
        let boundary = self.engine.epoch();
        for s in admitted {
            let region = s.region.map(|[x0, y0, x1, y1]| {
                Rect::new(Position { x: x0, y: y0 }, Position { x: x1, y: y1 })
            });
            let id = self.engine.submit_external_query(SensorType(s.stype), s.lo, s.hi, region);
            if s.is_async {
                let mut ok = ok_response();
                ok.set("id", Json::from_u64(id.0));
                ok.set("epoch", Json::from_u64(boundary));
                let _ = s.reply.send(ok);
                self.inflight.insert(id.0, None);
            } else {
                self.inflight.insert(id.0, Some(s.reply));
            }
        }
    }

    /// After every `step_epoch`, wherever it happens: publish the epoch,
    /// sweep newly finalised queries out of the engine's completed log
    /// (blocking callers are answered, everything external lands in the
    /// results log), and maybe write an auto-checkpoint.
    fn post_step(&mut self) {
        let now = self.engine.epoch();
        self.epoch.store(now, Ordering::SeqCst);
        let mut finished: Vec<(u64, Json)> = Vec::new();
        for (seq, done) in self.engine.completed_since(self.sweep_cursor) {
            self.sweep_cursor = seq + 1;
            // The engine also finalises its own workload queries; only
            // externally submitted ids leave the sweep.
            if self.inflight.contains_key(&done.outcome.id.0) {
                finished.push((done.outcome.id.0, outcome_fields(done)));
            }
        }
        for (id, fields) in finished {
            if let Some(Some(reply)) = self.inflight.remove(&id) {
                let mut ok = ok_response();
                merge_fields(&mut ok, &fields);
                let _ = reply.send(ok);
            }
            if self.results.len() == RESULTS_LOG_CAP {
                self.results.pop_front();
            }
            self.results.push_back((self.next_result_seq, id, fields));
            self.next_result_seq += 1;
        }
        let every = self.info.serving.checkpoint_every_epochs;
        if every > 0 && now.is_multiple_of(every) {
            self.write_checkpoint(now / every % CHECKPOINT_SLOTS);
        }
    }

    /// Write one rotating checkpoint image. Failures are logged, never
    /// fatal — checkpointing is a recovery aid, not a serving dependency.
    fn write_checkpoint(&self, slot: u64) {
        let dir = self.info.serving.checkpoint_dir.as_deref().unwrap_or(".");
        let path = format!(
            "{dir}/{name}.{slot}.{ext}",
            name = self.info.name,
            ext = crate::protocol::IMAGE_EXTENSION
        );
        let result = write_snapshot(&self.engine, &self.info, &path);
        if result.get("ok") != Some(&Json::Bool(true)) {
            let why = result.get("error").and_then(Json::as_str).unwrap_or("unknown error");
            eprintln!("dirqd: checkpoint {path:?} failed: {why}");
        }
    }

    fn poll(&self, id: u64) -> Json {
        if let Some((_, _, fields)) = self.results.iter().rev().find(|(_, rid, _)| *rid == id) {
            let mut ok = ok_response();
            ok.set("done", Json::Bool(true));
            merge_fields(&mut ok, fields);
            return ok;
        }
        if self.inflight.contains_key(&id) {
            let mut ok = ok_response();
            ok.set("done", Json::Bool(false));
            ok.set("epoch", Json::from_u64(self.engine.epoch()));
            return ok;
        }
        err_response(kind::NOT_FOUND, &format!("unknown or expired query id {id}"))
    }

    fn drain(&self, cursor: u64) -> Json {
        let first_seq = self.next_result_seq - self.results.len() as u64;
        let skip = cursor.saturating_sub(first_seq).min(self.results.len() as u64) as usize;
        let mut out = Vec::new();
        let mut next_cursor = cursor.max(first_seq).min(self.next_result_seq);
        for (seq, _, fields) in self.results.iter().skip(skip).take(DRAIN_MAX_RESULTS) {
            let mut item = fields.clone();
            item.set("seq", Json::from_u64(*seq));
            out.push(item);
            next_cursor = seq + 1;
        }
        let mut ok = ok_response();
        ok.set("results", Json::Arr(out));
        ok.set("cursor", Json::from_u64(next_cursor));
        ok.set("pending", Json::from_u64(self.backlog() as u64));
        ok.set("epoch", Json::from_u64(self.engine.epoch()));
        ok
    }
}

/// The serving loop: block when idle; while any query is queued or in
/// flight, run one epoch per iteration — drain arrived commands, admit
/// and inject a scheduling round, step, sweep completions.
fn engine_thread(
    engine: Engine,
    info: DeploymentInfo,
    epoch: Arc<AtomicU64>,
    rx: Receiver<EngineCmd>,
) {
    let mut s = Serving {
        sweep_cursor: engine.completed_next_seq(),
        engine,
        info,
        epoch,
        queue: VecDeque::new(),
        inflight: HashMap::new(),
        rr_round: 0,
        results: VecDeque::new(),
        next_result_seq: 0,
    };
    'serve: loop {
        if s.backlog() == 0 {
            match rx.recv() {
                Ok(cmd) => {
                    if s.process(cmd) {
                        break 'serve;
                    }
                }
                Err(_) => break 'serve,
            }
        }
        loop {
            match rx.try_recv() {
                Ok(cmd) => {
                    if s.process(cmd) {
                        break 'serve;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'serve,
            }
        }
        if s.backlog() > 0 {
            s.admit_and_inject();
            s.engine.step_epoch();
            s.post_step();
        }
    }
}

/// Serialize, frame and persist a snapshot image.
fn write_snapshot(engine: &Engine, info: &DeploymentInfo, path: &str) -> Json {
    let header = ImageHeader {
        preset: info.preset.clone(),
        scale: info.scale,
        scheme: info.scheme.clone(),
        seed: info.seed,
        epoch: engine.epoch(),
        nodes: info.nodes,
    };
    let image = frame_image(&header.to_json(), &engine.snapshot());
    if let Err(e) = std::fs::write(path, &image) {
        return err_response(kind::IO, &format!("write {path:?}: {e}"));
    }
    let mut ok = ok_response();
    ok.set("path", Json::Str(path.to_string()));
    ok.set("bytes", Json::from_u64(image.len() as u64));
    ok.set("epoch", Json::from_u64(engine.epoch()));
    ok.set("fingerprint", Json::Str(fingerprint_hex(engine.state_fingerprint())));
    ok
}

/// Render one completed query's result fields (no `ok` envelope — the
/// caller wraps for `query`/`poll` replies or embeds for `drain`).
fn outcome_fields(done: &CompletedQuery) -> Json {
    let o = &done.outcome;
    let mut fields = Json::object();
    fields.set("id", Json::from_u64(o.id.0));
    fields.set("epoch", Json::from_u64(o.epoch));
    fields.set("answered_epoch", Json::from_u64(done.answered_epoch));
    fields.set("epochs_to_answer", Json::from_u64(done.answered_epoch.saturating_sub(o.epoch)));
    fields.set("true_sources", Json::from_u64(o.true_sources as u64));
    fields.set("sources_reached", Json::from_u64(o.sources_reached as u64));
    fields.set("should_receive", Json::from_u64(o.should_receive as u64));
    fields.set("received_should", Json::from_u64(o.received_should as u64));
    fields.set("received_should_not", Json::from_u64(o.received_should_not as u64));
    fields.set("recall", Json::Num(o.source_recall()));
    fields.set("tx", Json::from_u64(done.tx));
    fields.set("rx", Json::from_u64(done.rx));
    fields
}

/// Copy every field of `src` (an object) onto `dst`.
fn merge_fields(dst: &mut Json, src: &Json) {
    if let Json::Obj(fields) = src {
        for (k, v) in fields {
            dst.set(k, v.clone());
        }
    }
}

/// The protocol scheme label of an engine's configured protocol — a
/// display helper for the CLI.
pub fn protocol_label(p: Protocol) -> &'static str {
    match p {
        Protocol::Dirq => "dirq",
        Protocol::Flooding => "flooding",
    }
}
