//! The daemon: named live deployments behind a TCP protocol endpoint.
//!
//! Each deployment owns one [`Engine`] on a dedicated thread, driven by
//! a command channel. Connection handlers never touch an engine
//! directly — they translate protocol lines into commands and wait for
//! the engine thread's reply, so every deployment processes exactly one
//! command stream in a deterministic order.
//!
//! External queries batch at epoch boundaries: all submissions waiting
//! when the engine thread wakes are ordered **by content** (sensor
//! type, window bounds, region) rather than arrival time, injected
//! together, and the engine steps until the whole batch has completed.
//! Clients that barrier between batches therefore observe a reproducible
//! engine trajectory regardless of socket scheduling.

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use dirq_core::{CompletedQuery, Engine, Protocol};
use dirq_data::SensorType;
use dirq_net::{Position, Rect};
use dirq_scenario::Scheme;
use dirq_sim::json::Json;
use dirq_sim::snap::{frame_image, parse_image};

use crate::protocol::{
    err_response, fingerprint_hex, ok_response, read_line, resolve_deployment, write_line,
    ImageHeader,
};

/// One query waiting for the next epoch-boundary batch.
struct Submission {
    stype: u8,
    lo: f64,
    hi: f64,
    region: Option<[f64; 4]>,
    reply: Sender<Json>,
}

impl Submission {
    /// Content ordering key — batch order must not depend on socket
    /// arrival time.
    fn key(&self) -> (u8, u64, u64, u8, [u64; 4]) {
        let region_bits = self.region.map_or([0; 4], |r| r.map(f64::to_bits));
        (
            self.stype,
            self.lo.to_bits(),
            self.hi.to_bits(),
            u8::from(self.region.is_some()),
            region_bits,
        )
    }
}

/// Commands a connection handler can send to an engine thread.
enum EngineCmd {
    Submit(Submission),
    Step { epochs: u64, reply: Sender<Json> },
    Fingerprint { reply: Sender<Json> },
    SnapshotTo { path: String, reply: Sender<Json> },
    Stop,
}

/// Static facts about a deployment, shared with `status` handlers.
#[derive(Clone)]
pub struct DeploymentInfo {
    /// Deployment name (the protocol handle).
    pub name: String,
    /// Registry preset it was built from.
    pub preset: String,
    /// Epoch-budget scale applied to the preset.
    pub scale: f64,
    /// Scheme label.
    pub scheme: String,
    /// Engine seed.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// The preset's epoch budget (the daemon may step past it).
    pub epochs: u64,
    /// Whether nodes carry positions (spatially scoped queries allowed).
    pub location_enabled: bool,
}

impl DeploymentInfo {
    fn to_json(&self, epoch: u64) -> Json {
        let mut obj = Json::object();
        obj.set("name", Json::Str(self.name.clone()));
        obj.set("preset", Json::Str(self.preset.clone()));
        obj.set("scale", Json::Num(self.scale));
        obj.set("scheme", Json::Str(self.scheme.clone()));
        obj.set("seed", Json::Num(self.seed as f64));
        obj.set("nodes", Json::Num(self.nodes as f64));
        obj.set("epochs", Json::Num(self.epochs as f64));
        obj.set("epoch", Json::Num(epoch as f64));
        obj
    }
}

struct Deployment {
    info: DeploymentInfo,
    /// Last epoch boundary the engine thread published.
    epoch: Arc<AtomicU64>,
    tx: Sender<EngineCmd>,
    thread: Option<JoinHandle<()>>,
}

struct Shared {
    deployments: Mutex<HashMap<String, Deployment>>,
    shutting_down: AtomicBool,
}

/// A running daemon bound to a local TCP port.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Daemon {
    /// Bind to `addr` (use port 0 for an ephemeral port; see
    /// [`Daemon::local_addr`]).
    pub fn bind(addr: &str) -> io::Result<Daemon> {
        Ok(Daemon {
            listener: TcpListener::bind(addr)?,
            shared: Arc::new(Shared {
                deployments: Mutex::new(HashMap::new()),
                shutting_down: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Bind and serve on a background thread — the in-process form the
    /// load generator and the integration tests use. Returns the bound
    /// address and the serving thread's handle (joins after `shutdown`).
    pub fn spawn(addr: &str) -> io::Result<(SocketAddr, JoinHandle<io::Result<()>>)> {
        let daemon = Daemon::bind(addr)?;
        let local = daemon.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("dirqd-accept".into())
            .spawn(move || daemon.serve())
            .expect("spawn daemon thread");
        Ok((local, handle))
    }

    /// Serve until a client issues `shutdown`. Blocks; run on its own
    /// thread for in-process use (see the loadgen and the tests).
    pub fn serve(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        for conn in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &shared, addr);
            });
        }
        // Join every engine thread so serve() returning means the
        // daemon's state is fully torn down.
        let mut deployments = self.shared.deployments.lock().expect("deployment map");
        for (_, mut d) in deployments.drain() {
            let _ = d.tx.send(EngineCmd::Stop);
            if let Some(t) = d.thread.take() {
                let _ = t.join();
            }
        }
        Ok(())
    }
}

/// One client connection: a request/response loop over protocol lines.
fn handle_connection(
    stream: TcpStream,
    shared: &Shared,
    daemon_addr: SocketAddr,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let request = match read_line(&mut reader) {
            Ok(Some(doc)) => doc,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Report the broken line and drop the connection — the
                // stream may be desynchronised.
                let _ = write_line(&mut writer, &err_response(&e.to_string()));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let cmd = request.get("cmd").and_then(Json::as_str).unwrap_or_default().to_string();
        let response = match cmd.as_str() {
            "deploy" => handle_deploy(&request, shared),
            "query" => handle_query(&request, shared),
            "step" => handle_step(&request, shared),
            "status" => handle_status(shared),
            "fingerprint" => handle_fingerprint(&request, shared),
            "snapshot" => handle_snapshot(&request, shared),
            "restore" => handle_restore(&request, shared),
            "shutdown" => {
                write_line(&mut writer, &ok_response())?;
                initiate_shutdown(shared, daemon_addr);
                return Ok(());
            }
            "" => err_response("missing \"cmd\" field"),
            other => err_response(&format!("unknown command {other:?}")),
        };
        write_line(&mut writer, &response)?;
    }
}

/// Flag the daemon as stopping and wake the accept loop with a
/// throwaway connection so `serve` observes the flag.
fn initiate_shutdown(shared: &Shared, daemon_addr: SocketAddr) {
    shared.shutting_down.store(true, Ordering::SeqCst);
    if let Ok(s) = TcpStream::connect(daemon_addr) {
        drop(s);
    }
}

fn str_field(doc: &Json, key: &str) -> Result<String, Json> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| err_response(&format!("missing string field {key:?}")))
}

fn num_field(doc: &Json, key: &str) -> Result<f64, Json> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| err_response(&format!("missing numeric field {key:?}")))
}

/// Clone the channel/epoch handles of a deployment under the map lock.
fn lookup(
    shared: &Shared,
    name: &str,
) -> Result<(DeploymentInfo, Arc<AtomicU64>, Sender<EngineCmd>), Json> {
    let deployments = shared.deployments.lock().expect("deployment map");
    deployments
        .get(name)
        .map(|d| (d.info.clone(), Arc::clone(&d.epoch), d.tx.clone()))
        .ok_or_else(|| err_response(&format!("no deployment named {name:?}")))
}

/// Send `cmd` and wait for the engine thread's reply.
fn round_trip(tx: &Sender<EngineCmd>, cmd: EngineCmd, rx: Receiver<Json>) -> Json {
    if tx.send(cmd).is_err() {
        return err_response("deployment is shutting down");
    }
    rx.recv().unwrap_or_else(|_| err_response("deployment engine stopped"))
}

fn handle_deploy(request: &Json, shared: &Shared) -> Json {
    let name = match str_field(request, "name") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let preset = match str_field(request, "preset") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let scale = request.get("scale").and_then(Json::as_f64).unwrap_or(1.0);
    let scheme_label = request.get("scheme").and_then(Json::as_str).map(str::to_string);
    let (spec, scheme) = match resolve_deployment(&preset, scale, scheme_label.as_deref()) {
        Ok(v) => v,
        Err(msg) => return err_response(&msg),
    };
    let seed = request.get("seed").and_then(Json::as_f64).map_or(spec.seed, |s| s as u64);
    install(shared, &name, &preset, scale, spec, scheme, seed, None)
}

fn handle_restore(request: &Json, shared: &Shared) -> Json {
    let name = match str_field(request, "name") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let path = match str_field(request, "path") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => return err_response(&format!("read {path:?}: {e}")),
    };
    let (header_json, body) = match parse_image(&bytes) {
        Ok(v) => v,
        Err(e) => return err_response(&format!("parse {path:?}: {e}")),
    };
    let header = match ImageHeader::from_json(&header_json) {
        Ok(h) => h,
        Err(msg) => return err_response(&msg),
    };
    let (spec, scheme) = match header.resolve() {
        Ok(v) => v,
        Err(msg) => return err_response(&msg),
    };
    if spec.n_nodes != header.nodes {
        return err_response(&format!(
            "image header claims {} nodes but preset {:?} deploys {}",
            header.nodes, header.preset, spec.n_nodes
        ));
    }
    install(shared, &name, &header.preset, header.scale, spec, scheme, header.seed, Some(body))
}

/// Build the engine (outside the map lock — deployment can take a
/// while), optionally overlay a snapshot body, and register the engine
/// thread under `name`.
#[allow(clippy::too_many_arguments)]
fn install(
    shared: &Shared,
    name: &str,
    preset: &str,
    scale: f64,
    spec: dirq_scenario::ScenarioSpec,
    scheme: Scheme,
    seed: u64,
    body: Option<&[u8]>,
) -> Json {
    {
        let deployments = shared.deployments.lock().expect("deployment map");
        if deployments.contains_key(name) {
            return err_response(&format!("deployment {name:?} already exists"));
        }
    }
    let cfg = spec.config(scheme, seed);
    let info = DeploymentInfo {
        name: name.to_string(),
        preset: preset.to_string(),
        scale,
        scheme: scheme.label(),
        seed,
        nodes: cfg.n_nodes,
        epochs: cfg.epochs,
        location_enabled: cfg.location_enabled,
    };
    let mut engine = Engine::new(cfg);
    if let Some(body) = body {
        if let Err(e) = engine.restore(body) {
            return err_response(&format!("restore: {e}"));
        }
    }
    engine.enable_completed_log();
    let epoch = Arc::new(AtomicU64::new(engine.epoch()));
    let (tx, rx) = channel();
    let thread_epoch = Arc::clone(&epoch);
    let thread_info = info.clone();
    let thread = std::thread::Builder::new()
        .name(format!("dirqd-{name}"))
        .spawn(move || engine_thread(engine, thread_info, thread_epoch, rx))
        .expect("spawn engine thread");
    let current = epoch.load(Ordering::SeqCst);
    let mut deployments = shared.deployments.lock().expect("deployment map");
    if deployments.contains_key(name) {
        // Raced another deploy of the same name; tear ours down.
        drop(deployments);
        let _ = tx.send(EngineCmd::Stop);
        let _ = thread.join();
        return err_response(&format!("deployment {name:?} already exists"));
    }
    let response = info.to_json(current);
    deployments.insert(name.to_string(), Deployment { info, epoch, tx, thread: Some(thread) });
    let mut ok = ok_response();
    let Json::Obj(fields) = response else { unreachable!("info renders an object") };
    for (k, v) in fields {
        ok.set(&k, v);
    }
    ok
}

fn handle_query(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let stype = match num_field(request, "stype") {
        Ok(v) => v as u8,
        Err(e) => return e,
    };
    let (lo, hi) = match (num_field(request, "lo"), num_field(request, "hi")) {
        (Ok(lo), Ok(hi)) => (lo, hi),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    let region = match request.get("region") {
        None | Some(Json::Null) => None,
        Some(doc) => match doc.as_array() {
            Some(v) if v.len() == 4 => {
                let mut corners = [0.0; 4];
                for (slot, item) in corners.iter_mut().zip(v) {
                    match item.as_f64() {
                        Some(x) => *slot = x,
                        None => return err_response("region must be [x0, y0, x1, y1]"),
                    }
                }
                Some(corners)
            }
            _ => return err_response("region must be [x0, y0, x1, y1]"),
        },
    };
    let (info, _, tx) = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    if region.is_some() && !info.location_enabled {
        return err_response(&format!(
            "deployment {deployment:?} has no location extension; spatial queries unsupported"
        ));
    }
    if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
        return err_response("query window must satisfy lo <= hi (finite)");
    }
    let (reply_tx, reply_rx) = channel();
    round_trip(
        &tx,
        EngineCmd::Submit(Submission { stype, lo, hi, region, reply: reply_tx }),
        reply_rx,
    )
}

fn handle_step(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let epochs = match num_field(request, "epochs") {
        Ok(v) if v >= 0.0 => v as u64,
        Ok(_) => return err_response("epochs must be non-negative"),
        Err(e) => return e,
    };
    let (_, _, tx) = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(&tx, EngineCmd::Step { epochs, reply: reply_tx }, reply_rx)
}

fn handle_status(shared: &Shared) -> Json {
    let deployments = shared.deployments.lock().expect("deployment map");
    let mut rows: Vec<(String, Json)> = deployments
        .values()
        .map(|d| (d.info.name.clone(), d.info.to_json(d.epoch.load(Ordering::SeqCst))))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let mut ok = ok_response();
    ok.set("deployments", Json::Arr(rows.into_iter().map(|(_, j)| j).collect()));
    ok
}

fn handle_fingerprint(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (_, _, tx) = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(&tx, EngineCmd::Fingerprint { reply: reply_tx }, reply_rx)
}

fn handle_snapshot(request: &Json, shared: &Shared) -> Json {
    let deployment = match str_field(request, "deployment") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let path = match str_field(request, "path") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (_, _, tx) = match lookup(shared, &deployment) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let (reply_tx, reply_rx) = channel();
    round_trip(&tx, EngineCmd::SnapshotTo { path, reply: reply_tx }, reply_rx)
}

// --- the engine thread ----------------------------------------------------

/// Drain the command channel, batching query submissions; control
/// commands reply immediately, batches resolve by stepping epochs until
/// every query in the batch has finalised.
fn engine_thread(
    mut engine: Engine,
    info: DeploymentInfo,
    epoch: Arc<AtomicU64>,
    rx: Receiver<EngineCmd>,
) {
    let mut batch: Vec<Submission> = Vec::new();
    loop {
        let first = match rx.recv() {
            Ok(cmd) => cmd,
            Err(_) => break,
        };
        let mut stop = false;
        let mut pending = vec![first];
        while let Ok(cmd) = rx.try_recv() {
            pending.push(cmd);
        }
        for cmd in pending {
            match cmd {
                EngineCmd::Submit(s) => batch.push(s),
                EngineCmd::Step { epochs, reply } => {
                    for _ in 0..epochs {
                        engine.step_epoch();
                    }
                    engine.take_completed();
                    epoch.store(engine.epoch(), Ordering::SeqCst);
                    let mut ok = ok_response();
                    ok.set("epoch", Json::Num(engine.epoch() as f64));
                    let _ = reply.send(ok);
                }
                EngineCmd::Fingerprint { reply } => {
                    let mut ok = ok_response();
                    ok.set("epoch", Json::Num(engine.epoch() as f64));
                    ok.set("fingerprint", Json::Str(fingerprint_hex(engine.state_fingerprint())));
                    let _ = reply.send(ok);
                }
                EngineCmd::SnapshotTo { path, reply } => {
                    let _ = reply.send(write_snapshot(&engine, &info, &path));
                }
                EngineCmd::Stop => stop = true,
            }
        }
        if !batch.is_empty() && !stop {
            resolve_batch(&mut engine, &mut batch);
            epoch.store(engine.epoch(), Ordering::SeqCst);
        }
        if stop {
            break;
        }
    }
}

/// Serialize, frame and persist a snapshot image.
fn write_snapshot(engine: &Engine, info: &DeploymentInfo, path: &str) -> Json {
    let header = ImageHeader {
        preset: info.preset.clone(),
        scale: info.scale,
        scheme: info.scheme.clone(),
        seed: info.seed,
        epoch: engine.epoch(),
        nodes: info.nodes,
    };
    let image = frame_image(&header.to_json(), &engine.snapshot());
    if let Err(e) = std::fs::write(path, &image) {
        return err_response(&format!("write {path:?}: {e}"));
    }
    let mut ok = ok_response();
    ok.set("path", Json::Str(path.to_string()));
    ok.set("bytes", Json::Num(image.len() as f64));
    ok.set("epoch", Json::Num(engine.epoch() as f64));
    ok.set("fingerprint", Json::Str(fingerprint_hex(engine.state_fingerprint())));
    ok
}

/// Inject the waiting batch (content-ordered) at the current epoch
/// boundary and step until every member has completed.
fn resolve_batch(engine: &mut Engine, batch: &mut Vec<Submission>) {
    batch.sort_by_key(Submission::key);
    let mut waiting: HashMap<u64, (Sender<Json>, u64)> = HashMap::new();
    for s in batch.drain(..) {
        let region = s.region.map(|[x0, y0, x1, y1]| {
            Rect::new(Position { x: x0, y: y0 }, Position { x: x1, y: y1 })
        });
        let injected_at = engine.epoch();
        let id = engine.submit_external_query(SensorType(s.stype), s.lo, s.hi, region);
        waiting.insert(id.0, (s.reply, injected_at));
    }
    while !waiting.is_empty() {
        engine.step_epoch();
        for done in engine.take_completed() {
            if let Some((reply, injected_at)) = waiting.remove(&done.outcome.id.0) {
                let _ = reply.send(outcome_json(&done, injected_at, engine.epoch()));
            }
        }
    }
}

/// Render one completed query for the wire.
fn outcome_json(done: &CompletedQuery, injected_at: u64, answered_epoch: u64) -> Json {
    let o = &done.outcome;
    let mut ok = ok_response();
    ok.set("id", Json::Num(o.id.0 as f64));
    ok.set("epoch", Json::Num(injected_at as f64));
    ok.set("answered_epoch", Json::Num(answered_epoch as f64));
    ok.set("true_sources", Json::Num(o.true_sources as f64));
    ok.set("sources_reached", Json::Num(o.sources_reached as f64));
    ok.set("should_receive", Json::Num(o.should_receive as f64));
    ok.set("received_should", Json::Num(o.received_should as f64));
    ok.set("received_should_not", Json::Num(o.received_should_not as f64));
    ok.set("recall", Json::Num(o.source_recall()));
    ok.set("tx", Json::Num(done.tx as f64));
    ok.set("rx", Json::Num(done.rx as f64));
    ok
}

/// The protocol scheme label of an engine's configured protocol — a
/// display helper for the CLI.
pub fn protocol_label(p: Protocol) -> &'static str {
    match p {
        Protocol::Dirq => "dirq",
        Protocol::Flooding => "flooding",
    }
}
