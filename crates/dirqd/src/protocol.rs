//! The dirqd wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is a single line holding one JSON object with a `cmd`
//! field; every response is a single line holding one JSON object with
//! an `ok` field (`true` plus result fields, or `false` plus `error`).
//! Lines are bounded at [`MAX_LINE_BYTES`] on both sides, so a
//! misbehaving peer cannot balloon memory.
//!
//! ## Commands
//!
//! | `cmd`         | request fields                                              | response fields |
//! |---------------|-------------------------------------------------------------|-----------------|
//! | `deploy`      | `name`, `preset`, [`scale`], [`scheme`], [`seed`]           | `name`, `preset`, `scheme`, `seed`, `scale`, `nodes`, `epochs`, `epoch` |
//! | `query`       | `deployment`, `stype`, `lo`, `hi`, [`region`: `[x0,y0,x1,y1]`] | `id`, `epoch`, `answered_epoch`, `true_sources`, `sources_reached`, `should_receive`, `received_should`, `received_should_not`, `recall`, `tx`, `rx` |
//! | `step`        | `deployment`, `epochs`                                      | `epoch` |
//! | `status`      | —                                                           | `deployments`: array of deploy summaries |
//! | `fingerprint` | `deployment`                                                | `epoch`, `fingerprint` (hex string) |
//! | `snapshot`    | `deployment`, `path`                                        | `path`, `bytes`, `epoch`, `fingerprint` |
//! | `restore`     | `name`, `path`                                              | like `deploy`, at the captured `epoch` |
//! | `shutdown`    | —                                                           | — |
//!
//! Query submissions are **batched at epoch boundaries**: the engine
//! collects every query waiting at the start of its next epoch, orders
//! the batch by content (not arrival time), injects it, and steps epochs
//! until all of the batch has completed. A fixed sequence of barriered
//! batches therefore drives the engine along a reproducible trajectory —
//! the property the load generator's fingerprint checks pin.
//!
//! Snapshot images are [`dirq_sim::snap::frame_image`] files: magic,
//! format version, a JSON header carrying the deployment recipe
//! (`preset`/`scale`/`scheme`/`seed`/`epoch`/`nodes`) and the engine
//! body. `restore` rebuilds the engine from the header recipe and
//! overlays the body, so a restored deployment is byte-identical to the
//! one that was captured.

use std::io::{self, BufRead, Read as _, Write};

use dirq_scenario::{preset, ScenarioSpec, Scheme};
use dirq_sim::json::Json;

/// Upper bound for one request or response line, both directions.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// File extension the tools use for snapshot images.
pub const IMAGE_EXTENSION: &str = "dirqsnap";

/// Render a fingerprint the way the protocol carries it (`u64` does not
/// survive a JSON `f64` number, so fingerprints travel as hex strings).
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:#018X}")
}

/// Parse a [`fingerprint_hex`] string.
pub fn parse_fingerprint(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"))?, 16).ok()
}

/// A successful response under construction.
pub fn ok_response() -> Json {
    let mut obj = Json::object();
    obj.set("ok", Json::Bool(true));
    obj
}

/// An error response.
pub fn err_response(message: &str) -> Json {
    let mut obj = Json::object();
    obj.set("ok", Json::Bool(false));
    obj.set("error", Json::Str(message.to_string()));
    obj
}

/// Write `doc` as one protocol line.
pub fn write_line(w: &mut impl Write, doc: &Json) -> io::Result<()> {
    let mut line = doc.render();
    debug_assert!(line.len() < MAX_LINE_BYTES, "oversized protocol line");
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Read one protocol line and parse it. `Ok(None)` means clean EOF;
/// blank lines are skipped; an oversized or syntactically broken line is
/// an error. A final unterminated line (piped input) is still parsed.
pub fn read_line(r: &mut impl BufRead) -> io::Result<Option<Json>> {
    loop {
        let mut line = String::new();
        // Bound the read itself, not just the parse — a peer must not be
        // able to buffer an unbounded newline-free stream.
        let n = r.by_ref().take(MAX_LINE_BYTES as u64 + 1).read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "protocol line too long"));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        return Json::parse_bounded(trimmed.as_bytes(), MAX_LINE_BYTES)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
    }
}

/// The deployment recipe a snapshot image header carries — everything
/// needed to rebuild the static engine structure the body overlays.
#[derive(Clone, Debug, PartialEq)]
pub struct ImageHeader {
    /// Registry preset name.
    pub preset: String,
    /// Epoch-budget scale applied to the preset (1.0 = as registered).
    pub scale: f64,
    /// Scheme label ([`Scheme::label`]).
    pub scheme: String,
    /// Engine seed.
    pub seed: u64,
    /// Epoch the snapshot was captured at.
    pub epoch: u64,
    /// Node count (redundant with the preset; a cheap sanity field).
    pub nodes: usize,
}

impl ImageHeader {
    /// Render as the JSON object [`dirq_sim::snap::frame_image`] embeds.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("preset", Json::Str(self.preset.clone()));
        obj.set("scale", Json::Num(self.scale));
        obj.set("scheme", Json::Str(self.scheme.clone()));
        obj.set("seed", Json::Num(self.seed as f64));
        obj.set("epoch", Json::Num(self.epoch as f64));
        obj.set("nodes", Json::Num(self.nodes as f64));
        obj
    }

    /// Parse an image header object.
    pub fn from_json(doc: &Json) -> Result<ImageHeader, String> {
        let str_field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("image header: missing string field {k:?}"))
        };
        let num_field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("image header: missing numeric field {k:?}"))
        };
        Ok(ImageHeader {
            preset: str_field("preset")?,
            scale: num_field("scale")?,
            scheme: str_field("scheme")?,
            seed: num_field("seed")? as u64,
            epoch: num_field("epoch")? as u64,
            nodes: num_field("nodes")? as usize,
        })
    }

    /// Resolve the recipe back to a spec + scheme, exactly as `deploy`
    /// would interpret it.
    pub fn resolve(&self) -> Result<(ScenarioSpec, Scheme), String> {
        resolve_deployment(&self.preset, self.scale, Some(&self.scheme))
    }
}

/// Resolve a `(preset, scale, scheme)` request to a runnable spec: the
/// scheme defaults to the preset's first registered scheme, and scaling
/// is only applied when it changes the budget (so `scale: 1.0`
/// round-trips exactly).
pub fn resolve_deployment(
    preset_name: &str,
    scale: f64,
    scheme: Option<&str>,
) -> Result<(ScenarioSpec, Scheme), String> {
    let spec = preset(preset_name).ok_or_else(|| format!("unknown preset {preset_name:?}"))?;
    if !(scale.is_finite() && scale > 0.0) {
        return Err(format!("scale must be a positive number, got {scale}"));
    }
    let scheme = match scheme {
        None => spec.schemes[0],
        Some(label) => Scheme::parse(label).ok_or_else(|| format!("unknown scheme {label:?}"))?,
    };
    let spec = if scale == 1.0 { spec } else { spec.scaled(scale) };
    Ok((spec, scheme))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_round_trip_as_hex() {
        for fp in [0u64, 1, u64::MAX, 0x5778_F391_E49D_F93C] {
            assert_eq!(parse_fingerprint(&fingerprint_hex(fp)), Some(fp));
        }
        assert_eq!(parse_fingerprint("12"), None);
    }

    #[test]
    fn image_headers_round_trip() {
        let header = ImageHeader {
            preset: "dense_grid_100".into(),
            scale: 0.1,
            scheme: "dirq-atc".into(),
            seed: 1_001,
            epoch: 37,
            nodes: 100,
        };
        assert_eq!(ImageHeader::from_json(&header.to_json()).unwrap(), header);
        let (spec, scheme) = header.resolve().unwrap();
        assert_eq!(spec.n_nodes, 100);
        assert_eq!(scheme, Scheme::DirqAtc);
    }

    #[test]
    fn deployment_resolution_validates() {
        assert!(resolve_deployment("no_such_preset", 1.0, None).is_err());
        assert!(resolve_deployment("dense_grid_100", 0.0, None).is_err());
        assert!(resolve_deployment("dense_grid_100", 1.0, Some("bogus")).is_err());
        let (spec, _) = resolve_deployment("dense_grid_100", 1.0, None).unwrap();
        assert_eq!(spec.epochs, dirq_scenario::preset("dense_grid_100").unwrap().epochs);
    }
}
