//! The dirqd wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is a single line holding one JSON object with a `cmd`
//! field; every response is a single line holding one JSON object with
//! an `ok` field (`true` plus result fields, or `false` plus `error`).
//! Lines are bounded at [`MAX_LINE_BYTES`] on both sides, so a
//! misbehaving peer cannot balloon memory.
//!
//! ## Commands
//!
//! | `cmd`         | request fields                                              | response fields |
//! |---------------|-------------------------------------------------------------|-----------------|
//! | `deploy`      | `name`, `preset`, [`scale`], [`scheme`], [`seed`], [`policy`], [`queue_cap`], [`admit_per_epoch`], [`checkpoint_every_epochs`], [`checkpoint_dir`] | `name`, `preset`, `scheme`, `seed`, `scale`, `nodes`, `epochs`, `epoch`, `policy`, `queue_cap`, `admit_per_epoch`, `checkpoint_every_epochs` |
//! | `query`       | `deployment`, `stype`, `lo`, `hi`, [`region`: `[x0,y0,x1,y1]`], [`async`: bool], [`client`], [`timeout_ms`] | blocking: `id`, `epoch`, `answered_epoch`, `epochs_to_answer`, `true_sources`, `sources_reached`, `should_receive`, `received_should`, `received_should_not`, `recall`, `tx`, `rx`; async: `id`, `epoch` |
//! | `poll`        | `deployment`, `id`, [`timeout_ms`]                          | `done` (+ the blocking-query fields when `done` is true, else `epoch`) |
//! | `drain`       | `deployment`, [`cursor`], [`timeout_ms`]                    | `results` (array of completed queries, each + `seq`), `cursor`, `pending`, `epoch` |
//! | `step`        | `deployment`, `epochs`, [`timeout_ms`]                      | `epoch` |
//! | `status`      | —                                                           | `deployments`: array of deploy summaries |
//! | `fingerprint` | `deployment`, [`timeout_ms`]                                | `epoch`, `fingerprint` (hex string) |
//! | `snapshot`    | `deployment`, `path`, [`timeout_ms`]                        | `path`, `bytes`, `epoch`, `fingerprint` |
//! | `restore`     | `name`, `path`, [`policy`], [`queue_cap`], [`admit_per_epoch`], [`checkpoint_every_epochs`], [`checkpoint_dir`] | like `deploy`, at the captured `epoch` |
//! | `debug_stall` | `deployment`, `ms`, [`timeout_ms`]                          | `epoch` (diagnostics: occupies the engine thread for `ms`) |
//! | `shutdown`    | —                                                           | — |
//!
//! Query submissions pass through a per-deployment **admission
//! scheduler**: submissions wait in a bounded queue (`queue_cap`,
//! rejected with a `queue_full` error beyond it) and are admitted at
//! epoch boundaries — up to `admit_per_epoch` per boundary (0 = all) —
//! under the deployment's `policy` (`fifo` or `rr`, per-client
//! round-robin keyed by the request's `client` tag). Each admitted set
//! is injected ordered by **content** (not arrival time), so a fixed
//! sequence of barriered batches drives the engine along a reproducible
//! trajectory regardless of socket scheduling — the property the load
//! generator's fingerprint checks pin. Blocking queries reply once the
//! query completes; `async: true` queries reply with the assigned id at
//! injection, and the outcome is fetched later via `poll` (one id) or
//! `drain` (every completion since a client-held cursor, backed by the
//! engine's bounded completed-query log).
//!
//! ## Typed errors
//!
//! Error responses are `{"ok": false, "kind": …, "error": …}`; `kind`
//! is machine-matchable, `error` human-readable:
//!
//! | `kind`        | meaning |
//! |---------------|---------|
//! | `bad_request` | missing/mistyped/out-of-range request field |
//! | `not_found`   | unknown deployment, preset, scheme, or query id |
//! | `exists`      | deployment name already taken |
//! | `unsupported` | operation the deployment cannot serve (e.g. spatial query without the location extension) |
//! | `queue_full`  | admission queue at `queue_cap`; resubmit later |
//! | `timeout`     | the engine thread missed the command deadline (`timeout_ms`, default [`DEFAULT_TIMEOUT_MS`]) |
//! | `shutdown`    | deployment or daemon is stopping |
//! | `io`          | filesystem failure (snapshot write, image read) |
//! | `bad_image`   | snapshot image failed to parse or mismatches its header |
//! | `bad_line`    | request line oversized or not valid JSON (connection drops) |
//!
//! Snapshot images are [`dirq_sim::snap::frame_image`] files: magic,
//! format version, a JSON header carrying the deployment recipe
//! (`preset`/`scale`/`scheme`/`seed`/`epoch`/`nodes`) and the engine
//! body. `restore` rebuilds the engine from the header recipe and
//! overlays the body, so a restored deployment is byte-identical to the
//! one that was captured.

use std::io::{self, BufRead, Read as _, Write};

use dirq_scenario::{preset, ScenarioSpec, Scheme};
use dirq_sim::json::Json;

/// Upper bound for one request or response line, both directions.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Default admission-queue bound when `deploy` doesn't set `queue_cap`.
pub const DEFAULT_QUEUE_CAP: usize = 4096;

/// File extension the tools use for snapshot images.
pub const IMAGE_EXTENSION: &str = "dirqsnap";

/// Default engine round-trip deadline when a request carries no
/// `timeout_ms`. Generous: a legitimate blocking query on the largest
/// preset completes in well under a second.
pub const DEFAULT_TIMEOUT_MS: u64 = 60_000;

/// Hard ceiling a request's `timeout_ms` is clamped to (10 minutes).
pub const MAX_TIMEOUT_MS: u64 = 600_000;

/// Machine-matchable error kinds (the `kind` field of an error
/// response). Kept as `&str` constants rather than an enum so client
/// and daemon stay wire-compatible with kinds they don't know yet.
pub mod kind {
    /// Missing, mistyped, or out-of-range request field.
    pub const BAD_REQUEST: &str = "bad_request";
    /// Unknown deployment, preset, scheme, or query id.
    pub const NOT_FOUND: &str = "not_found";
    /// Deployment name already taken.
    pub const EXISTS: &str = "exists";
    /// Operation the deployment cannot serve.
    pub const UNSUPPORTED: &str = "unsupported";
    /// Admission queue at capacity; resubmit later.
    pub const QUEUE_FULL: &str = "queue_full";
    /// The engine thread missed the command deadline.
    pub const TIMEOUT: &str = "timeout";
    /// Deployment or daemon is stopping.
    pub const SHUTDOWN: &str = "shutdown";
    /// Filesystem failure.
    pub const IO: &str = "io";
    /// Snapshot image failed to parse or mismatches its header.
    pub const BAD_IMAGE: &str = "bad_image";
    /// Request line oversized or not valid JSON.
    pub const BAD_LINE: &str = "bad_line";
}

/// Render a fingerprint the way the protocol carries it (`u64` does not
/// survive a JSON `f64` number, so fingerprints travel as hex strings).
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:#018X}")
}

/// Parse a [`fingerprint_hex`] string.
pub fn parse_fingerprint(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"))?, 16).ok()
}

/// A successful response under construction.
pub fn ok_response() -> Json {
    let mut obj = Json::object();
    obj.set("ok", Json::Bool(true));
    obj
}

/// An error response: `{ok: false, kind, error}`. `kind` should be one
/// of the [`kind`] constants.
pub fn err_response(kind: &str, message: &str) -> Json {
    let mut obj = Json::object();
    obj.set("ok", Json::Bool(false));
    obj.set("kind", Json::Str(kind.to_string()));
    obj.set("error", Json::Str(message.to_string()));
    obj
}

/// Resolve a request's engine round-trip deadline: the optional
/// `timeout_ms` field clamped to `[1, MAX_TIMEOUT_MS]`, defaulting to
/// [`DEFAULT_TIMEOUT_MS`]. A non-numeric `timeout_ms` is a typed error.
pub fn request_timeout(req: &Json) -> Result<std::time::Duration, String> {
    let ms = match req.get("timeout_ms") {
        None | Some(Json::Null) => DEFAULT_TIMEOUT_MS,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| "timeout_ms must be a non-negative integer".to_string())?
            .clamp(1, MAX_TIMEOUT_MS),
    };
    Ok(std::time::Duration::from_millis(ms))
}

/// Write `doc` as one protocol line.
pub fn write_line(w: &mut impl Write, doc: &Json) -> io::Result<()> {
    let mut line = doc.render();
    debug_assert!(line.len() < MAX_LINE_BYTES, "oversized protocol line");
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Read one protocol line and parse it. `Ok(None)` means clean EOF;
/// blank lines are skipped; an oversized or syntactically broken line is
/// an error. A final unterminated line (piped input) is still parsed.
pub fn read_line(r: &mut impl BufRead) -> io::Result<Option<Json>> {
    loop {
        let mut line = String::new();
        // Bound the read itself, not just the parse — a peer must not be
        // able to buffer an unbounded newline-free stream.
        let n = r.by_ref().take(MAX_LINE_BYTES as u64 + 1).read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "protocol line too long"));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        return Json::parse_bounded(trimmed.as_bytes(), MAX_LINE_BYTES)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
    }
}

/// How query submissions are drawn from the admission queue at each
/// epoch boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Arrival order across all clients.
    Fifo,
    /// One per client per turn, clients visited in sorted-name order
    /// from a start position that rotates each round, so no client name
    /// is structurally favoured.
    RoundRobin,
}

impl AdmissionPolicy {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::RoundRobin => "rr",
        }
    }

    /// Parse a wire label.
    pub fn parse(s: &str) -> Option<AdmissionPolicy> {
        match s {
            "fifo" => Some(AdmissionPolicy::Fifo),
            "rr" => Some(AdmissionPolicy::RoundRobin),
            _ => None,
        }
    }
}

/// Per-deployment serving knobs, set at `deploy`/`restore` time and
/// embedded in auto-checkpoint image headers so `--recover` can resume
/// a deployment under the knobs it was running with.
#[derive(Clone, Debug, PartialEq)]
pub struct ServingOptions {
    /// Admission scheduling policy.
    pub policy: AdmissionPolicy,
    /// Admission-queue bound; `0` rejects every submission (useful as a
    /// deterministic `queue_full` probe).
    pub queue_cap: usize,
    /// Submissions admitted per epoch boundary; `0` admits everything
    /// waiting.
    pub admit_per_epoch: usize,
    /// Auto-checkpoint period in epochs; `0` disables.
    pub checkpoint_every_epochs: u64,
    /// Directory rotating checkpoint images are written into (required
    /// when `checkpoint_every_epochs > 0`).
    pub checkpoint_dir: Option<String>,
    /// Intra-engine protocol-upkeep workers
    /// ([`dirq_core::ScenarioConfig::upkeep_workers`]); never affects
    /// results, only epoch wall time.
    pub upkeep_workers: usize,
}

impl Default for ServingOptions {
    fn default() -> ServingOptions {
        ServingOptions {
            policy: AdmissionPolicy::Fifo,
            queue_cap: DEFAULT_QUEUE_CAP,
            admit_per_epoch: 0,
            checkpoint_every_epochs: 0,
            checkpoint_dir: None,
            upkeep_workers: 1,
        }
    }
}

impl ServingOptions {
    /// Render as the `serving` object an image header embeds.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("policy", Json::Str(self.policy.label().to_string()));
        obj.set("queue_cap", Json::from_u64(self.queue_cap as u64));
        obj.set("admit_per_epoch", Json::from_u64(self.admit_per_epoch as u64));
        obj.set("checkpoint_every_epochs", Json::from_u64(self.checkpoint_every_epochs));
        if let Some(dir) = &self.checkpoint_dir {
            obj.set("checkpoint_dir", Json::Str(dir.clone()));
        }
        obj.set("upkeep_workers", Json::from_u64(self.upkeep_workers as u64));
        obj
    }

    /// Parse a `serving` object written by [`ServingOptions::to_json`].
    pub fn from_json(doc: &Json) -> Result<ServingOptions, String> {
        let u64_field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("serving recipe: missing integer field {k:?}"))
        };
        let label = doc
            .get("policy")
            .and_then(Json::as_str)
            .ok_or_else(|| "serving recipe: missing string field \"policy\"".to_string())?;
        Ok(ServingOptions {
            policy: AdmissionPolicy::parse(label)
                .ok_or_else(|| format!("serving recipe: unknown policy {label:?}"))?,
            queue_cap: u64_field("queue_cap")? as usize,
            admit_per_epoch: u64_field("admit_per_epoch")? as usize,
            checkpoint_every_epochs: u64_field("checkpoint_every_epochs")?,
            checkpoint_dir: doc.get("checkpoint_dir").and_then(Json::as_str).map(str::to_string),
            upkeep_workers: u64_field("upkeep_workers")?.max(1) as usize,
        })
    }
}

/// The deployment recipe a snapshot image header carries — everything
/// needed to rebuild the static engine structure the body overlays.
#[derive(Clone, Debug, PartialEq)]
pub struct ImageHeader {
    /// Registry preset name.
    pub preset: String,
    /// Epoch-budget scale applied to the preset (1.0 = as registered).
    pub scale: f64,
    /// Scheme label ([`Scheme::label`]).
    pub scheme: String,
    /// Engine seed.
    pub seed: u64,
    /// Epoch the snapshot was captured at.
    pub epoch: u64,
    /// Node count (redundant with the preset; a cheap sanity field).
    pub nodes: usize,
    /// Serving knobs the deployment ran with — written since the
    /// serving-pool refactor, absent in older images. `--recover` uses
    /// it to resume a deployment under its original admission and
    /// checkpoint configuration.
    pub serving: Option<ServingOptions>,
}

impl ImageHeader {
    /// Render as the JSON object [`dirq_sim::snap::frame_image`] embeds.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("preset", Json::Str(self.preset.clone()));
        obj.set("scale", Json::Num(self.scale));
        obj.set("scheme", Json::Str(self.scheme.clone()));
        obj.set("seed", Json::from_u64(self.seed));
        obj.set("epoch", Json::from_u64(self.epoch));
        obj.set("nodes", Json::Num(self.nodes as f64));
        if let Some(serving) = &self.serving {
            obj.set("serving", serving.to_json());
        }
        obj
    }

    /// Parse an image header object.
    pub fn from_json(doc: &Json) -> Result<ImageHeader, String> {
        let str_field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("image header: missing string field {k:?}"))
        };
        let num_field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("image header: missing numeric field {k:?}"))
        };
        // Seeds and epochs are u64s and must not round through f64.
        let u64_field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("image header: missing integer field {k:?}"))
        };
        Ok(ImageHeader {
            preset: str_field("preset")?,
            scale: num_field("scale")?,
            scheme: str_field("scheme")?,
            seed: u64_field("seed")?,
            epoch: u64_field("epoch")?,
            nodes: u64_field("nodes")? as usize,
            serving: match doc.get("serving") {
                None | Some(Json::Null) => None,
                Some(s) => Some(ServingOptions::from_json(s)?),
            },
        })
    }

    /// Resolve the recipe back to a spec + scheme, exactly as `deploy`
    /// would interpret it.
    pub fn resolve(&self) -> Result<(ScenarioSpec, Scheme), String> {
        resolve_deployment(&self.preset, self.scale, Some(&self.scheme))
    }
}

/// Resolve a `(preset, scale, scheme)` request to a runnable spec: the
/// scheme defaults to the preset's first registered scheme, and scaling
/// is only applied when it changes the budget (so `scale: 1.0`
/// round-trips exactly).
pub fn resolve_deployment(
    preset_name: &str,
    scale: f64,
    scheme: Option<&str>,
) -> Result<(ScenarioSpec, Scheme), String> {
    let spec = preset(preset_name).ok_or_else(|| format!("unknown preset {preset_name:?}"))?;
    if !(scale.is_finite() && scale > 0.0) {
        return Err(format!("scale must be a positive number, got {scale}"));
    }
    let scheme = match scheme {
        None => spec.schemes[0],
        Some(label) => Scheme::parse(label).ok_or_else(|| format!("unknown scheme {label:?}"))?,
    };
    let spec = if scale == 1.0 { spec } else { spec.scaled(scale) };
    Ok((spec, scheme))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_round_trip_as_hex() {
        for fp in [0u64, 1, u64::MAX, 0x5778_F391_E49D_F93C] {
            assert_eq!(parse_fingerprint(&fingerprint_hex(fp)), Some(fp));
        }
        assert_eq!(parse_fingerprint("12"), None);
    }

    #[test]
    fn image_headers_round_trip() {
        let header = ImageHeader {
            preset: "dense_grid_100".into(),
            scale: 0.1,
            scheme: "dirq-atc".into(),
            seed: 1_001,
            epoch: 37,
            nodes: 100,
            serving: None,
        };
        assert_eq!(ImageHeader::from_json(&header.to_json()).unwrap(), header);
        let (spec, scheme) = header.resolve().unwrap();
        assert_eq!(spec.n_nodes, 100);
        assert_eq!(scheme, Scheme::DirqAtc);
    }

    #[test]
    fn image_headers_round_trip_the_serving_recipe() {
        let serving = ServingOptions {
            policy: AdmissionPolicy::RoundRobin,
            queue_cap: 17,
            admit_per_epoch: 3,
            checkpoint_every_epochs: 10,
            checkpoint_dir: Some("/tmp/ckpt".into()),
            upkeep_workers: 2,
        };
        let header = ImageHeader {
            preset: "dense_grid_100".into(),
            scale: 0.1,
            scheme: "dirq-atc".into(),
            seed: 7,
            epoch: 20,
            nodes: 100,
            serving: Some(serving.clone()),
        };
        let wire = header.to_json().render();
        let reparsed = ImageHeader::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(reparsed, header);
        assert_eq!(reparsed.serving, Some(serving));
        // Headers written before the serving recipe existed still parse.
        let mut bare = header.to_json();
        bare.set("serving", Json::Null);
        assert_eq!(ImageHeader::from_json(&bare).unwrap().serving, None);
        // A mistyped recipe is an error, not a silent default.
        let mut broken = header.to_json();
        broken.set("serving", Json::Str("fifo".into()));
        assert!(ImageHeader::from_json(&broken).is_err());
    }

    #[test]
    fn image_headers_keep_huge_seeds_exact() {
        // Above 2^53: a float round trip would silently round this.
        let header = ImageHeader {
            preset: "dense_grid_100".into(),
            scale: 1.0,
            scheme: "dirq-atc".into(),
            seed: u64::MAX - 12,
            epoch: 3,
            nodes: 100,
            serving: None,
        };
        let wire = header.to_json().render();
        let reparsed = Json::parse(&wire).unwrap();
        assert_eq!(ImageHeader::from_json(&reparsed).unwrap(), header);
    }

    #[test]
    fn request_timeouts_parse_and_clamp() {
        use std::time::Duration;
        let req = |s: &str| Json::parse(s).unwrap();
        assert_eq!(request_timeout(&req("{}")).unwrap(), Duration::from_millis(DEFAULT_TIMEOUT_MS));
        assert_eq!(
            request_timeout(&req("{\"timeout_ms\": 250}")).unwrap(),
            Duration::from_millis(250)
        );
        assert_eq!(request_timeout(&req("{\"timeout_ms\": 0}")).unwrap(), Duration::from_millis(1));
        assert_eq!(
            request_timeout(&req("{\"timeout_ms\": 1e12}")).unwrap(),
            Duration::from_millis(MAX_TIMEOUT_MS)
        );
        assert!(request_timeout(&req("{\"timeout_ms\": \"soon\"}")).is_err());
        assert!(request_timeout(&req("{\"timeout_ms\": -5}")).is_err());
    }

    #[test]
    fn deployment_resolution_validates() {
        assert!(resolve_deployment("no_such_preset", 1.0, None).is_err());
        assert!(resolve_deployment("dense_grid_100", 0.0, None).is_err());
        assert!(resolve_deployment("dense_grid_100", 1.0, Some("bogus")).is_err());
        let (spec, _) = resolve_deployment("dense_grid_100", 1.0, None).unwrap();
        assert_eq!(spec.epochs, dirq_scenario::preset("dense_grid_100").unwrap().epochs);
    }
}
