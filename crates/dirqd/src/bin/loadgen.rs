//! The dirqd load-generator harness.
//!
//! ```text
//! loadgen [--smoke] [--addr HOST:PORT] [--out BENCH_3.json]
//!         [--clients N] [--duration-s F] [--warmup EPOCHS]
//! ```
//!
//! Default mode spins up an in-process daemon (or targets `--addr`),
//! deploys two registry presets, and for each one:
//!
//! 1. steps a deterministic warm-up and records the engine's
//!    `state_fingerprint` (the reproducible half of the artifact —
//!    `record_goldens --check` re-derives it),
//! 2. measures snapshot and restore round trips (image size + latency)
//!    and asserts the restored deployment fingerprints equal,
//! 3. drives `--clients` concurrent connections of blocking queries for
//!    `--duration-s` and records sustained queries/sec,
//!
//! then writes `BENCH_3.json`. `--smoke` is the CI mode: shorter
//! warm-up, a fixed barriered query batch against both the original and
//! the restored deployment (their trajectories must stay
//! fingerprint-identical), a clean shutdown, and no artifact write —
//! any violated invariant exits non-zero.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dirq_sim::json::Json;
use dirq_sim::snap::SNAP_FORMAT_VERSION;
use dirqd::protocol::fingerprint_hex;
use dirqd::{Client, Daemon};

/// The benchmarked deployments: `(preset, epoch-budget scale)`. Scaled
/// to ~10 % so a full loadgen pass stays in CI seconds while the
/// engines still cross their measurement windows.
const DEPLOYMENTS: &[(&str, f64)] = &[("dense_grid_100", 0.1), ("hotspot_workload_200", 0.1)];

struct Args {
    smoke: bool,
    addr: Option<String>,
    out: String,
    clients: usize,
    duration_s: f64,
    warmup: u64,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        smoke: false,
        addr: None,
        out: String::from("BENCH_3.json"),
        clients: 4,
        duration_s: 2.0,
        warmup: 60,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match a.as_str() {
            "--smoke" => {
                parsed.smoke = true;
                parsed.warmup = 20;
            }
            "--addr" => parsed.addr = Some(value("--addr")),
            "--out" => parsed.out = value("--out"),
            "--clients" => parsed.clients = value("--clients").parse().expect("--clients: usize"),
            "--duration-s" => {
                parsed.duration_s = value("--duration-s").parse().expect("--duration-s: f64");
            }
            "--warmup" => parsed.warmup = value("--warmup").parse().expect("--warmup: u64"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--smoke] [--addr HOST:PORT] [--out PATH] \
                     [--clients N] [--duration-s F] [--warmup EPOCHS]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    parsed
}

/// Deterministic query content for the `k`-th query of client `c` —
/// windows sweep the sensor-0 value range so batches vary without RNG.
fn query_window(c: usize, k: usize) -> (f64, f64) {
    let lo = 12.0 + ((c * 5 + k) % 9) as f64;
    (lo, lo + 6.0 + (k % 4) as f64)
}

fn main() {
    let args = parse_args();
    let (addr, daemon_thread) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let (local, handle) = Daemon::spawn("127.0.0.1:0").expect("spawn in-process daemon");
            (local.to_string(), Some(handle))
        }
    };
    eprintln!("loadgen: daemon at {addr}");
    let mut control = Client::connect(&addr).expect("connect control client");

    let mut rows: Vec<Json> = Vec::new();
    for &(preset, scale) in DEPLOYMENTS {
        let summary = control
            .deploy(preset, preset, Some(scale), None, None)
            .unwrap_or_else(|e| panic!("deploy {preset}: {e}"));
        eprintln!(
            "loadgen: deployed {preset} ({} nodes, scheme {}, seed {})",
            summary.nodes, summary.scheme, summary.seed
        );

        let epoch = control.step(preset, args.warmup).expect("warm-up step");
        assert_eq!(epoch, args.warmup, "warm-up must land on the requested epoch");
        let (fp_epoch, fp) = control.fingerprint(preset).expect("fingerprint");
        assert_eq!(fp_epoch, epoch);

        // Snapshot → restore round trip, timed from the client side.
        let image_path = std::env::temp_dir()
            .join(format!("dirqd-loadgen-{preset}.{}", dirqd::protocol::IMAGE_EXTENSION))
            .to_string_lossy()
            .into_owned();
        let t0 = Instant::now();
        let snap = control.snapshot(preset, &image_path).expect("snapshot");
        let snapshot_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(snap.fingerprint, fp, "snapshot must capture the fingerprinted state");

        let restored_name = format!("{preset}@restored");
        let t0 = Instant::now();
        let restored = control.restore(&restored_name, &image_path).expect("restore");
        let restore_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(restored.epoch, epoch, "restore must resume at the captured epoch");
        let (_, restored_fp) = control.fingerprint(&restored_name).expect("fingerprint");
        assert_eq!(
            restored_fp, fp,
            "{preset}: restored state fingerprint diverged from the live engine"
        );
        eprintln!(
            "loadgen: {preset} snapshot {} bytes ({snapshot_ms:.1} ms), \
             restore {restore_ms:.1} ms, fingerprint {}",
            snap.bytes,
            fingerprint_hex(fp)
        );

        if args.smoke {
            // Identical barriered query sequences must keep the original
            // and the restored engine on the same trajectory.
            for k in 0..3 {
                let (lo, hi) = query_window(0, k);
                let a = control.query(preset, 0, lo, hi, None).expect("query original");
                let b = control.query(&restored_name, 0, lo, hi, None).expect("query restored");
                assert_eq!(a.id, b.id, "id allocation diverged");
                assert_eq!(a.answered_epoch, b.answered_epoch, "batch resolution diverged");
                assert_eq!(a.sources_reached, b.sources_reached, "outcomes diverged");
                assert!(a.answered_epoch > a.epoch, "a batch must advance epochs");
            }
            let (_, fp_a) = control.fingerprint(preset).expect("fingerprint");
            let (_, fp_b) = control.fingerprint(&restored_name).expect("fingerprint");
            assert_eq!(fp_a, fp_b, "{preset}: trajectories diverged after identical query batches");
            eprintln!("loadgen: {preset} smoke ok (post-batch fingerprint {})", {
                fingerprint_hex(fp_a)
            });
            continue;
        }

        // Sustained throughput: `clients` concurrent blocking-query
        // loops against the live deployment.
        let completed = Arc::new(AtomicU64::new(0));
        let deadline = Instant::now() + std::time::Duration::from_secs_f64(args.duration_s);
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..args.clients {
                let completed = Arc::clone(&completed);
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect load client");
                    let mut k = 0usize;
                    while Instant::now() < deadline {
                        let (lo, hi) = query_window(c, k);
                        client.query(preset, (k % 2) as u8, lo, hi, None).expect("load query");
                        completed.fetch_add(1, Ordering::Relaxed);
                        k += 1;
                    }
                });
            }
        });
        let elapsed = t0.elapsed().as_secs_f64();
        let total = completed.load(Ordering::Relaxed);
        let qps = total as f64 / elapsed;
        eprintln!("loadgen: {preset} {total} queries in {elapsed:.2} s → {qps:.1} q/s");

        let mut row = Json::object();
        row.set("name", Json::Str(preset.to_string()));
        row.set("preset", Json::Str(preset.to_string()));
        row.set("scale", Json::Num(scale));
        row.set("scheme", Json::Str(summary.scheme.clone()));
        row.set("seed", Json::Num(summary.seed as f64));
        row.set("nodes", Json::Num(summary.nodes as f64));
        row.set("warmup_epochs", Json::Num(args.warmup as f64));
        row.set("state_fingerprint", Json::Str(fingerprint_hex(fp)));
        row.set("snapshot_bytes", Json::Num(snap.bytes as f64));
        row.set("snapshot_ms", Json::Num(snapshot_ms));
        row.set("restore_ms", Json::Num(restore_ms));
        row.set("queries_completed", Json::Num(total as f64));
        row.set("elapsed_s", Json::Num(elapsed));
        row.set("qps", Json::Num(qps));
        rows.push(row);
    }

    let deployments = control.status().expect("status");
    assert_eq!(
        deployments.len(),
        2 * DEPLOYMENTS.len(),
        "originals and restores should both be listed"
    );
    control.shutdown().expect("shutdown");
    if let Some(handle) = daemon_thread {
        handle.join().expect("daemon thread").expect("daemon serve");
        eprintln!("loadgen: daemon shut down cleanly");
    }

    if args.smoke {
        println!("loadgen --smoke: all invariants held");
        return;
    }

    let mut doc = Json::object();
    doc.set("schema", Json::Str("dirqd-loadgen/1".into()));
    doc.set("image_format_version", Json::Num(f64::from(SNAP_FORMAT_VERSION)));
    doc.set("clients", Json::Num(args.clients as f64));
    doc.set("duration_s", Json::Num(args.duration_s));
    doc.set("deployments", Json::Arr(rows));
    std::fs::write(&args.out, doc.render_pretty())
        .unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("loadgen: wrote {}", args.out);
}
