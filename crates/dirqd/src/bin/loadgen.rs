//! The dirqd load-generator harness.
//!
//! ```text
//! loadgen [--smoke] [--addr HOST:PORT] [--out BENCH_3.json]
//!         [--clients N] [--duration-s F] [--warmup EPOCHS]
//! ```
//!
//! Default mode spins up an in-process daemon (or targets `--addr`),
//! deploys two registry presets, and for each one:
//!
//! 1. steps a deterministic warm-up and records the engine's
//!    `state_fingerprint` (the reproducible half of the artifact —
//!    `record_goldens --check` re-derives it),
//! 2. measures snapshot and restore round trips (image size + latency)
//!    and asserts the restored deployment fingerprints equal,
//! 3. runs the barriered latency-histogram phase ([`loadmodel`]):
//!    per-query wall-ms percentiles plus the deterministic
//!    epochs-to-answer histogram, verified against the engine-level
//!    reference replay,
//! 4. drives `--clients` concurrent connections of blocking queries for
//!    `--duration-s` and records sustained queries/sec,
//! 5. repeats the throughput phase in non-blocking mode (async submit +
//!    a drain loop) and asserts the sustained rate is no worse than the
//!    blocking baseline,
//!
//! then writes `BENCH_3.json`. `--smoke` is the CI mode: shorter
//! warm-up, barriered blocking *and* async query sequences against both
//! the original and the restored deployment (trajectories must stay
//! fingerprint-identical regardless of poll timing), a pipelined
//! drain-completeness check (every submitted id drained exactly once),
//! a deterministic `queue_full` probe, a many-deployments fleet probe
//! (64 deployments multiplexed over a 4-thread serving pool, each
//! drain returning only its own completions), a clean shutdown, and no
//! artifact write — any violated invariant exits non-zero.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dirq_sim::json::Json;
use dirq_sim::snap::SNAP_FORMAT_VERSION;
use dirqd::loadmodel::{
    hist_query, histogram_counts, percentile, reference_epochs_histogram, HIST_QUERIES,
};
use dirqd::protocol::fingerprint_hex;
use dirqd::{Client, Daemon, DaemonOptions, DeployOptions};

/// The benchmarked deployments: `(preset, epoch-budget scale)`. Scaled
/// to ~10 % so a full loadgen pass stays in CI seconds while the
/// engines still cross their measurement windows.
const DEPLOYMENTS: &[(&str, f64)] = &[("dense_grid_100", 0.1), ("hotspot_workload_200", 0.1)];

/// Ids submitted by the smoke mode's pipelined drain-completeness check.
const SMOKE_PIPELINE_QUERIES: usize = 16;

/// Deployments in the smoke mode's many-deployments fleet probe.
const FLEET_SIZE: usize = 64;

/// Serving-pool size the fleet probe multiplexes the fleet over.
const FLEET_THREADS: usize = 4;

struct Args {
    smoke: bool,
    addr: Option<String>,
    out: String,
    clients: usize,
    duration_s: f64,
    warmup: u64,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        smoke: false,
        addr: None,
        out: String::from("BENCH_3.json"),
        clients: 4,
        duration_s: 2.0,
        warmup: 60,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match a.as_str() {
            "--smoke" => {
                parsed.smoke = true;
                parsed.warmup = 20;
            }
            "--addr" => parsed.addr = Some(value("--addr")),
            "--out" => parsed.out = value("--out"),
            "--clients" => parsed.clients = value("--clients").parse().expect("--clients: usize"),
            "--duration-s" => {
                parsed.duration_s = value("--duration-s").parse().expect("--duration-s: f64");
            }
            "--warmup" => parsed.warmup = value("--warmup").parse().expect("--warmup: u64"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--smoke] [--addr HOST:PORT] [--out PATH] \
                     [--clients N] [--duration-s F] [--warmup EPOCHS]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    parsed
}

/// Deterministic query content for the `k`-th query of client `c` —
/// windows sweep the sensor-0 value range so batches vary without RNG.
fn query_window(c: usize, k: usize) -> (f64, f64) {
    let lo = 12.0 + ((c * 5 + k) % 9) as f64;
    (lo, lo + 6.0 + (k % 4) as f64)
}

/// Submit one async query, retrying while the admission queue is full —
/// the throughput loops treat `queue_full` as backpressure.
fn submit_with_backpressure(
    client: &mut Client,
    deployment: &str,
    stype: u8,
    lo: f64,
    hi: f64,
    tag: &str,
) -> u64 {
    loop {
        match client.query_async(deployment, stype, lo, hi, None, Some(tag)) {
            Ok((id, _)) => return id,
            Err(e) if e.kind() == Some("queue_full") => {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => panic!("async submit: {e}"),
        }
    }
}

/// The smoke mode's per-preset checks beyond the snapshot/restore
/// equality: blocking and async barriered sequences must keep the
/// original and restored deployments on identical trajectories (the
/// restored side resolves through `drain`, the original through `poll`,
/// pinning poll-timing invariance), and a pipelined burst must drain
/// back exactly once per id.
fn run_smoke_checks(control: &mut Client, preset: &str, restored_name: &str) {
    // Identical barriered blocking sequences.
    for k in 0..3 {
        let (lo, hi) = query_window(0, k);
        let a = control.query(preset, 0, lo, hi, None).expect("query original");
        let b = control.query(restored_name, 0, lo, hi, None).expect("query restored");
        assert_eq!(a.id, b.id, "id allocation diverged");
        assert_eq!(a.answered_epoch, b.answered_epoch, "batch resolution diverged");
        assert_eq!(a.sources_reached, b.sources_reached, "outcomes diverged");
        assert!(a.answered_epoch > a.epoch, "a batch must advance epochs");
        assert_eq!(a.epochs_to_answer, a.answered_epoch - a.epoch);
    }

    // Identical barriered async sequences: original resolves via poll,
    // restored via drain — the trajectories must not care.
    let mut drain_cursor = control.drain(restored_name, u64::MAX).expect("drain head").cursor;
    for k in 0..3 {
        let (stype, lo, hi) = hist_query(k);
        let (id_a, submitted_a) =
            control.query_async(preset, stype, lo, hi, None, None).expect("async original");
        let a = loop {
            match control.poll(preset, id_a).expect("poll original") {
                Some(report) => break report,
                None => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        };
        let (id_b, submitted_b) =
            control.query_async(restored_name, stype, lo, hi, None, None).expect("async restored");
        let b = loop {
            let drained = control.drain(restored_name, drain_cursor).expect("drain restored");
            assert!(drained.cursor >= drain_cursor, "drain cursor must be monotone");
            drain_cursor = drained.cursor;
            if let Some((_, report)) = drained.results.iter().find(|(_, r)| r.id == id_b) {
                break *report;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        assert_eq!(id_a, id_b, "async id allocation diverged");
        assert_eq!(submitted_a, submitted_b, "async injection epochs diverged");
        assert_eq!(a.answered_epoch, b.answered_epoch, "async resolution diverged");
        assert_eq!(a.sources_reached, b.sources_reached, "async outcomes diverged");
        // A completed id stays pollable (idempotent reads).
        let again = control.poll(preset, id_a).expect("re-poll").expect("still done");
        assert_eq!(again.answered_epoch, a.answered_epoch);
    }
    let (_, fp_a) = control.fingerprint(preset).expect("fingerprint");
    let (_, fp_b) = control.fingerprint(restored_name).expect("fingerprint");
    assert_eq!(fp_a, fp_b, "{preset}: trajectories diverged across blocking/async sequences");

    // Pipelined drain-completeness: a burst of async submissions, no
    // barrier, must come back from the drain loop exactly once each.
    let head = control.drain(preset, u64::MAX).expect("drain head").cursor;
    let mut submitted = Vec::new();
    for k in 0..SMOKE_PIPELINE_QUERIES {
        let (stype, lo, hi) = hist_query(k);
        let (id, _) =
            control.query_async(preset, stype, lo, hi, None, Some("pipeline")).expect("submit");
        submitted.push(id);
    }
    let mut seen = std::collections::HashMap::new();
    let mut cursor = head;
    while seen.len() < submitted.len() {
        let drained = control.drain(preset, cursor).expect("drain");
        assert!(drained.cursor >= cursor, "drain cursor must be monotone");
        cursor = drained.cursor;
        for (_, report) in &drained.results {
            *seen.entry(report.id).or_insert(0u64) += 1;
        }
        if drained.results.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    for id in &submitted {
        assert_eq!(seen.get(id), Some(&1), "id {id} must drain exactly once");
    }
    assert_eq!(seen.len(), submitted.len(), "drain returned ids that were never submitted");
    eprintln!(
        "loadgen: {preset} smoke ok ({SMOKE_PIPELINE_QUERIES} pipelined ids drained exactly \
         once, post-batch fingerprint {})",
        fingerprint_hex(fp_a)
    );
}

/// The smoke mode's many-deployments probe: a dedicated in-process
/// daemon with a [`FLEET_THREADS`]-worker serving pool hosting
/// [`FLEET_SIZE`] scaled-down deployments (distinct seeds). `status`
/// must list the whole fleet, and an async query submitted to each
/// deployment must come back from *that deployment's* drain exactly
/// once — no cross-deployment bleed through the shared pool.
fn run_fleet_probe() {
    let (addr, handle) = Daemon::spawn_with(
        "127.0.0.1:0",
        DaemonOptions { serving_threads: FLEET_THREADS, recover: None },
    )
    .expect("spawn fleet daemon");
    let addr = addr.to_string();
    let mut control = Client::connect(&addr).expect("connect fleet control");
    let names: Vec<String> = (0..FLEET_SIZE).map(|i| format!("fleet-{i:02}")).collect();
    for (i, name) in names.iter().enumerate() {
        control
            .deploy(
                name,
                DEPLOYMENTS[0].0,
                &DeployOptions {
                    scale: Some(0.05),
                    seed: Some(1000 + i as u64),
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("deploy {name}: {e}"));
    }
    let status = control.status_full().expect("fleet status");
    assert_eq!(status.serving_threads, FLEET_THREADS as u64, "pool size must be reported");
    assert_eq!(status.deployments.len(), FLEET_SIZE, "status must list the whole fleet");
    for (row, name) in status.deployments.iter().zip(&names) {
        assert_eq!(&row.name, name, "status rows must be name-ascending");
    }

    // One async query per deployment, all pipelined before any drain so
    // the pool is saturated with concurrent turns, then drain each
    // deployment and require exactly its own submission back.
    let mut submitted = Vec::with_capacity(FLEET_SIZE);
    for (i, name) in names.iter().enumerate() {
        let (lo, hi) = query_window(i, 0);
        let (id, _) =
            control.query_async(name, 0, lo, hi, None, Some("fleet")).expect("fleet submit");
        submitted.push(id);
    }
    for (name, &expect_id) in names.iter().zip(&submitted) {
        let mut cursor = 0;
        let mut got = Vec::new();
        loop {
            let drained = control.drain(name, cursor).expect("fleet drain");
            cursor = drained.cursor;
            got.extend(drained.results.iter().map(|(_, r)| r.id));
            if drained.pending == 0 && drained.results.is_empty() {
                break;
            }
            if drained.results.is_empty() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        assert_eq!(
            got,
            vec![expect_id],
            "{name}: drain must return exactly its own completion, exactly once"
        );
    }
    control.shutdown().expect("fleet shutdown");
    handle.join().expect("fleet daemon thread").expect("fleet daemon serve");
    eprintln!(
        "loadgen: fleet probe ok ({FLEET_SIZE} deployments over {FLEET_THREADS} serving threads, \
         no cross-deployment bleed)"
    );
}

/// The barriered latency-histogram phase: submit → wait → next, through
/// the async path end to end. Returns (wall-ms samples, epochs-to-answer
/// samples), the latter verified against the engine-level reference.
fn run_histogram_phase(
    control: &mut Client,
    preset: &str,
    scale: f64,
    warmup: u64,
) -> (Vec<f64>, Vec<u64>) {
    let mut wall_ms = Vec::with_capacity(HIST_QUERIES);
    let mut epochs = Vec::with_capacity(HIST_QUERIES);
    for k in 0..HIST_QUERIES {
        let (stype, lo, hi) = hist_query(k);
        let t0 = Instant::now();
        let (id, _) = control.query_async(preset, stype, lo, hi, None, None).expect("hist submit");
        let report = loop {
            match control.poll(preset, id).expect("hist poll") {
                Some(r) => break r,
                None => std::thread::yield_now(),
            }
        };
        wall_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        epochs.push(report.epochs_to_answer);
    }
    let reference = reference_epochs_histogram(preset, scale, warmup);
    assert_eq!(
        epochs, reference,
        "{preset}: daemon epochs-to-answer diverged from the engine-level replay"
    );
    (wall_ms, epochs)
}

/// One throughput phase: `clients` threads submitting for `duration_s`.
/// Blocking mode waits per query; async mode pipelines submissions and
/// a dedicated drainer collects completions until every submitted id
/// has come back. Returns `(completed, elapsed_s)`.
fn run_throughput_phase(
    addr: &str,
    control: &mut Client,
    preset: &str,
    clients: usize,
    duration_s: f64,
    non_blocking: bool,
) -> (u64, f64) {
    let completed = Arc::new(AtomicU64::new(0));
    let submitting = Arc::new(AtomicBool::new(true));
    let submitted = Arc::new(AtomicU64::new(0));
    let head = control.drain(preset, u64::MAX).expect("drain head").cursor;
    let deadline = Instant::now() + std::time::Duration::from_secs_f64(duration_s);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let submitters: Vec<_> = (0..clients)
            .map(|c| {
                let completed = Arc::clone(&completed);
                let submitted = Arc::clone(&submitted);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect load client");
                    let tag = format!("client-{c}");
                    let mut k = 0usize;
                    while Instant::now() < deadline {
                        let (lo, hi) = query_window(c, k);
                        if non_blocking {
                            submit_with_backpressure(
                                &mut client,
                                preset,
                                (k % 2) as u8,
                                lo,
                                hi,
                                &tag,
                            );
                            submitted.fetch_add(1, Ordering::Relaxed);
                        } else {
                            client.query(preset, (k % 2) as u8, lo, hi, None).expect("load query");
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        k += 1;
                    }
                })
            })
            .collect();
        if non_blocking {
            // Drain concurrently with submission, then keep draining
            // until every submitted id has come back. The flag flips
            // only after every submitter has joined, so `submitted` is
            // final by the time the drainer can observe `false`.
            let completed = Arc::clone(&completed);
            let submitting_r = Arc::clone(&submitting);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect drain client");
                let mut cursor = head;
                loop {
                    let drained = client.drain(preset, cursor).expect("drain");
                    cursor = drained.cursor;
                    completed.fetch_add(drained.results.len() as u64, Ordering::Relaxed);
                    let done = !submitting_r.load(Ordering::Acquire)
                        && completed.load(Ordering::Relaxed) >= submitted.load(Ordering::Relaxed);
                    if done {
                        break;
                    }
                    if drained.results.is_empty() {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
            });
            let submitting_w = Arc::clone(&submitting);
            scope.spawn(move || {
                for s in submitters {
                    s.join().expect("submitter thread");
                }
                submitting_w.store(false, Ordering::Release);
            });
        }
    });
    (completed.load(Ordering::Relaxed), t0.elapsed().as_secs_f64())
}

fn main() {
    let args = parse_args();
    let (addr, daemon_thread) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let (local, handle) = Daemon::spawn("127.0.0.1:0").expect("spawn in-process daemon");
            (local.to_string(), Some(handle))
        }
    };
    eprintln!("loadgen: daemon at {addr}");
    let mut control = Client::connect(&addr).expect("connect control client");

    let mut rows: Vec<Json> = Vec::new();
    for &(preset, scale) in DEPLOYMENTS {
        let summary = control
            .deploy(preset, preset, &DeployOptions { scale: Some(scale), ..Default::default() })
            .unwrap_or_else(|e| panic!("deploy {preset}: {e}"));
        eprintln!(
            "loadgen: deployed {preset} ({} nodes, scheme {}, seed {})",
            summary.nodes, summary.scheme, summary.seed
        );

        let epoch = control.step(preset, args.warmup).expect("warm-up step");
        assert_eq!(epoch, args.warmup, "warm-up must land on the requested epoch");
        let (fp_epoch, fp) = control.fingerprint(preset).expect("fingerprint");
        assert_eq!(fp_epoch, epoch);

        // Snapshot → restore round trip, timed from the client side.
        let image_path = std::env::temp_dir()
            .join(format!("dirqd-loadgen-{preset}.{}", dirqd::protocol::IMAGE_EXTENSION))
            .to_string_lossy()
            .into_owned();
        let t0 = Instant::now();
        let snap = control.snapshot(preset, &image_path).expect("snapshot");
        let snapshot_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(snap.fingerprint, fp, "snapshot must capture the fingerprinted state");

        let restored_name = format!("{preset}@restored");
        let t0 = Instant::now();
        let restored = control
            .restore(&restored_name, &image_path, &DeployOptions::default())
            .expect("restore");
        let restore_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(restored.epoch, epoch, "restore must resume at the captured epoch");
        let (_, restored_fp) = control.fingerprint(&restored_name).expect("fingerprint");
        assert_eq!(
            restored_fp, fp,
            "{preset}: restored state fingerprint diverged from the live engine"
        );
        eprintln!(
            "loadgen: {preset} snapshot {} bytes ({snapshot_ms:.1} ms), \
             restore {restore_ms:.1} ms, fingerprint {}",
            snap.bytes,
            fingerprint_hex(fp)
        );

        if args.smoke {
            run_smoke_checks(&mut control, preset, &restored_name);
            continue;
        }

        // Barriered latency histogram (async end to end, verified
        // against the engine-level reference).
        let (wall_ms, epochs_hist) = run_histogram_phase(&mut control, preset, scale, args.warmup);
        eprintln!(
            "loadgen: {preset} histogram p50 {:.2} ms / p99 {:.2} ms wall, epochs-to-answer {:?}",
            percentile(&wall_ms, 50.0),
            percentile(&wall_ms, 99.0),
            histogram_counts(&epochs_hist)
        );

        // Sustained throughput, blocking then non-blocking.
        let (total, elapsed) =
            run_throughput_phase(&addr, &mut control, preset, args.clients, args.duration_s, false);
        let qps = total as f64 / elapsed;
        eprintln!("loadgen: {preset} blocking {total} queries in {elapsed:.2} s → {qps:.1} q/s");

        let (async_total, async_elapsed) =
            run_throughput_phase(&addr, &mut control, preset, args.clients, args.duration_s, true);
        let async_qps = async_total as f64 / async_elapsed;
        eprintln!(
            "loadgen: {preset} async {async_total} queries in {async_elapsed:.2} s \
             → {async_qps:.1} q/s"
        );
        assert!(
            async_qps >= qps,
            "{preset}: non-blocking throughput ({async_qps:.1} q/s) fell below the blocking \
             baseline ({qps:.1} q/s)"
        );

        let mut row = Json::object();
        row.set("name", Json::Str(preset.to_string()));
        row.set("preset", Json::Str(preset.to_string()));
        row.set("scale", Json::Num(scale));
        row.set("scheme", Json::Str(summary.scheme.clone()));
        row.set("seed", Json::from_u64(summary.seed));
        row.set("nodes", Json::from_u64(summary.nodes as u64));
        row.set("warmup_epochs", Json::from_u64(args.warmup));
        row.set("state_fingerprint", Json::Str(fingerprint_hex(fp)));
        row.set("snapshot_bytes", Json::from_u64(snap.bytes));
        row.set("snapshot_ms", Json::Num(snapshot_ms));
        row.set("restore_ms", Json::Num(restore_ms));
        row.set("hist_queries", Json::from_u64(HIST_QUERIES as u64));
        row.set(
            "epochs_to_answer",
            Json::Arr(
                histogram_counts(&epochs_hist)
                    .into_iter()
                    .map(|(l, n)| Json::Arr(vec![Json::from_u64(l), Json::from_u64(n)]))
                    .collect(),
            ),
        );
        row.set("latency_ms_p50", Json::Num(percentile(&wall_ms, 50.0)));
        row.set("latency_ms_p90", Json::Num(percentile(&wall_ms, 90.0)));
        row.set("latency_ms_p99", Json::Num(percentile(&wall_ms, 99.0)));
        row.set("queries_completed", Json::from_u64(total));
        row.set("elapsed_s", Json::Num(elapsed));
        row.set("qps", Json::Num(qps));
        row.set("async_queries_completed", Json::from_u64(async_total));
        row.set("async_elapsed_s", Json::Num(async_elapsed));
        row.set("async_qps", Json::Num(async_qps));
        rows.push(row);
    }

    if args.smoke {
        // Deterministic queue_full: a zero-capacity queue rejects every
        // submission with the typed error.
        let queue0 = "queue0";
        control
            .deploy(
                queue0,
                DEPLOYMENTS[0].0,
                &DeployOptions {
                    scale: Some(DEPLOYMENTS[0].1),
                    queue_cap: Some(0),
                    ..Default::default()
                },
            )
            .expect("deploy queue0");
        let err = control
            .query_async(queue0, 0, 12.0, 20.0, None, None)
            .expect_err("zero-capacity queue must reject");
        assert_eq!(err.kind(), Some("queue_full"), "wrong rejection: {err}");
        eprintln!("loadgen: queue_full probe ok");
    }

    let deployments = control.status().expect("status");
    let expected = 2 * DEPLOYMENTS.len() + usize::from(args.smoke);
    assert_eq!(deployments.len(), expected, "originals and restores should both be listed");
    control.shutdown().expect("shutdown");
    if let Some(handle) = daemon_thread {
        handle.join().expect("daemon thread").expect("daemon serve");
        eprintln!("loadgen: daemon shut down cleanly");
    }

    if args.smoke {
        run_fleet_probe();
        println!("loadgen --smoke: all invariants held");
        return;
    }

    let mut doc = Json::object();
    doc.set("schema", Json::Str("dirqd-loadgen/2".into()));
    doc.set("image_format_version", Json::Num(f64::from(SNAP_FORMAT_VERSION)));
    doc.set("clients", Json::from_u64(args.clients as u64));
    doc.set("duration_s", Json::Num(args.duration_s));
    doc.set("deployments", Json::Arr(rows));
    std::fs::write(&args.out, doc.render_pretty())
        .unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("loadgen: wrote {}", args.out);
}
