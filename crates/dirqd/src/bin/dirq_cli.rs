//! One-shot protocol calls from the shell.
//!
//! ```text
//! dirq-cli [--addr HOST:PORT] [--raw FIELD] <command> [args…]
//!
//! commands:
//!   deploy NAME PRESET [--scale F] [--scheme LABEL] [--seed N]
//!          [--policy fifo|rr] [--queue-cap N] [--admit-per-epoch N]
//!          [--checkpoint-every EPOCHS --checkpoint-dir DIR]
//!          [--upkeep-workers N]
//!   query DEPLOYMENT STYPE LO HI [--region X0 Y0 X1 Y1] [--async] [--client TAG]
//!   poll DEPLOYMENT ID
//!   drain DEPLOYMENT [CURSOR]
//!   step DEPLOYMENT EPOCHS
//!   status
//!   fingerprint DEPLOYMENT
//!   snapshot DEPLOYMENT PATH
//!   restore NAME PATH
//!   shutdown
//! ```
//!
//! Prints the daemon's JSON response (pretty) on success; exits
//! non-zero with the error on stderr otherwise. `--raw FIELD` instead
//! prints just that top-level response field — strings unquoted,
//! everything else as compact JSON — so scripts capture ids, cursors
//! and fingerprints without scraping pretty output; a missing field is
//! an error.

use dirq_sim::json::Json;
use dirqd::Client;

const USAGE: &str = "usage: dirq-cli [--addr HOST:PORT] [--raw FIELD] <command> [args…]
  --raw FIELD   print only that top-level response field (for scripts)
commands:
  deploy NAME PRESET [--scale F] [--scheme LABEL] [--seed N]
         [--policy fifo|rr] [--queue-cap N] [--admit-per-epoch N]
         [--checkpoint-every EPOCHS --checkpoint-dir DIR]
         [--upkeep-workers N]
  query DEPLOYMENT STYPE LO HI [--region X0 Y0 X1 Y1] [--async] [--client TAG]
  poll DEPLOYMENT ID
  drain DEPLOYMENT [CURSOR]
  step DEPLOYMENT EPOCHS
  status
  fingerprint DEPLOYMENT
  snapshot DEPLOYMENT PATH
  restore NAME PATH
  shutdown";

fn usage_exit() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_num(arg: &str, what: &str) -> f64 {
    arg.parse().unwrap_or_else(|_| {
        eprintln!("dirq-cli: {what} must be a number, got {arg:?}");
        std::process::exit(2);
    })
}

/// Parse an unsigned integer and wrap it losslessly for the wire —
/// seeds and query ids are u64s and must not round through `f64`.
fn parse_u64(arg: &str, what: &str) -> Json {
    let v: u64 = arg.parse().unwrap_or_else(|_| {
        eprintln!("dirq-cli: {what} must be an unsigned integer, got {arg:?}");
        std::process::exit(2);
    });
    Json::from_u64(v)
}

fn main() {
    let mut addr = String::from("127.0.0.1:4710");
    let mut raw: Option<String> = None;
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    loop {
        match args.first().map(String::as_str) {
            Some("--addr") => {
                args.remove(0);
                if args.is_empty() {
                    usage_exit();
                }
                addr = args.remove(0);
            }
            Some("--raw") => {
                args.remove(0);
                if args.is_empty() {
                    usage_exit();
                }
                raw = Some(args.remove(0));
            }
            _ => break,
        }
    }
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        usage_exit();
    }
    let command = args.remove(0);

    // Build the request as raw protocol JSON — the CLI is a thin veneer.
    let mut req = Json::object();
    req.set("cmd", Json::Str(command.clone()));
    match command.as_str() {
        "deploy" => {
            if args.len() < 2 {
                usage_exit();
            }
            req.set("name", Json::Str(args[0].clone()));
            req.set("preset", Json::Str(args[1].clone()));
            let mut rest = args[2..].iter();
            while let Some(flag) = rest.next() {
                let value = rest.next().unwrap_or_else(|| usage_exit());
                match flag.as_str() {
                    "--scale" => req.set("scale", Json::Num(parse_num(value, "--scale"))),
                    "--scheme" => req.set("scheme", Json::Str(value.clone())),
                    "--seed" => req.set("seed", parse_u64(value, "--seed")),
                    "--policy" => req.set("policy", Json::Str(value.clone())),
                    "--queue-cap" => req.set("queue_cap", parse_u64(value, "--queue-cap")),
                    "--admit-per-epoch" => {
                        req.set("admit_per_epoch", parse_u64(value, "--admit-per-epoch"))
                    }
                    "--checkpoint-every" => {
                        req.set("checkpoint_every_epochs", parse_u64(value, "--checkpoint-every"))
                    }
                    "--checkpoint-dir" => req.set("checkpoint_dir", Json::Str(value.clone())),
                    "--upkeep-workers" => {
                        req.set("upkeep_workers", parse_u64(value, "--upkeep-workers"))
                    }
                    _ => usage_exit(),
                };
            }
        }
        "query" => {
            if args.len() < 4 {
                usage_exit();
            }
            req.set("deployment", Json::Str(args[0].clone()));
            req.set("stype", Json::Num(parse_num(&args[1], "STYPE")));
            req.set("lo", Json::Num(parse_num(&args[2], "LO")));
            req.set("hi", Json::Num(parse_num(&args[3], "HI")));
            let mut rest = args[4..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--async" => {
                        req.set("async", Json::Bool(true));
                    }
                    "--client" => {
                        let tag = rest.next().unwrap_or_else(|| usage_exit());
                        req.set("client", Json::Str(tag.clone()));
                    }
                    "--region" => {
                        let corners: Vec<Json> = (0..4)
                            .map(|_| {
                                let c = rest.next().unwrap_or_else(|| usage_exit());
                                Json::Num(parse_num(c, "--region corner"))
                            })
                            .collect();
                        req.set("region", Json::Arr(corners));
                    }
                    _ => usage_exit(),
                }
            }
        }
        "poll" => {
            if args.len() != 2 {
                usage_exit();
            }
            req.set("deployment", Json::Str(args[0].clone()));
            req.set("id", parse_u64(&args[1], "ID"));
        }
        "drain" => {
            if args.is_empty() || args.len() > 2 {
                usage_exit();
            }
            req.set("deployment", Json::Str(args[0].clone()));
            if let Some(cursor) = args.get(1) {
                req.set("cursor", parse_u64(cursor, "CURSOR"));
            }
        }
        "step" => {
            if args.len() != 2 {
                usage_exit();
            }
            req.set("deployment", Json::Str(args[0].clone()));
            req.set("epochs", Json::Num(parse_num(&args[1], "EPOCHS")));
        }
        "status" | "shutdown" => {
            if !args.is_empty() {
                usage_exit();
            }
        }
        "fingerprint" => {
            if args.len() != 1 {
                usage_exit();
            }
            req.set("deployment", Json::Str(args[0].clone()));
        }
        "snapshot" => {
            if args.len() != 2 {
                usage_exit();
            }
            req.set("deployment", Json::Str(args[0].clone()));
            req.set("path", Json::Str(args[1].clone()));
        }
        "restore" => {
            if args.len() != 2 {
                usage_exit();
            }
            req.set("name", Json::Str(args[0].clone()));
            req.set("path", Json::Str(args[1].clone()));
        }
        _ => usage_exit(),
    }

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dirq-cli: connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    match client.call(&req) {
        Ok(response) => match raw {
            None => print!("{}", response.render_pretty()),
            Some(field) => match response.get(&field) {
                Some(Json::Str(s)) => println!("{s}"),
                Some(v) => println!("{}", v.render()),
                None => {
                    eprintln!("dirq-cli: response has no field {field:?}");
                    std::process::exit(1);
                }
            },
        },
        Err(e) => {
            eprintln!("dirq-cli: {e}");
            std::process::exit(1);
        }
    }
}
