//! One-shot protocol calls from the shell.
//!
//! ```text
//! dirq-cli [--addr HOST:PORT] <command> [args…]
//!
//! commands:
//!   deploy NAME PRESET [--scale F] [--scheme LABEL] [--seed N]
//!   query DEPLOYMENT STYPE LO HI [--region X0 Y0 X1 Y1]
//!   step DEPLOYMENT EPOCHS
//!   status
//!   fingerprint DEPLOYMENT
//!   snapshot DEPLOYMENT PATH
//!   restore NAME PATH
//!   shutdown
//! ```
//!
//! Prints the daemon's JSON response (pretty) on success; exits
//! non-zero with the error on stderr otherwise.

use dirq_sim::json::Json;
use dirqd::Client;

const USAGE: &str = "usage: dirq-cli [--addr HOST:PORT] <command> [args…]
commands:
  deploy NAME PRESET [--scale F] [--scheme LABEL] [--seed N]
  query DEPLOYMENT STYPE LO HI [--region X0 Y0 X1 Y1]
  step DEPLOYMENT EPOCHS
  status
  fingerprint DEPLOYMENT
  snapshot DEPLOYMENT PATH
  restore NAME PATH
  shutdown";

fn usage_exit() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_num(arg: &str, what: &str) -> f64 {
    arg.parse().unwrap_or_else(|_| {
        eprintln!("dirq-cli: {what} must be a number, got {arg:?}");
        std::process::exit(2);
    })
}

fn main() {
    let mut addr = String::from("127.0.0.1:4710");
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--addr") {
        args.remove(0);
        if args.is_empty() {
            usage_exit();
        }
        addr = args.remove(0);
    }
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        usage_exit();
    }
    let command = args.remove(0);

    // Build the request as raw protocol JSON — the CLI is a thin veneer.
    let mut req = Json::object();
    req.set("cmd", Json::Str(command.clone()));
    match command.as_str() {
        "deploy" => {
            if args.len() < 2 {
                usage_exit();
            }
            req.set("name", Json::Str(args[0].clone()));
            req.set("preset", Json::Str(args[1].clone()));
            let mut rest = args[2..].iter();
            while let Some(flag) = rest.next() {
                let value = rest.next().unwrap_or_else(|| usage_exit());
                match flag.as_str() {
                    "--scale" => req.set("scale", Json::Num(parse_num(value, "--scale"))),
                    "--scheme" => req.set("scheme", Json::Str(value.clone())),
                    "--seed" => req.set("seed", Json::Num(parse_num(value, "--seed"))),
                    _ => usage_exit(),
                };
            }
        }
        "query" => {
            if args.len() < 4 {
                usage_exit();
            }
            req.set("deployment", Json::Str(args[0].clone()));
            req.set("stype", Json::Num(parse_num(&args[1], "STYPE")));
            req.set("lo", Json::Num(parse_num(&args[2], "LO")));
            req.set("hi", Json::Num(parse_num(&args[3], "HI")));
            match args.get(4).map(String::as_str) {
                None => {}
                Some("--region") if args.len() == 9 => {
                    let corners: Vec<Json> = args[5..9]
                        .iter()
                        .map(|a| Json::Num(parse_num(a, "--region corner")))
                        .collect();
                    req.set("region", Json::Arr(corners));
                }
                _ => usage_exit(),
            }
        }
        "step" => {
            if args.len() != 2 {
                usage_exit();
            }
            req.set("deployment", Json::Str(args[0].clone()));
            req.set("epochs", Json::Num(parse_num(&args[1], "EPOCHS")));
        }
        "status" | "shutdown" => {
            if !args.is_empty() {
                usage_exit();
            }
        }
        "fingerprint" => {
            if args.len() != 1 {
                usage_exit();
            }
            req.set("deployment", Json::Str(args[0].clone()));
        }
        "snapshot" => {
            if args.len() != 2 {
                usage_exit();
            }
            req.set("deployment", Json::Str(args[0].clone()));
            req.set("path", Json::Str(args[1].clone()));
        }
        "restore" => {
            if args.len() != 2 {
                usage_exit();
            }
            req.set("name", Json::Str(args[0].clone()));
            req.set("path", Json::Str(args[1].clone()));
        }
        _ => usage_exit(),
    }

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dirq-cli: connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    match client.call(&req) {
        Ok(response) => print!("{}", response.render_pretty()),
        Err(e) => {
            eprintln!("dirq-cli: {e}");
            std::process::exit(1);
        }
    }
}
