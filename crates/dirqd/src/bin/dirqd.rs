//! The daemon binary: bind a TCP endpoint and serve deployments until a
//! client issues `shutdown`.
//!
//! ```text
//! dirqd [--addr 127.0.0.1:4710] [--print-addr]
//! ```
//!
//! `--addr 127.0.0.1:0` picks an ephemeral port; `--print-addr` writes
//! the bound address to stdout (first line) so scripts can connect.

use dirqd::Daemon;

fn main() {
    let mut addr = String::from("127.0.0.1:4710");
    let mut print_addr = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().expect("--addr needs HOST:PORT"),
            "--print-addr" => print_addr = true,
            "--help" | "-h" => {
                eprintln!("usage: dirqd [--addr HOST:PORT] [--print-addr]");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let daemon = match Daemon::bind(&addr) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dirqd: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let local = daemon.local_addr().expect("bound address");
    if print_addr {
        println!("{local}");
    }
    eprintln!("dirqd: serving on {local}");
    if let Err(e) = daemon.serve() {
        eprintln!("dirqd: serve: {e}");
        std::process::exit(1);
    }
    eprintln!("dirqd: shut down");
}
