//! The daemon binary: bind a TCP endpoint and serve deployments until a
//! client issues `shutdown`.
//!
//! ```text
//! dirqd [--addr 127.0.0.1:4710] [--print-addr]
//!       [--serving-threads N] [--recover DIR]
//! ```
//!
//! `--addr 127.0.0.1:0` picks an ephemeral port; `--print-addr` writes
//! the bound address to stdout (first line) so scripts can connect.
//! `--serving-threads N` sizes the serving pool deployments are
//! multiplexed over (default: one worker per available hardware
//! thread). `--recover DIR` scans `DIR` for rotating auto-checkpoint
//! images and resumes every recoverable deployment before accepting
//! connections.

use dirqd::{Daemon, DaemonOptions};

fn main() {
    let mut addr = String::from("127.0.0.1:4710");
    let mut print_addr = false;
    let mut options = DaemonOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().expect("--addr needs HOST:PORT"),
            "--print-addr" => print_addr = true,
            "--serving-threads" => {
                let n = args.next().expect("--serving-threads needs a count");
                options.serving_threads = n.parse().unwrap_or_else(|_| {
                    eprintln!("dirqd: --serving-threads must be an unsigned integer, got {n:?}");
                    std::process::exit(2);
                });
            }
            "--recover" => {
                options.recover = Some(args.next().expect("--recover needs a directory"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: dirqd [--addr HOST:PORT] [--print-addr] \
                     [--serving-threads N] [--recover DIR]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let daemon = match Daemon::bind_with(&addr, options) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dirqd: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let local = daemon.local_addr().expect("bound address");
    if print_addr {
        println!("{local}");
    }
    eprintln!("dirqd: serving on {local}");
    if let Err(e) = daemon.serve() {
        eprintln!("dirqd: serve: {e}");
        std::process::exit(1);
    }
    eprintln!("dirqd: shut down");
}
