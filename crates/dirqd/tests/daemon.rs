//! End-to-end daemon tests over real TCP sockets: deploy, step, query
//! (blocking and async), poll/drain, snapshot, restore, fingerprint
//! equality, the typed protocol error surface and clean shutdowns — the
//! same invariants `loadgen --smoke` gates in CI, at debug-tier scale.

use std::time::Duration;

use dirq_sim::json::Json;
use dirqd::loadmodel::{replay_serving, ServingOp};
use dirqd::{Client, ClientError, Daemon, DaemonOptions, DeployOptions};

/// Spawn a daemon, run `body` against a fresh client, then shut the
/// daemon down and join its serving thread.
fn with_daemon(body: impl FnOnce(std::net::SocketAddr, &mut Client)) {
    with_daemon_opts(DaemonOptions::default(), body);
}

/// [`with_daemon`] with explicit [`DaemonOptions`] (pool size,
/// recovery directory).
fn with_daemon_opts(options: DaemonOptions, body: impl FnOnce(std::net::SocketAddr, &mut Client)) {
    let (addr, daemon) = Daemon::spawn_with("127.0.0.1:0", options).expect("spawn daemon");
    let mut c = Client::connect(addr).expect("connect");
    body(addr, &mut c);
    c.shutdown().expect("shutdown");
    daemon.join().expect("join daemon thread").expect("daemon serve");
}

/// The remote error kind of a failed call, or a panic if it succeeded
/// (or failed client-side).
fn remote_kind<T>(r: Result<T, ClientError>, what: &str) -> String {
    match r {
        Ok(_) => panic!("{what}: accepted"),
        Err(e) => e.kind().unwrap_or_else(|| panic!("{what}: not a remote error")).to_string(),
    }
}

fn scaled(scale: f64) -> DeployOptions {
    DeployOptions { scale: Some(scale), ..DeployOptions::default() }
}

#[test]
fn daemon_end_to_end() {
    with_daemon(|_addr, c| {
        // --- deploy + step + status --------------------------------------
        let info = c.deploy("a", "dense_grid_100", &scaled(0.1)).expect("deploy");
        assert_eq!(info.nodes, 100);
        assert_eq!(info.epoch, 0);
        assert_eq!(info.epochs, 400, "dense_grid_100 at 0.1 scale");
        assert_eq!(info.policy, "fifo", "default admission policy");
        assert_eq!(c.step("a", 25).expect("step"), 25);

        // Deterministic: a second identical deployment fingerprints equal.
        c.deploy("b", "dense_grid_100", &scaled(0.1)).expect("deploy twin");
        c.step("b", 25).expect("step twin");
        let (_, fp_a) = c.fingerprint("a").expect("fingerprint");
        let (_, fp_b) = c.fingerprint("b").expect("fingerprint");
        assert_eq!(fp_a, fp_b, "identical call sequences must produce identical engines");

        let status = c.status().expect("status");
        assert_eq!(status.len(), 2);
        assert!(status.iter().all(|d| d.epoch == 25));

        // --- queries: batching, determinism, outcomes --------------------
        let q1 = c.query("a", 0, 12.0, 26.0, None).expect("query");
        assert!(q1.answered_epoch > q1.epoch, "a batch must step the engine");
        assert_eq!(q1.epochs_to_answer, q1.answered_epoch - q1.epoch);
        let q2 = c.query("b", 0, 12.0, 26.0, None).expect("query twin");
        assert_eq!(q1.id, q2.id);
        assert_eq!(q1.answered_epoch, q2.answered_epoch);
        assert_eq!(q1.sources_reached, q2.sources_reached);
        assert_eq!(q1.tx, q2.tx);
        let (_, fp_a) = c.fingerprint("a").expect("fingerprint");
        let (_, fp_b) = c.fingerprint("b").expect("fingerprint");
        assert_eq!(fp_a, fp_b, "twins diverged after identical queries");

        // --- snapshot / restore ------------------------------------------
        let image = std::env::temp_dir().join("dirqd-test-a.dirqsnap");
        let image = image.to_str().expect("utf-8 temp path");
        let snap = c.snapshot("a", image).expect("snapshot");
        assert_eq!(snap.fingerprint, fp_a);
        assert!(snap.bytes > 0);

        let restored = c.restore("a2", image, &DeployOptions::default()).expect("restore");
        assert_eq!(restored.epoch, snap.epoch);
        assert_eq!(restored.preset, "dense_grid_100");
        let (_, fp_restored) = c.fingerprint("a2").expect("fingerprint");
        assert_eq!(fp_restored, fp_a, "restored engine must fingerprint-equal the original");

        // The restored engine *behaves* identically too, not just at rest.
        let qa = c.query("a", 1, 40.0, 55.0, None).expect("query original");
        let qr = c.query("a2", 1, 40.0, 55.0, None).expect("query restored");
        assert_eq!(
            (qa.id, qa.answered_epoch, qa.sources_reached),
            (qr.id, qr.answered_epoch, qr.sources_reached)
        );
        let (_, fp_after_a) = c.fingerprint("a").expect("fingerprint");
        let (_, fp_after_r) = c.fingerprint("a2").expect("fingerprint");
        assert_eq!(fp_after_a, fp_after_r);

        // --- error paths, each with its machine-matchable kind -----------
        let none = DeployOptions::default();
        assert_eq!(remote_kind(c.deploy("a", "dense_grid_100", &none), "duplicate name"), "exists");
        assert_eq!(
            remote_kind(c.deploy("x", "no_such_preset", &none), "unknown preset"),
            "not_found"
        );
        assert_eq!(
            remote_kind(c.deploy("x", "dense_grid_100", &scaled(-1.0)), "negative scale"),
            "bad_request"
        );
        let bogus_scheme =
            DeployOptions { scheme: Some("bogus".into()), ..DeployOptions::default() };
        assert_eq!(
            remote_kind(c.deploy("x", "dense_grid_100", &bogus_scheme), "unknown scheme"),
            "not_found"
        );
        assert_eq!(
            remote_kind(c.query("missing", 0, 0.0, 1.0, None), "unknown deployment"),
            "not_found"
        );
        assert_eq!(remote_kind(c.query("a", 0, 5.0, 1.0, None), "inverted window"), "bad_request");
        assert_eq!(
            remote_kind(
                c.query("a", 0, 10.0, 20.0, Some([0.0, 0.0, 50.0, 50.0])),
                "spatial query without the location extension"
            ),
            "unsupported"
        );
        assert_eq!(remote_kind(c.restore("x", "/no/such/image", &none), "missing image"), "io");
        // A non-image file is rejected by magic.
        let junk = std::env::temp_dir().join("dirqd-test-junk.dirqsnap");
        std::fs::write(&junk, b"not a snapshot").expect("write junk");
        assert_eq!(
            remote_kind(c.restore("x", junk.to_str().unwrap(), &none), "junk image"),
            "bad_image"
        );
        // Unknown command and missing cmd field.
        let mut raw = Json::object();
        raw.set("cmd", Json::Str("frobnicate".into()));
        assert_eq!(remote_kind(c.call(&raw), "unknown command"), "bad_request");
        assert_eq!(remote_kind(c.call(&Json::object()), "missing cmd"), "bad_request");

        // A deployment whose preset enables the location extension takes
        // spatially scoped queries.
        c.deploy("spatial", "hotspot_workload_200", &scaled(0.1)).expect("deploy spatial");
        c.step("spatial", 12).expect("step spatial");
        let q = c
            .query("spatial", 0, 5.0, 60.0, Some([0.0, 0.0, 150.0, 150.0]))
            .expect("spatial query");
        assert!(q.answered_epoch > q.epoch);

        let _ = std::fs::remove_file(image);
        let _ = std::fs::remove_file(junk);
    });

    // with_daemon joined the serving thread; the port must be dead.
    // (The OS may accept a queued connection briefly; a call must fail
    // either way.)
    let (addr, daemon) = Daemon::spawn("127.0.0.1:0").expect("spawn daemon");
    let mut c = Client::connect(addr).expect("connect");
    c.shutdown().expect("shutdown");
    daemon.join().expect("join daemon thread").expect("daemon serve");
    assert!(
        Client::connect(addr).is_err() || {
            let mut late = Client::connect(addr).unwrap();
            late.status().is_err()
        },
        "daemon still serving after shutdown"
    );
}

/// Seeds are u64s; 2^53-plus values must survive deploy → status →
/// snapshot header → restore without rounding through `f64`.
#[test]
fn huge_seeds_survive_the_wire_and_the_image_header() {
    let seed = u64::MAX - 12;
    with_daemon(|_, c| {
        let opts = DeployOptions { scale: Some(0.1), seed: Some(seed), ..DeployOptions::default() };
        let info = c.deploy("big", "dense_grid_100", &opts).expect("deploy");
        assert_eq!(info.seed, seed, "deploy reply rounded the seed");

        let status = c.status().expect("status");
        assert_eq!(status[0].seed, seed, "status rounded the seed");

        c.step("big", 8).expect("step");
        let image = std::env::temp_dir().join("dirqd-test-hugeseed.dirqsnap");
        let image = image.to_str().expect("utf-8 temp path");
        c.snapshot("big", image).expect("snapshot");
        let restored = c.restore("big2", image, &DeployOptions::default()).expect("restore");
        assert_eq!(restored.seed, seed, "image header rounded the seed");
        let (_, fp_a) = c.fingerprint("big").expect("fingerprint");
        let (_, fp_b) = c.fingerprint("big2").expect("fingerprint");
        assert_eq!(fp_a, fp_b);
        let _ = std::fs::remove_file(image);
    });
}

/// Malformed fields that previously truncated or wrapped silently are
/// now typed `bad_request` errors.
#[test]
fn wire_validation_rejects_what_it_used_to_truncate() {
    with_daemon(|_, c| {
        c.deploy("a", "dense_grid_100", &scaled(0.1)).expect("deploy");

        let query = |mutate: &dyn Fn(&mut Json)| {
            let mut req = Json::object();
            req.set("cmd", Json::Str("query".into()));
            req.set("deployment", Json::Str("a".into()));
            req.set("stype", Json::Num(0.0));
            req.set("lo", Json::Num(10.0));
            req.set("hi", Json::Num(20.0));
            mutate(&mut req);
            req
        };
        // stype used to go through `as u8` (300 wrapped to 44; 1.5
        // truncated to 1).
        for (bad_stype, what) in [(Json::Num(300.0), "stype 300"), (Json::Num(1.5), "stype 1.5")] {
            let req = query(&|r: &mut Json| {
                r.set("stype", bad_stype.clone());
            });
            assert_eq!(remote_kind(c.call(&req), what), "bad_request");
        }
        // Regions must be exactly four finite numbers.
        let req = query(&|r: &mut Json| {
            r.set("region", Json::Arr(vec![Json::Num(0.0), Json::Num(0.0), Json::Num(9.0)]));
        });
        assert_eq!(remote_kind(c.call(&req), "3-corner region"), "bad_request");
        let req = query(&|r: &mut Json| {
            r.set(
                "region",
                Json::Arr(vec![
                    Json::Num(0.0),
                    Json::Str("oops".into()),
                    Json::Num(9.0),
                    Json::Num(9.0),
                ]),
            );
        });
        assert_eq!(remote_kind(c.call(&req), "non-numeric region"), "bad_request");
        // Mistyped async flag and timeout.
        let req = query(&|r: &mut Json| {
            r.set("async", Json::Str("yes".into()));
        });
        assert_eq!(remote_kind(c.call(&req), "string async"), "bad_request");
        let req = query(&|r: &mut Json| {
            r.set("timeout_ms", Json::Num(-5.0));
        });
        assert_eq!(remote_kind(c.call(&req), "negative timeout"), "bad_request");

        let deploy = |mutate: &dyn Fn(&mut Json)| {
            let mut req = Json::object();
            req.set("cmd", Json::Str("deploy".into()));
            req.set("name", Json::Str("x".into()));
            req.set("preset", Json::Str("dense_grid_100".into()));
            req.set("scale", Json::Num(0.1));
            mutate(&mut req);
            req
        };
        // Seeds used to round through f64; now they must be unsigned
        // integers, rejected otherwise rather than truncated.
        for (bad_seed, what) in
            [(Json::Num(-5.0), "negative seed"), (Json::Num(1.5), "fractional seed")]
        {
            let req = deploy(&|r: &mut Json| {
                r.set("seed", bad_seed.clone());
            });
            assert_eq!(remote_kind(c.call(&req), what), "bad_request");
        }
        // Scale zero was accepted and asserted deep in the engine.
        let req = deploy(&|r: &mut Json| {
            r.set("scale", Json::Num(0.0));
        });
        assert_eq!(remote_kind(c.call(&req), "zero scale"), "bad_request");
        // Serving knobs validate at deploy time.
        let req = deploy(&|r: &mut Json| {
            r.set("policy", Json::Str("lifo".into()));
        });
        assert_eq!(remote_kind(c.call(&req), "unknown policy"), "bad_request");
        let req = deploy(&|r: &mut Json| {
            r.set("checkpoint_every_epochs", Json::from_u64(10));
        });
        assert_eq!(
            remote_kind(c.call(&req), "checkpoint period without a directory"),
            "bad_request"
        );
        // None of the rejected deploys may have registered a deployment.
        assert_eq!(c.status().expect("status").len(), 1);
    });
}

/// The non-blocking path: submit returns an id immediately, `poll`
/// resolves it, `drain` hands every completion to a cursored reader
/// exactly once, and unknown ids are typed `not_found`.
#[test]
fn async_submissions_resolve_through_poll_and_drain() {
    with_daemon(|_, c| {
        c.deploy("a", "dense_grid_100", &scaled(0.1)).expect("deploy");
        c.step("a", 10).expect("warmup");

        // Polling an id the deployment never assigned is not_found.
        assert_eq!(remote_kind(c.poll("a", 999_999), "unknown id"), "not_found");

        // Submit a burst, then resolve each id by polling.
        let mut ids = Vec::new();
        for k in 0..6u8 {
            let lo = 10.0 + f64::from(k);
            let (id, epoch) =
                c.query_async("a", k % 2, lo, lo + 8.0, None, Some("t")).expect("submit");
            assert!(epoch >= 10, "injection epoch precedes the warmup");
            ids.push(id);
        }
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be assigned in order");
        let mut reports = Vec::new();
        for &id in &ids {
            let report = loop {
                match c.poll("a", id).expect("poll") {
                    Some(r) => break r,
                    None => std::thread::sleep(Duration::from_millis(1)),
                }
            };
            assert_eq!(report.id, id);
            assert!(report.answered_epoch > report.epoch);
            assert_eq!(report.epochs_to_answer, report.answered_epoch - report.epoch);
            reports.push(report);
        }
        // Poll is a read: asking again returns the same answer.
        let again = c.poll("a", ids[0]).expect("re-poll").expect("still done");
        assert_eq!((again.id, again.answered_epoch), (reports[0].id, reports[0].answered_epoch));

        // Drain from cursor 0 sees the same completions, exactly once,
        // with strictly increasing sequence numbers and a monotone
        // cursor.
        let mut cursor = 0;
        let mut drained = Vec::new();
        loop {
            let batch = c.drain("a", cursor).expect("drain");
            assert!(batch.cursor >= cursor, "drain cursor went backwards");
            if batch.results.is_empty() {
                assert_eq!(batch.pending, 0);
                break;
            }
            drained.extend(batch.results.iter().map(|&(seq, r)| (seq, r.id)));
            cursor = batch.cursor;
        }
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0), "sequence numbers not increasing");
        assert_eq!(drained.iter().map(|&(_, id)| id).collect::<Vec<_>>(), ids);
        // A re-drain from the final cursor stays empty: exactly-once.
        assert!(c.drain("a", cursor).expect("re-drain").results.is_empty());

        // A zero-capacity admission queue is a deterministic queue_full.
        let zero =
            DeployOptions { scale: Some(0.1), queue_cap: Some(0), ..DeployOptions::default() };
        c.deploy("full", "dense_grid_100", &zero).expect("deploy zero-cap");
        assert_eq!(
            remote_kind(c.query_async("full", 0, 10.0, 20.0, None, None), "zero-cap submit"),
            "queue_full"
        );
        assert_eq!(
            remote_kind(c.query("full", 0, 10.0, 20.0, None), "zero-cap blocking submit"),
            "queue_full"
        );
    });
}

/// Queries against a deployment whose preset epoch budget has been
/// spent still answer: the serving loop steps the engine past the
/// budget rather than wedging the caller.
#[test]
fn queries_complete_past_the_epoch_budget() {
    with_daemon(|_, c| {
        // dense_grid_100 at 0.01 scale floors at 4 query periods = 80
        // epochs.
        let info = c.deploy("tiny", "dense_grid_100", &scaled(0.01)).expect("deploy");
        assert_eq!(info.epochs, 80);
        let past = info.epochs + 10;
        assert_eq!(c.step("tiny", past).expect("step"), past);
        let q = c.query("tiny", 0, 12.0, 26.0, None).expect("query past budget");
        assert!(q.epoch >= past);
        assert!(q.answered_epoch > q.epoch, "query must still step to completion");
    });
}

// --- the serving pool ------------------------------------------------------

/// Run one deployment's barriered op script against a daemon.
fn run_ops(c: &mut Client, name: &str, ops: &[ServingOp]) {
    for op in ops {
        match *op {
            ServingOp::Step(epochs) => {
                c.step(name, epochs).expect("step");
            }
            ServingOp::Query(stype, lo, hi) => {
                c.query(name, stype, lo, hi, None).expect("query");
            }
        }
    }
}

/// The tentpole differential test: several deployments with interleaved
/// barriered op scripts, served by pools of 1, 2 and 4 workers, must
/// all walk the exact trajectory of the engine-level replay — the pool
/// size (and therefore which worker runs which turn, and how turns of
/// different deployments interleave in time) is invisible to results.
#[test]
fn pool_trajectories_match_the_engine_replay_at_any_thread_count() {
    let scripts: &[(&str, u64, &[ServingOp])] = &[
        (
            "d0",
            11,
            &[
                ServingOp::Step(10),
                ServingOp::Query(0, 12.0, 26.0),
                ServingOp::Query(1, 40.0, 55.0),
                ServingOp::Step(5),
            ],
        ),
        (
            "d1",
            22,
            &[
                ServingOp::Step(7),
                ServingOp::Query(0, 14.0, 22.0),
                ServingOp::Step(3),
                ServingOp::Query(1, 41.0, 50.0),
            ],
        ),
        ("d2", 33, &[ServingOp::Query(0, 12.0, 20.0), ServingOp::Query(0, 13.0, 21.0)]),
    ];
    let reference: Vec<(u64, u64)> = scripts
        .iter()
        .map(|&(_, seed, ops)| replay_serving("dense_grid_100", 0.05, Some(seed), ops))
        .collect();
    for threads in [1, 2, 4] {
        let mut observed = Vec::new();
        with_daemon_opts(
            DaemonOptions { serving_threads: threads, ..DaemonOptions::default() },
            |_, c| {
                for &(name, seed, _) in scripts {
                    let opts = DeployOptions {
                        scale: Some(0.05),
                        seed: Some(seed),
                        ..DeployOptions::default()
                    };
                    c.deploy(name, "dense_grid_100", &opts).expect("deploy");
                }
                // Interleave: one op per deployment per round, so turns
                // of different deployments genuinely contend for the
                // pool.
                let longest = scripts.iter().map(|&(_, _, ops)| ops.len()).max().unwrap();
                for k in 0..longest {
                    for &(name, _, ops) in scripts {
                        if let Some(op) = ops.get(k) {
                            run_ops(c, name, std::slice::from_ref(op));
                        }
                    }
                }
                for &(name, _, _) in scripts {
                    observed.push(c.fingerprint(name).expect("fingerprint"));
                }
            },
        );
        assert_eq!(
            observed, reference,
            "serving_threads={threads}: trajectories diverged from the engine replay"
        );
    }
}

/// Decode a deterministic op script from one sampled integer — mixes
/// explicit steps and blocking queries of varying content.
fn script_from(mut code: u64) -> Vec<ServingOp> {
    let len = 2 + (code % 3) as usize;
    code /= 3;
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let kind = code % 2;
        code /= 2;
        if kind == 0 {
            ops.push(ServingOp::Step(1 + code % 9));
            code /= 9;
        } else {
            let stype = (code % 2) as u8;
            code /= 2;
            let lo = 10.0 + (code % 10) as f64;
            code /= 10;
            let hi = lo + 4.0 + (code % 6) as f64;
            code /= 6;
            ops.push(ServingOp::Query(stype, lo, hi));
        }
    }
    ops
}

/// Run one sampled script against a pooled daemon and return the final
/// `(epoch, fingerprint)`.
fn run_pooled_script(threads: usize, seed: u64, ops: &[ServingOp]) -> (u64, u64) {
    let mut result = (0, 0);
    with_daemon_opts(
        DaemonOptions { serving_threads: threads, ..DaemonOptions::default() },
        |_, c| {
            let opts =
                DeployOptions { scale: Some(0.01), seed: Some(seed), ..DeployOptions::default() };
            c.deploy("p", "dense_grid_100", &opts).expect("deploy");
            run_ops(c, "p", ops);
            result = c.fingerprint("p").expect("fingerprint");
        },
    );
    result
}

mod pool_invariance {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]
        /// Pool-scheduled stepping is result-invariant in
        /// `--serving-threads`, and both pool sizes match the
        /// engine-level replay, across random barriered op scripts.
        #[test]
        fn pool_size_never_changes_results(seed in 0u64..1_000, code in 0u64..u64::MAX) {
            let ops = script_from(code);
            let one = run_pooled_script(1, seed, &ops);
            let four = run_pooled_script(4, seed, &ops);
            prop_assert_eq!(one, four, "threads 1 vs 4 diverged on {:?}", ops);
            let reference = replay_serving("dense_grid_100", 0.01, Some(seed), &ops);
            prop_assert_eq!(one, reference, "daemon diverged from the replay on {:?}", ops);
        }
    }
}

// --- crash recovery --------------------------------------------------------

/// Checkpoint-writing deployment options.
fn checkpointed(scale: f64, every: u64, dir: &std::path::Path, seed: u64) -> DeployOptions {
    DeployOptions {
        scale: Some(scale),
        seed: Some(seed),
        checkpoint_every_epochs: Some(every),
        checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
        ..DeployOptions::default()
    }
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dirqd-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

/// `--recover` resumes a deployment from the newest valid rotating
/// image at a fingerprint equal to an uninterrupted run to the same
/// epoch, reports the slot it used, keeps checkpointing from where it
/// resumed — and a deployment whose slots are all corrupt lands in
/// `unrecoverable` without failing startup.
#[test]
fn recovery_resumes_from_the_newest_valid_checkpoint() {
    let dir = fresh_dir("recov");
    // Phase 1: a daemon checkpointing every 10 epochs, stepped to 25 —
    // the rotation leaves slot 1 at epoch 10 and slot 0 at epoch 20.
    with_daemon(|_, c| {
        c.deploy("r1", "dense_grid_100", &checkpointed(0.05, 10, &dir, 5)).expect("deploy r1");
        c.deploy("r2", "dense_grid_100", &checkpointed(0.05, 10, &dir, 77)).expect("deploy r2");
        c.step("r1", 25).expect("step r1");
        c.step("r2", 25).expect("step r2");
    });
    // Wreck every slot of r2: one torn mid-write, one overwritten with
    // garbage.
    let r2_slot0 = dir.join("r2.0.dirqsnap");
    let bytes = std::fs::read(&r2_slot0).expect("read r2 slot 0");
    std::fs::write(&r2_slot0, &bytes[..bytes.len() / 2]).expect("tear r2 slot 0");
    std::fs::write(dir.join("r2.1.dirqsnap"), b"garbage").expect("wreck r2 slot 1");

    let recover = DaemonOptions {
        recover: Some(dir.to_string_lossy().into_owned()),
        ..DaemonOptions::default()
    };
    with_daemon_opts(recover, |_, c| {
        let status = c.status_full().expect("status");
        assert!(status.serving_threads >= 1, "pool size must be reported");
        assert_eq!(status.deployments.len(), 1, "only r1 is recoverable");
        let r1 = &status.deployments[0];
        assert_eq!(r1.name, "r1");
        assert_eq!(r1.epoch, 20, "must resume from the newest image");
        assert_eq!(r1.recovered, Some((0, 20)), "slot 0 held the newest image");
        assert_eq!(status.unrecoverable.len(), 1);
        assert_eq!(status.unrecoverable[0].0, "r2");
        assert!(
            status.unrecoverable[0].1.contains("slot"),
            "error should name the failing slots: {}",
            status.unrecoverable[0].1
        );

        // Fingerprint equality with an uninterrupted run to the same
        // epoch.
        let clean = DeployOptions { scale: Some(0.05), seed: Some(5), ..DeployOptions::default() };
        c.deploy("clean", "dense_grid_100", &clean).expect("deploy clean");
        c.step("clean", 20).expect("step clean");
        let (_, fp_recovered) = c.fingerprint("r1").expect("fingerprint r1");
        let (_, fp_clean) = c.fingerprint("clean").expect("fingerprint clean");
        assert_eq!(fp_recovered, fp_clean, "recovered state diverged from a straight run");

        // The resumed deployment keeps checkpointing under its original
        // recipe: stepping to epoch 30 must rotate a new image in.
        assert_eq!(c.step("r1", 10).expect("step r1"), 30);
        let best = dirqd::daemon::scan_checkpoint_dir(&dir)
            .expect("scan")
            .into_iter()
            .find(|s| s.name == "r1")
            .expect("r1 images");
        assert_eq!(best.header.expect("valid image").epoch, 30, "checkpointing must resume");

        // The recovered deployment still serves queries.
        let q = c.query("r1", 0, 12.0, 26.0, None).expect("query recovered");
        assert!(q.answered_epoch > q.epoch);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn newest slot (the expected wreckage of `kill -9` mid-write)
/// falls back to the older intact slot.
#[test]
fn torn_newest_checkpoint_falls_back_to_the_older_slot() {
    let dir = fresh_dir("fallback");
    with_daemon(|_, c| {
        c.deploy("t", "dense_grid_100", &checkpointed(0.05, 10, &dir, 9)).expect("deploy");
        c.step("t", 25).expect("step");
    });
    // Slot 0 (epoch 20) is the newest; tear it. Slot 1 (epoch 10)
    // stays intact.
    let newest = dir.join("t.0.dirqsnap");
    let bytes = std::fs::read(&newest).expect("read newest");
    std::fs::write(&newest, &bytes[..bytes.len() / 3]).expect("tear newest");

    let recover = DaemonOptions {
        recover: Some(dir.to_string_lossy().into_owned()),
        ..DaemonOptions::default()
    };
    with_daemon_opts(recover, |_, c| {
        let status = c.status_full().expect("status");
        assert!(status.unrecoverable.is_empty(), "the older slot must rescue the deployment");
        assert_eq!(status.deployments.len(), 1);
        assert_eq!(status.deployments[0].epoch, 10, "must fall back to the older image");
        assert_eq!(status.deployments[0].recovered, Some((1, 10)));

        let clean = DeployOptions { scale: Some(0.05), seed: Some(9), ..DeployOptions::default() };
        c.deploy("clean", "dense_grid_100", &clean).expect("deploy clean");
        c.step("clean", 10).expect("step clean");
        let (_, fp_t) = c.fingerprint("t").expect("fingerprint t");
        let (_, fp_clean) = c.fingerprint("clean").expect("fingerprint clean");
        assert_eq!(fp_t, fp_clean, "fallback state diverged from a straight run");
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Engine round trips are bounded: a wedged deployment produces an
/// orderly remote `timeout` error and the connection stays usable; a
/// client-side deadline surfaces as [`ClientError::Timeout`].
#[test]
fn stalled_deployments_time_out_instead_of_blocking() {
    with_daemon(|addr, c| {
        c.deploy("a", "dense_grid_100", &scaled(0.1)).expect("deploy");

        // Daemon-side deadline: the handler gives up after timeout_ms
        // while the engine thread is still stalled.
        let mut stall = Json::object();
        stall.set("cmd", Json::Str("debug_stall".into()));
        stall.set("deployment", Json::Str("a".into()));
        stall.set("ms", Json::from_u64(400));
        stall.set("timeout_ms", Json::from_u64(50));
        assert_eq!(remote_kind(c.call(&stall), "stalled round trip"), "timeout");
        // The connection survived; once the stall clears, calls answer.
        c.fingerprint("a").expect("fingerprint after daemon-side timeout");

        // Client-side deadline: a generous daemon timeout but a 50 ms
        // socket deadline. This connection is dead afterwards (its reply
        // may still arrive), so use a throwaway client.
        let mut throwaway = Client::connect(addr).expect("connect throwaway");
        throwaway.set_timeout(Some(Duration::from_millis(50))).expect("set timeout");
        let mut stall = Json::object();
        stall.set("cmd", Json::Str("debug_stall".into()));
        stall.set("deployment", Json::Str("a".into()));
        stall.set("ms", Json::from_u64(400));
        stall.set("timeout_ms", Json::from_u64(5_000));
        assert!(
            matches!(throwaway.call(&stall), Err(ClientError::Timeout)),
            "socket deadline must surface as ClientError::Timeout"
        );
        drop(throwaway);
        // Give the stall time to clear so shutdown is prompt.
        std::thread::sleep(Duration::from_millis(400));
    });
}
