//! End-to-end daemon test over a real TCP socket: deploy, step, query,
//! snapshot, restore, fingerprint equality, protocol error paths and a
//! clean shutdown — the same invariants `loadgen --smoke` gates in CI,
//! at debug-tier scale.

use dirq_sim::json::Json;
use dirqd::{Client, ClientError, Daemon};

/// Everything shares one daemon: TCP listeners are cheap but test
/// processes should not leak serving threads.
#[test]
fn daemon_end_to_end() {
    let (addr, daemon) = Daemon::spawn("127.0.0.1:0").expect("spawn daemon");
    let mut c = Client::connect(addr).expect("connect");

    // --- deploy + step + status ------------------------------------------
    let info = c.deploy("a", "dense_grid_100", Some(0.1), None, None).expect("deploy");
    assert_eq!(info.nodes, 100);
    assert_eq!(info.epoch, 0);
    assert_eq!(info.epochs, 400, "dense_grid_100 at 0.1 scale");
    assert_eq!(c.step("a", 25).expect("step"), 25);

    // Deterministic: a second identical deployment fingerprints equal.
    c.deploy("b", "dense_grid_100", Some(0.1), None, None).expect("deploy twin");
    c.step("b", 25).expect("step twin");
    let (_, fp_a) = c.fingerprint("a").expect("fingerprint");
    let (_, fp_b) = c.fingerprint("b").expect("fingerprint");
    assert_eq!(fp_a, fp_b, "identical call sequences must produce identical engines");

    let status = c.status().expect("status");
    assert_eq!(status.len(), 2);
    assert!(status.iter().all(|d| d.epoch == 25));

    // --- queries: batching, determinism, outcomes ------------------------
    let q1 = c.query("a", 0, 12.0, 26.0, None).expect("query");
    assert!(q1.answered_epoch > q1.epoch, "a batch must step the engine");
    let q2 = c.query("b", 0, 12.0, 26.0, None).expect("query twin");
    assert_eq!(q1.id, q2.id);
    assert_eq!(q1.answered_epoch, q2.answered_epoch);
    assert_eq!(q1.sources_reached, q2.sources_reached);
    assert_eq!(q1.tx, q2.tx);
    let (_, fp_a) = c.fingerprint("a").expect("fingerprint");
    let (_, fp_b) = c.fingerprint("b").expect("fingerprint");
    assert_eq!(fp_a, fp_b, "twins diverged after identical queries");

    // --- snapshot / restore ----------------------------------------------
    let image = std::env::temp_dir().join("dirqd-test-a.dirqsnap");
    let image = image.to_str().expect("utf-8 temp path");
    let snap = c.snapshot("a", image).expect("snapshot");
    assert_eq!(snap.fingerprint, fp_a);
    assert!(snap.bytes > 0);

    let restored = c.restore("a2", image).expect("restore");
    assert_eq!(restored.epoch, snap.epoch);
    assert_eq!(restored.preset, "dense_grid_100");
    let (_, fp_restored) = c.fingerprint("a2").expect("fingerprint");
    assert_eq!(fp_restored, fp_a, "restored engine must fingerprint-equal the original");

    // The restored engine *behaves* identically too, not just at rest.
    let qa = c.query("a", 1, 40.0, 55.0, None).expect("query original");
    let qr = c.query("a2", 1, 40.0, 55.0, None).expect("query restored");
    assert_eq!(
        (qa.id, qa.answered_epoch, qa.sources_reached),
        (qr.id, qr.answered_epoch, qr.sources_reached)
    );
    let (_, fp_after_a) = c.fingerprint("a").expect("fingerprint");
    let (_, fp_after_r) = c.fingerprint("a2").expect("fingerprint");
    assert_eq!(fp_after_a, fp_after_r);

    // --- error paths ------------------------------------------------------
    let is_remote = |r: Result<_, ClientError>| matches!(r, Err(ClientError::Remote(_)));
    assert!(
        is_remote(c.deploy("a", "dense_grid_100", None, None, None).map(|_| ())),
        "duplicate name accepted"
    );
    assert!(
        is_remote(c.deploy("x", "no_such_preset", None, None, None).map(|_| ())),
        "unknown preset accepted"
    );
    assert!(
        is_remote(c.deploy("x", "dense_grid_100", Some(-1.0), None, None).map(|_| ())),
        "negative scale accepted"
    );
    assert!(
        is_remote(c.deploy("x", "dense_grid_100", None, Some("bogus"), None).map(|_| ())),
        "unknown scheme accepted"
    );
    assert!(
        is_remote(c.query("missing", 0, 0.0, 1.0, None).map(|_| ())),
        "unknown deployment accepted"
    );
    assert!(is_remote(c.query("a", 0, 5.0, 1.0, None).map(|_| ())), "inverted window accepted");
    assert!(
        is_remote(c.query("a", 0, 10.0, 20.0, Some([0.0, 0.0, 50.0, 50.0])).map(|_| ())),
        "spatial query accepted without the location extension"
    );
    assert!(is_remote(c.restore("x", "/no/such/image").map(|_| ())), "missing image accepted");
    // A non-image file is rejected by magic.
    let junk = std::env::temp_dir().join("dirqd-test-junk.dirqsnap");
    std::fs::write(&junk, b"not a snapshot").expect("write junk");
    assert!(is_remote(c.restore("x", junk.to_str().unwrap()).map(|_| ())), "junk image accepted");
    // Unknown command and missing cmd field.
    let mut raw = Json::object();
    raw.set("cmd", Json::Str("frobnicate".into()));
    assert!(is_remote(c.call(&raw).map(|_| ())));
    assert!(is_remote(c.call(&Json::object()).map(|_| ())));

    // A deployment whose preset enables the location extension takes
    // spatially scoped queries.
    c.deploy("spatial", "hotspot_workload_200", Some(0.1), None, None).expect("deploy spatial");
    c.step("spatial", 12).expect("step spatial");
    let q =
        c.query("spatial", 0, 5.0, 60.0, Some([0.0, 0.0, 150.0, 150.0])).expect("spatial query");
    assert!(q.answered_epoch > q.epoch);

    // --- shutdown ---------------------------------------------------------
    c.shutdown().expect("shutdown");
    daemon.join().expect("join daemon thread").expect("daemon serve");
    assert!(
        Client::connect(addr).is_err() || {
            // The OS may accept a queued connection briefly; a call must
            // fail either way.
            let mut late = Client::connect(addr).unwrap();
            late.status().is_err()
        },
        "daemon still serving after shutdown"
    );

    let _ = std::fs::remove_file(image);
    let _ = std::fs::remove_file(junk);
}
