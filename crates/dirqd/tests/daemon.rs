//! End-to-end daemon tests over real TCP sockets: deploy, step, query
//! (blocking and async), poll/drain, snapshot, restore, fingerprint
//! equality, the typed protocol error surface and clean shutdowns — the
//! same invariants `loadgen --smoke` gates in CI, at debug-tier scale.

use std::time::Duration;

use dirq_sim::json::Json;
use dirqd::{Client, ClientError, Daemon, DeployOptions};

/// Spawn a daemon, run `body` against a fresh client, then shut the
/// daemon down and join its serving thread.
fn with_daemon(body: impl FnOnce(std::net::SocketAddr, &mut Client)) {
    let (addr, daemon) = Daemon::spawn("127.0.0.1:0").expect("spawn daemon");
    let mut c = Client::connect(addr).expect("connect");
    body(addr, &mut c);
    c.shutdown().expect("shutdown");
    daemon.join().expect("join daemon thread").expect("daemon serve");
}

/// The remote error kind of a failed call, or a panic if it succeeded
/// (or failed client-side).
fn remote_kind<T>(r: Result<T, ClientError>, what: &str) -> String {
    match r {
        Ok(_) => panic!("{what}: accepted"),
        Err(e) => e.kind().unwrap_or_else(|| panic!("{what}: not a remote error")).to_string(),
    }
}

fn scaled(scale: f64) -> DeployOptions {
    DeployOptions { scale: Some(scale), ..DeployOptions::default() }
}

#[test]
fn daemon_end_to_end() {
    with_daemon(|_addr, c| {
        // --- deploy + step + status --------------------------------------
        let info = c.deploy("a", "dense_grid_100", &scaled(0.1)).expect("deploy");
        assert_eq!(info.nodes, 100);
        assert_eq!(info.epoch, 0);
        assert_eq!(info.epochs, 400, "dense_grid_100 at 0.1 scale");
        assert_eq!(info.policy, "fifo", "default admission policy");
        assert_eq!(c.step("a", 25).expect("step"), 25);

        // Deterministic: a second identical deployment fingerprints equal.
        c.deploy("b", "dense_grid_100", &scaled(0.1)).expect("deploy twin");
        c.step("b", 25).expect("step twin");
        let (_, fp_a) = c.fingerprint("a").expect("fingerprint");
        let (_, fp_b) = c.fingerprint("b").expect("fingerprint");
        assert_eq!(fp_a, fp_b, "identical call sequences must produce identical engines");

        let status = c.status().expect("status");
        assert_eq!(status.len(), 2);
        assert!(status.iter().all(|d| d.epoch == 25));

        // --- queries: batching, determinism, outcomes --------------------
        let q1 = c.query("a", 0, 12.0, 26.0, None).expect("query");
        assert!(q1.answered_epoch > q1.epoch, "a batch must step the engine");
        assert_eq!(q1.epochs_to_answer, q1.answered_epoch - q1.epoch);
        let q2 = c.query("b", 0, 12.0, 26.0, None).expect("query twin");
        assert_eq!(q1.id, q2.id);
        assert_eq!(q1.answered_epoch, q2.answered_epoch);
        assert_eq!(q1.sources_reached, q2.sources_reached);
        assert_eq!(q1.tx, q2.tx);
        let (_, fp_a) = c.fingerprint("a").expect("fingerprint");
        let (_, fp_b) = c.fingerprint("b").expect("fingerprint");
        assert_eq!(fp_a, fp_b, "twins diverged after identical queries");

        // --- snapshot / restore ------------------------------------------
        let image = std::env::temp_dir().join("dirqd-test-a.dirqsnap");
        let image = image.to_str().expect("utf-8 temp path");
        let snap = c.snapshot("a", image).expect("snapshot");
        assert_eq!(snap.fingerprint, fp_a);
        assert!(snap.bytes > 0);

        let restored = c.restore("a2", image, &DeployOptions::default()).expect("restore");
        assert_eq!(restored.epoch, snap.epoch);
        assert_eq!(restored.preset, "dense_grid_100");
        let (_, fp_restored) = c.fingerprint("a2").expect("fingerprint");
        assert_eq!(fp_restored, fp_a, "restored engine must fingerprint-equal the original");

        // The restored engine *behaves* identically too, not just at rest.
        let qa = c.query("a", 1, 40.0, 55.0, None).expect("query original");
        let qr = c.query("a2", 1, 40.0, 55.0, None).expect("query restored");
        assert_eq!(
            (qa.id, qa.answered_epoch, qa.sources_reached),
            (qr.id, qr.answered_epoch, qr.sources_reached)
        );
        let (_, fp_after_a) = c.fingerprint("a").expect("fingerprint");
        let (_, fp_after_r) = c.fingerprint("a2").expect("fingerprint");
        assert_eq!(fp_after_a, fp_after_r);

        // --- error paths, each with its machine-matchable kind -----------
        let none = DeployOptions::default();
        assert_eq!(remote_kind(c.deploy("a", "dense_grid_100", &none), "duplicate name"), "exists");
        assert_eq!(
            remote_kind(c.deploy("x", "no_such_preset", &none), "unknown preset"),
            "not_found"
        );
        assert_eq!(
            remote_kind(c.deploy("x", "dense_grid_100", &scaled(-1.0)), "negative scale"),
            "bad_request"
        );
        let bogus_scheme =
            DeployOptions { scheme: Some("bogus".into()), ..DeployOptions::default() };
        assert_eq!(
            remote_kind(c.deploy("x", "dense_grid_100", &bogus_scheme), "unknown scheme"),
            "not_found"
        );
        assert_eq!(
            remote_kind(c.query("missing", 0, 0.0, 1.0, None), "unknown deployment"),
            "not_found"
        );
        assert_eq!(remote_kind(c.query("a", 0, 5.0, 1.0, None), "inverted window"), "bad_request");
        assert_eq!(
            remote_kind(
                c.query("a", 0, 10.0, 20.0, Some([0.0, 0.0, 50.0, 50.0])),
                "spatial query without the location extension"
            ),
            "unsupported"
        );
        assert_eq!(remote_kind(c.restore("x", "/no/such/image", &none), "missing image"), "io");
        // A non-image file is rejected by magic.
        let junk = std::env::temp_dir().join("dirqd-test-junk.dirqsnap");
        std::fs::write(&junk, b"not a snapshot").expect("write junk");
        assert_eq!(
            remote_kind(c.restore("x", junk.to_str().unwrap(), &none), "junk image"),
            "bad_image"
        );
        // Unknown command and missing cmd field.
        let mut raw = Json::object();
        raw.set("cmd", Json::Str("frobnicate".into()));
        assert_eq!(remote_kind(c.call(&raw), "unknown command"), "bad_request");
        assert_eq!(remote_kind(c.call(&Json::object()), "missing cmd"), "bad_request");

        // A deployment whose preset enables the location extension takes
        // spatially scoped queries.
        c.deploy("spatial", "hotspot_workload_200", &scaled(0.1)).expect("deploy spatial");
        c.step("spatial", 12).expect("step spatial");
        let q = c
            .query("spatial", 0, 5.0, 60.0, Some([0.0, 0.0, 150.0, 150.0]))
            .expect("spatial query");
        assert!(q.answered_epoch > q.epoch);

        let _ = std::fs::remove_file(image);
        let _ = std::fs::remove_file(junk);
    });

    // with_daemon joined the serving thread; the port must be dead.
    // (The OS may accept a queued connection briefly; a call must fail
    // either way.)
    let (addr, daemon) = Daemon::spawn("127.0.0.1:0").expect("spawn daemon");
    let mut c = Client::connect(addr).expect("connect");
    c.shutdown().expect("shutdown");
    daemon.join().expect("join daemon thread").expect("daemon serve");
    assert!(
        Client::connect(addr).is_err() || {
            let mut late = Client::connect(addr).unwrap();
            late.status().is_err()
        },
        "daemon still serving after shutdown"
    );
}

/// Seeds are u64s; 2^53-plus values must survive deploy → status →
/// snapshot header → restore without rounding through `f64`.
#[test]
fn huge_seeds_survive_the_wire_and_the_image_header() {
    let seed = u64::MAX - 12;
    with_daemon(|_, c| {
        let opts = DeployOptions { scale: Some(0.1), seed: Some(seed), ..DeployOptions::default() };
        let info = c.deploy("big", "dense_grid_100", &opts).expect("deploy");
        assert_eq!(info.seed, seed, "deploy reply rounded the seed");

        let status = c.status().expect("status");
        assert_eq!(status[0].seed, seed, "status rounded the seed");

        c.step("big", 8).expect("step");
        let image = std::env::temp_dir().join("dirqd-test-hugeseed.dirqsnap");
        let image = image.to_str().expect("utf-8 temp path");
        c.snapshot("big", image).expect("snapshot");
        let restored = c.restore("big2", image, &DeployOptions::default()).expect("restore");
        assert_eq!(restored.seed, seed, "image header rounded the seed");
        let (_, fp_a) = c.fingerprint("big").expect("fingerprint");
        let (_, fp_b) = c.fingerprint("big2").expect("fingerprint");
        assert_eq!(fp_a, fp_b);
        let _ = std::fs::remove_file(image);
    });
}

/// Malformed fields that previously truncated or wrapped silently are
/// now typed `bad_request` errors.
#[test]
fn wire_validation_rejects_what_it_used_to_truncate() {
    with_daemon(|_, c| {
        c.deploy("a", "dense_grid_100", &scaled(0.1)).expect("deploy");

        let query = |mutate: &dyn Fn(&mut Json)| {
            let mut req = Json::object();
            req.set("cmd", Json::Str("query".into()));
            req.set("deployment", Json::Str("a".into()));
            req.set("stype", Json::Num(0.0));
            req.set("lo", Json::Num(10.0));
            req.set("hi", Json::Num(20.0));
            mutate(&mut req);
            req
        };
        // stype used to go through `as u8` (300 wrapped to 44; 1.5
        // truncated to 1).
        for (bad_stype, what) in [(Json::Num(300.0), "stype 300"), (Json::Num(1.5), "stype 1.5")] {
            let req = query(&|r: &mut Json| {
                r.set("stype", bad_stype.clone());
            });
            assert_eq!(remote_kind(c.call(&req), what), "bad_request");
        }
        // Regions must be exactly four finite numbers.
        let req = query(&|r: &mut Json| {
            r.set("region", Json::Arr(vec![Json::Num(0.0), Json::Num(0.0), Json::Num(9.0)]));
        });
        assert_eq!(remote_kind(c.call(&req), "3-corner region"), "bad_request");
        let req = query(&|r: &mut Json| {
            r.set(
                "region",
                Json::Arr(vec![
                    Json::Num(0.0),
                    Json::Str("oops".into()),
                    Json::Num(9.0),
                    Json::Num(9.0),
                ]),
            );
        });
        assert_eq!(remote_kind(c.call(&req), "non-numeric region"), "bad_request");
        // Mistyped async flag and timeout.
        let req = query(&|r: &mut Json| {
            r.set("async", Json::Str("yes".into()));
        });
        assert_eq!(remote_kind(c.call(&req), "string async"), "bad_request");
        let req = query(&|r: &mut Json| {
            r.set("timeout_ms", Json::Num(-5.0));
        });
        assert_eq!(remote_kind(c.call(&req), "negative timeout"), "bad_request");

        let deploy = |mutate: &dyn Fn(&mut Json)| {
            let mut req = Json::object();
            req.set("cmd", Json::Str("deploy".into()));
            req.set("name", Json::Str("x".into()));
            req.set("preset", Json::Str("dense_grid_100".into()));
            req.set("scale", Json::Num(0.1));
            mutate(&mut req);
            req
        };
        // Seeds used to round through f64; now they must be unsigned
        // integers, rejected otherwise rather than truncated.
        for (bad_seed, what) in
            [(Json::Num(-5.0), "negative seed"), (Json::Num(1.5), "fractional seed")]
        {
            let req = deploy(&|r: &mut Json| {
                r.set("seed", bad_seed.clone());
            });
            assert_eq!(remote_kind(c.call(&req), what), "bad_request");
        }
        // Scale zero was accepted and asserted deep in the engine.
        let req = deploy(&|r: &mut Json| {
            r.set("scale", Json::Num(0.0));
        });
        assert_eq!(remote_kind(c.call(&req), "zero scale"), "bad_request");
        // Serving knobs validate at deploy time.
        let req = deploy(&|r: &mut Json| {
            r.set("policy", Json::Str("lifo".into()));
        });
        assert_eq!(remote_kind(c.call(&req), "unknown policy"), "bad_request");
        let req = deploy(&|r: &mut Json| {
            r.set("checkpoint_every_epochs", Json::from_u64(10));
        });
        assert_eq!(
            remote_kind(c.call(&req), "checkpoint period without a directory"),
            "bad_request"
        );
        // None of the rejected deploys may have registered a deployment.
        assert_eq!(c.status().expect("status").len(), 1);
    });
}

/// The non-blocking path: submit returns an id immediately, `poll`
/// resolves it, `drain` hands every completion to a cursored reader
/// exactly once, and unknown ids are typed `not_found`.
#[test]
fn async_submissions_resolve_through_poll_and_drain() {
    with_daemon(|_, c| {
        c.deploy("a", "dense_grid_100", &scaled(0.1)).expect("deploy");
        c.step("a", 10).expect("warmup");

        // Polling an id the deployment never assigned is not_found.
        assert_eq!(remote_kind(c.poll("a", 999_999), "unknown id"), "not_found");

        // Submit a burst, then resolve each id by polling.
        let mut ids = Vec::new();
        for k in 0..6u8 {
            let lo = 10.0 + f64::from(k);
            let (id, epoch) =
                c.query_async("a", k % 2, lo, lo + 8.0, None, Some("t")).expect("submit");
            assert!(epoch >= 10, "injection epoch precedes the warmup");
            ids.push(id);
        }
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be assigned in order");
        let mut reports = Vec::new();
        for &id in &ids {
            let report = loop {
                match c.poll("a", id).expect("poll") {
                    Some(r) => break r,
                    None => std::thread::sleep(Duration::from_millis(1)),
                }
            };
            assert_eq!(report.id, id);
            assert!(report.answered_epoch > report.epoch);
            assert_eq!(report.epochs_to_answer, report.answered_epoch - report.epoch);
            reports.push(report);
        }
        // Poll is a read: asking again returns the same answer.
        let again = c.poll("a", ids[0]).expect("re-poll").expect("still done");
        assert_eq!((again.id, again.answered_epoch), (reports[0].id, reports[0].answered_epoch));

        // Drain from cursor 0 sees the same completions, exactly once,
        // with strictly increasing sequence numbers and a monotone
        // cursor.
        let mut cursor = 0;
        let mut drained = Vec::new();
        loop {
            let batch = c.drain("a", cursor).expect("drain");
            assert!(batch.cursor >= cursor, "drain cursor went backwards");
            if batch.results.is_empty() {
                assert_eq!(batch.pending, 0);
                break;
            }
            drained.extend(batch.results.iter().map(|&(seq, r)| (seq, r.id)));
            cursor = batch.cursor;
        }
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0), "sequence numbers not increasing");
        assert_eq!(drained.iter().map(|&(_, id)| id).collect::<Vec<_>>(), ids);
        // A re-drain from the final cursor stays empty: exactly-once.
        assert!(c.drain("a", cursor).expect("re-drain").results.is_empty());

        // A zero-capacity admission queue is a deterministic queue_full.
        let zero =
            DeployOptions { scale: Some(0.1), queue_cap: Some(0), ..DeployOptions::default() };
        c.deploy("full", "dense_grid_100", &zero).expect("deploy zero-cap");
        assert_eq!(
            remote_kind(c.query_async("full", 0, 10.0, 20.0, None, None), "zero-cap submit"),
            "queue_full"
        );
        assert_eq!(
            remote_kind(c.query("full", 0, 10.0, 20.0, None), "zero-cap blocking submit"),
            "queue_full"
        );
    });
}

/// Queries against a deployment whose preset epoch budget has been
/// spent still answer: the serving loop steps the engine past the
/// budget rather than wedging the caller.
#[test]
fn queries_complete_past_the_epoch_budget() {
    with_daemon(|_, c| {
        // dense_grid_100 at 0.01 scale floors at 4 query periods = 80
        // epochs.
        let info = c.deploy("tiny", "dense_grid_100", &scaled(0.01)).expect("deploy");
        assert_eq!(info.epochs, 80);
        let past = info.epochs + 10;
        assert_eq!(c.step("tiny", past).expect("step"), past);
        let q = c.query("tiny", 0, 12.0, 26.0, None).expect("query past budget");
        assert!(q.epoch >= past);
        assert!(q.answered_epoch > q.epoch, "query must still step to completion");
    });
}

/// Engine round trips are bounded: a wedged deployment produces an
/// orderly remote `timeout` error and the connection stays usable; a
/// client-side deadline surfaces as [`ClientError::Timeout`].
#[test]
fn stalled_deployments_time_out_instead_of_blocking() {
    with_daemon(|addr, c| {
        c.deploy("a", "dense_grid_100", &scaled(0.1)).expect("deploy");

        // Daemon-side deadline: the handler gives up after timeout_ms
        // while the engine thread is still stalled.
        let mut stall = Json::object();
        stall.set("cmd", Json::Str("debug_stall".into()));
        stall.set("deployment", Json::Str("a".into()));
        stall.set("ms", Json::from_u64(400));
        stall.set("timeout_ms", Json::from_u64(50));
        assert_eq!(remote_kind(c.call(&stall), "stalled round trip"), "timeout");
        // The connection survived; once the stall clears, calls answer.
        c.fingerprint("a").expect("fingerprint after daemon-side timeout");

        // Client-side deadline: a generous daemon timeout but a 50 ms
        // socket deadline. This connection is dead afterwards (its reply
        // may still arrive), so use a throwaway client.
        let mut throwaway = Client::connect(addr).expect("connect throwaway");
        throwaway.set_timeout(Some(Duration::from_millis(50))).expect("set timeout");
        let mut stall = Json::object();
        stall.set("cmd", Json::Str("debug_stall".into()));
        stall.set("deployment", Json::Str("a".into()));
        stall.set("ms", Json::from_u64(400));
        stall.set("timeout_ms", Json::from_u64(5_000));
        assert!(
            matches!(throwaway.call(&stall), Err(ClientError::Timeout)),
            "socket deadline must surface as ClientError::Timeout"
        );
        drop(throwaway);
        // Give the stall time to clear so shutdown is prompt.
        std::thread::sleep(Duration::from_millis(400));
    });
}
