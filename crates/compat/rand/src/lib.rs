//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no reachable crates.io mirror, so this local
//! crate provides exactly the surface the workspace consumes: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::SmallRng`] (a real xoshiro256++ generator) and
//! [`seq::SliceRandom`]. Everything is deterministic; nothing here is
//! cryptographic.

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of `T` from the standard (uniform) distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable from the standard distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` via Lemire-style widening multiply
/// (unbiased enough for simulation; deterministic, branch-light).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same algorithm family rand 0.8 uses for
    /// `SmallRng` on 64-bit targets. Fast, small, and plenty for
    /// simulation work.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for checkpoint/restore. Restoring
        /// via [`SmallRng::from_state`] resumes the sequence exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a captured [`SmallRng::state`]. The
        /// all-zero state (a fixed point of the generator, unreachable
        /// from any seeded state) is displaced the same way seeding does.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return SmallRng::mix([0u8; 32]);
            }
            SmallRng { s }
        }

        fn mix(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; displace it.
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    0x2545F4914F6CDD1D,
                ];
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng::mix(seed)
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding procedure.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                chunk.copy_from_slice(&next().to_le_bytes());
            }
            SmallRng::mix(seed)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling and shuffling, mirroring `rand::seq`.

    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn xoshiro_reference_sequence() {
        // Reference vector for xoshiro256++ with state [1, 2, 3, 4],
        // from the algorithm definition.
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let got: Vec<u64> = (0..3).map(|_| rng.gen::<u64>()).collect();
        assert_eq!(got, vec![41943041, 58720359, 3588806011781223]);
    }

    #[test]
    fn from_seed_is_reproducible() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn state_round_trip_resumes_sequence() {
        let mut a = SmallRng::seed_from_u64(13);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // The all-zero state is displaced, not accepted as a fixed point.
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.gen::<u64>(), 0);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9u32);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(11);
        let v = [1u8, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
