//! Offline drop-in subset of the `crossbeam` API.
//!
//! The workspace only uses `crossbeam::channel::unbounded`; this local
//! crate maps it onto `std::sync::mpsc`, which has the same semantics for
//! the sweep-runner's fan-in pattern (clonable senders, receiver iteration
//! ending when every sender is dropped).

pub mod channel {
    //! MPMC-ish channels (MPSC is all the workspace needs).

    pub use std::sync::mpsc::{Receiver, SendError, Sender};

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_terminates_when_senders_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got: Vec<u32> = rx.into_iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
