//! Offline drop-in subset of the `criterion` API.
//!
//! Provides the macro/entry-point surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `black_box`,
//! `BenchmarkId`). Measurement is simple wall-clock sampling with a short
//! warm-up — adequate for relative, same-machine comparisons and for CI
//! smoke runs; it does not do statistical outlier analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark. Kept short so full bench suites
/// stay runnable as smoke tests.
const MEASURE_TIME: Duration = Duration::from_millis(300);
const WARMUP_TIME: Duration = Duration::from_millis(60);

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Id distinguished by parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one closure.
pub struct Bencher {
    /// (mean nanoseconds per iteration, iterations measured)
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Measure `f`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: establishes caches and an iteration-cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TIME {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target_iters = ((MEASURE_TIME.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);

        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.result = Some((elapsed.as_nanos() as f64 / target_iters as f64, target_iters));
    }
}

fn report(name: &str, b: &Bencher) {
    match b.result {
        Some((ns, iters)) => {
            println!("{name:<52} {:>14} /iter  ({iters} iters)", fmt_ns(ns));
        }
        None => println!("{name:<52} (no measurement)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into() }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { result: None };
        f(&mut b);
        report(name, &b);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { result: None };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { result: None };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(3u32), &3u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        g.finish();
    }

    criterion_group!(smoke, trivial);

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        smoke(&mut c);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
