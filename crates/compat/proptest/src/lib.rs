//! Offline drop-in subset of the `proptest` API.
//!
//! Supports the surface the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], range and tuple
//! strategies, [`collection::vec`], [`collection::btree_set`] and
//! [`option::of`]. Cases are sampled from a deterministic per-test stream;
//! there is no shrinking — a failing case reports its inputs via the
//! assertion message instead.

pub mod test_runner {
    //! Config, error type and the deterministic case generator.

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
        /// Maximum `prop_assume!` rejections tolerated across the run
        /// before the property is considered vacuous and fails.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_global_rejects: 1024 }
        }
    }

    /// A failed or rejected case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// A rejected assumption (`prop_assume!`); the runner skips the case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(format!("rejected: {}", msg.into()))
        }

        /// Whether this case was rejected rather than failed.
        pub fn is_rejection(&self) -> bool {
            self.0.starts_with("rejected: ")
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test random stream (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive a stream from the test name so every property gets a
        /// stable but distinct sequence.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h ^ 0x9E3779B97F4A7C15 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    impl_strategy_float_range!(f32, f64);

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors of `element` values, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `BTreeSet`s with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Sets of `element` values; duplicates shrink the realised size, as in
    /// upstream proptest.
    pub fn btree_set<S: Strategy>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = Strategy::sample(&self.size, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy yielding `None` or `Some(inner)`.
    pub struct OptionStrategy<S>(S);

    /// `None` a quarter of the time (matching upstream's default weight),
    /// `Some(value)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod prelude {
    //! The usual imports.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: a config header plus `#[test] fn name(arg in
/// strategy, ..) { body }` items, each run over sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand one `fn` item per recursion step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut __rejects: u32 = 0;
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __dbg = format!(concat!($(stringify!($arg), " = {:?}, "),+), $(&$arg),+);
                let __res: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __res {
                    Ok(()) => {}
                    Err(e) if e.is_rejection() => {
                        __rejects += 1;
                        if __rejects > __cfg.max_global_rejects {
                            panic!(
                                "property {} rejected {} cases (max {}): assumptions too strict",
                                stringify!($name), __rejects, __cfg.max_global_rejects
                            );
                        }
                        continue;
                    }
                    Err(e) => panic!(
                        "property {} failed at case {}/{} with inputs {{ {} }}: {}",
                        stringify!($name), __case + 1, __cfg.cases, __dbg, e
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property body; failures report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, "{:?} != {:?}", __l, __r);
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(*__l != *__r, "{:?} == {:?}", __l, __r);
            }
        }
    };
}

/// Skip cases violating a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..9, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn tuples_and_options_compose(
            t in (0u32..4, 0.0f64..1.0),
            o in crate::option::of(1u16..3),
        ) {
            prop_assert!(t.0 < 4);
            if let Some(x) = o {
                prop_assert_eq!(x, 1u16.max(x));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]
        #[test]
        fn config_header_is_accepted(x in 0u8..2) {
            prop_assert!(x < 2);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
