//! Spanning-tree construction and maintenance.
//!
//! DirQ runs on a spanning tree rooted at the sink: update messages flow up
//! it, queries flow down it. Three builders are provided:
//!
//! * [`SpanningTree::bfs`] — shortest-hop tree over a [`Topology`].
//! * [`SpanningTree::bounded_random`] — randomised tree with a maximum
//!   fan-out `k` and maximum depth `d`, matching the paper's description of
//!   its 50-node evaluation network ("k = 8 and d = 10").
//! * [`SpanningTree::complete_kary`] — the exact complete k-ary tree of the
//!   analytic model in Section 5 (with the tree edges *as* the radio graph).
//!
//! The tree also supports the repair operations the protocol layer performs
//! when LMAC reports a dead neighbour: detaching a subtree and re-attaching
//! a node under a new parent.

use dirq_sim::SimRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::Topology;
use crate::ids::NodeId;

/// A rooted spanning tree over a set of nodes.
///
/// Detached nodes (not currently in the tree — e.g. dead, or orphaned by a
/// parent death until repair) have no parent and depth `None`.
#[derive(Clone, Debug)]
pub struct SpanningTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<Option<u32>>,
}

impl SpanningTree {
    /// An empty tree over `n` nodes containing only `root`.
    pub fn new(n: usize, root: NodeId) -> Self {
        assert!(root.index() < n, "root out of range");
        let mut t = SpanningTree {
            root,
            parent: vec![None; n],
            children: vec![Vec::new(); n],
            depth: vec![None; n],
        };
        t.depth[root.index()] = Some(0);
        t
    }

    /// Breadth-first spanning tree of `topo` rooted at `root`: every node
    /// attaches at minimum hop distance. Unreachable nodes stay detached.
    pub fn bfs(topo: &Topology, root: NodeId) -> Self {
        let mut t = SpanningTree::new(topo.len(), root);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in topo.neighbors(u) {
                if v != root && t.depth[v.index()].is_none() {
                    t.attach(v, u);
                    queue.push_back(v);
                }
            }
        }
        t
    }

    /// BFS spanning tree visiting only nodes for which `passable` returns
    /// true (used when part of the deployment is initially offline).
    /// Impassable and unreachable nodes stay detached.
    pub fn bfs_filtered(topo: &Topology, root: NodeId, passable: impl Fn(NodeId) -> bool) -> Self {
        let mut t = SpanningTree::new(topo.len(), root);
        assert!(passable(root), "the root must be passable");
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in topo.neighbors(u) {
                if v != root && t.depth[v.index()].is_none() && passable(v) {
                    t.attach(v, u);
                    queue.push_back(v);
                }
            }
        }
        t
    }

    /// Randomised spanning tree with fan-out at most `k` and depth at most
    /// `d`, built by randomised BFS over `topo`. This mirrors the paper's
    /// evaluation network: 50 nodes, k = 8, d = 10 — bounds, not a complete
    /// tree (a complete (8,10)-tree would have ~10⁹ nodes).
    ///
    /// Returns `None` if the bounds make full coverage impossible for this
    /// topology (some node would be left detached).
    pub fn bounded_random(
        topo: &Topology,
        root: NodeId,
        k: usize,
        d: u32,
        rng: &mut SimRng,
    ) -> Option<Self> {
        assert!(k > 0, "fan-out bound must be positive");
        let mut t = SpanningTree::new(topo.len(), root);
        // Frontier of nodes that can still accept children.
        let mut frontier = vec![root];
        let mut uncovered = topo.len() - 1;
        while uncovered > 0 {
            if frontier.is_empty() {
                return None;
            }
            // Pick a random frontier node with spare capacity and depth < d.
            let fi = rng.gen_range(0..frontier.len());
            let u = frontier[fi];
            let du = t.depth[u.index()].expect("frontier nodes are attached");
            let mut candidates: Vec<NodeId> = topo
                .neighbors(u)
                .iter()
                .copied()
                .filter(|v| t.depth[v.index()].is_none())
                .collect();
            if candidates.is_empty() || t.children[u.index()].len() >= k || du >= d {
                frontier.swap_remove(fi);
                continue;
            }
            candidates.shuffle(rng);
            let spare = k - t.children[u.index()].len();
            // Attach a random number of children (at least one) to diversify
            // shapes between runs.
            let take = rng.gen_range(1..=spare.min(candidates.len()));
            for &v in candidates.iter().take(take) {
                t.attach(v, u);
                frontier.push(v);
                uncovered -= 1;
            }
        }
        Some(t)
    }

    /// The complete k-ary tree of depth `d` from the analytic model: node 0
    /// is the root; node `i`'s children are `k·i + 1 ..= k·i + k`. Returns
    /// the tree together with a [`Topology`] whose links are exactly the
    /// tree edges.
    pub fn complete_kary(k: usize, d: u32) -> (Topology, Self) {
        assert!(k >= 1, "arity must be at least 1");
        let n = crate::tree::complete_kary_node_count(k, d);
        let mut edges = Vec::with_capacity(n - 1);
        for i in 0..n {
            for c in 1..=k {
                let child = i * k + c;
                if child < n {
                    edges.push((NodeId::from_index(i), NodeId::from_index(child)));
                }
            }
        }
        let topo = Topology::from_edges(n, &edges);
        let tree = SpanningTree::bfs(&topo, NodeId::ROOT);
        (topo, tree)
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of node slots (attached or not).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree has no node slots.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Parent of `node` (`None` for the root and for detached nodes).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// Children of `node`, in attachment order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Depth of `node` (root = 0), `None` when detached.
    pub fn depth(&self, node: NodeId) -> Option<u32> {
        self.depth[node.index()]
    }

    /// Whether `node` is currently part of the tree.
    pub fn is_attached(&self, node: NodeId) -> bool {
        self.depth[node.index()].is_some()
    }

    /// Number of attached nodes.
    pub fn attached_count(&self) -> usize {
        self.depth.iter().filter(|d| d.is_some()).count()
    }

    /// Attached nodes with no children.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.len())
            .map(NodeId::from_index)
            .filter(|&n| self.is_attached(n) && self.children[n.index()].is_empty())
            .collect()
    }

    /// Maximum depth over attached nodes.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Maximum fan-out over attached nodes.
    pub fn max_fanout(&self) -> usize {
        self.children.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Attach detached `node` under `parent`.
    ///
    /// # Panics
    /// Panics if `node` is already attached, the parent is detached, or the
    /// attachment would create a cycle (`node == parent`).
    pub fn attach(&mut self, node: NodeId, parent: NodeId) {
        assert_ne!(node, parent, "cannot attach a node to itself");
        assert!(self.depth[node.index()].is_none(), "{node} is already attached");
        let pd = self.depth[parent.index()].expect("parent must be attached");
        self.parent[node.index()] = Some(parent);
        self.children[parent.index()].push(node);
        self.depth[node.index()] = Some(pd + 1);
    }

    /// Detach `node` and its entire subtree; returns the detached nodes
    /// (including `node`) in BFS order. Detaching the root is forbidden.
    pub fn detach_subtree(&mut self, node: NodeId) -> Vec<NodeId> {
        assert_ne!(node, self.root, "cannot detach the root");
        if !self.is_attached(node) {
            return Vec::new();
        }
        if let Some(p) = self.parent[node.index()] {
            self.children[p.index()].retain(|&c| c != node);
        }
        let mut order = vec![node];
        let mut i = 0;
        while i < order.len() {
            let u = order[i];
            i += 1;
            for &c in &self.children[u.index()] {
                order.push(c);
            }
        }
        for &u in &order {
            self.parent[u.index()] = None;
            self.children[u.index()].clear();
            self.depth[u.index()] = None;
        }
        order
    }

    /// Subtree of `node` in BFS order (including `node`) without detaching.
    pub fn subtree(&self, node: NodeId) -> Vec<NodeId> {
        if !self.is_attached(node) {
            return Vec::new();
        }
        let mut order = vec![node];
        let mut i = 0;
        while i < order.len() {
            let u = order[i];
            i += 1;
            order.extend_from_slice(&self.children[u.index()]);
        }
        order
    }

    /// Path from `node` up to the root (inclusive at both ends).
    /// Returns `None` for detached nodes.
    pub fn path_to_root(&self, node: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_attached(node) {
            return None;
        }
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(*path.last().unwrap(), self.root);
        Some(path)
    }

    /// Validate the structural invariants (acyclicity, parent/child
    /// consistency, correct depths). Intended for tests and debug builds.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.depth[self.root.index()] != Some(0) {
            return Err("root must be attached at depth 0".into());
        }
        if self.parent[self.root.index()].is_some() {
            return Err("root must have no parent".into());
        }
        for i in 0..self.len() {
            let node = NodeId::from_index(i);
            match (self.parent[i], self.depth[i]) {
                (Some(p), Some(d)) => {
                    let pd = self.depth[p.index()]
                        .ok_or_else(|| format!("{node} has detached parent {p}"))?;
                    if d != pd + 1 {
                        return Err(format!("{node} depth {d} != parent depth {pd} + 1"));
                    }
                    if !self.children[p.index()].contains(&node) {
                        return Err(format!("{p} does not list child {node}"));
                    }
                }
                (None, Some(_)) if node != self.root => {
                    return Err(format!("{node} attached but has no parent"));
                }
                (Some(_), None) => {
                    return Err(format!("{node} detached but has a parent"));
                }
                _ => {}
            }
            for &c in &self.children[i] {
                if self.parent[c.index()] != Some(node) {
                    return Err(format!("child {c} of {node} disagrees about its parent"));
                }
            }
        }
        // Acyclicity: walking up from any attached node reaches the root in
        // at most n steps.
        for i in 0..self.len() {
            let node = NodeId::from_index(i);
            if self.is_attached(node) {
                let mut cur = node;
                let mut steps = 0;
                while let Some(p) = self.parent[cur.index()] {
                    cur = p;
                    steps += 1;
                    if steps > self.len() {
                        return Err(format!("cycle reachable from {node}"));
                    }
                }
                if cur != self.root {
                    return Err(format!("{node} does not reach the root"));
                }
            }
        }
        Ok(())
    }
}

/// Number of nodes in a complete k-ary tree of depth `d` (root at depth 0).
///
/// For k = 1 this is `d + 1` (a path); for k ≥ 2 it is
/// `(k^(d+1) − 1)/(k − 1)`.
pub fn complete_kary_node_count(k: usize, d: u32) -> usize {
    assert!(k >= 1, "arity must be at least 1");
    if k == 1 {
        return d as usize + 1;
    }
    let k = k as u128;
    let n = (k.pow(d + 1) - 1) / (k - 1);
    usize::try_from(n).expect("tree too large for this platform")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{Placement, SinkPlacement};
    use crate::radio::UnitDisk;
    use dirq_sim::RngFactory;
    use proptest::prelude::*;

    fn grid_topology(n: usize, seed: u64) -> Topology {
        let mut rng = RngFactory::new(seed).stream("tree-test");
        Topology::deploy_connected(
            n,
            &Placement::UniformRandom { side: 100.0 },
            SinkPlacement::Corner,
            &UnitDisk::new(30.0),
            &mut rng,
            200,
        )
        .expect("connected deployment")
    }

    #[test]
    fn bfs_tree_covers_and_minimises_depth() {
        let topo = grid_topology(50, 3);
        let tree = SpanningTree::bfs(&topo, NodeId::ROOT);
        tree.check_invariants().unwrap();
        assert_eq!(tree.attached_count(), 50);
        let hops = topo.hop_distances(NodeId::ROOT, |_| true);
        for n in topo.nodes() {
            assert_eq!(tree.depth(n).unwrap(), hops[n.index()], "{n} not at BFS depth");
        }
    }

    #[test]
    fn complete_kary_shape() {
        let (topo, tree) = SpanningTree::complete_kary(2, 3);
        assert_eq!(topo.len(), 15);
        assert_eq!(topo.link_count(), 14);
        tree.check_invariants().unwrap();
        assert_eq!(tree.max_depth(), 3);
        assert_eq!(tree.max_fanout(), 2);
        assert_eq!(tree.leaves().len(), 8);
        assert_eq!(tree.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(tree.parent(NodeId(6)), Some(NodeId(2)));
    }

    #[test]
    fn kary_node_counts() {
        assert_eq!(complete_kary_node_count(2, 4), 31);
        assert_eq!(complete_kary_node_count(3, 2), 13);
        assert_eq!(complete_kary_node_count(1, 5), 6);
        assert_eq!(complete_kary_node_count(8, 1), 9);
    }

    #[test]
    fn bounded_random_respects_bounds() {
        let topo = grid_topology(50, 5);
        let mut rng = RngFactory::new(5).stream("bounded");
        let tree = SpanningTree::bounded_random(&topo, NodeId::ROOT, 8, 10, &mut rng)
            .expect("bounds are generous for this topology");
        tree.check_invariants().unwrap();
        assert_eq!(tree.attached_count(), 50);
        assert!(tree.max_fanout() <= 8, "fanout {}", tree.max_fanout());
        assert!(tree.max_depth() <= 10, "depth {}", tree.max_depth());
    }

    #[test]
    fn bounded_random_fails_on_impossible_bounds() {
        // A path graph cannot be covered with depth bound 1 from one end.
        let edges: Vec<(NodeId, NodeId)> = (0..9).map(|i| (NodeId(i), NodeId(i + 1))).collect();
        let topo = Topology::from_edges(10, &edges);
        let mut rng = RngFactory::new(1).stream("impossible");
        assert!(SpanningTree::bounded_random(&topo, NodeId::ROOT, 8, 1, &mut rng).is_none());
    }

    #[test]
    fn detach_and_reattach_subtree() {
        let (_, mut tree) = SpanningTree::complete_kary(2, 3);
        // Detach node 1's subtree: 1, 3, 4, 7, 8, 9, 10.
        let gone = tree.detach_subtree(NodeId(1));
        assert_eq!(gone.len(), 7);
        assert!(!tree.is_attached(NodeId(7)));
        assert_eq!(tree.attached_count(), 8);
        tree.check_invariants().unwrap();
        // Re-attach node 3 under node 2 (as a repair would).
        tree.attach(NodeId(3), NodeId(2));
        assert_eq!(tree.depth(NodeId(3)), Some(2));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn path_to_root_walks_parents() {
        let (_, tree) = SpanningTree::complete_kary(2, 3);
        let path = tree.path_to_root(NodeId(11)).unwrap();
        assert_eq!(path, vec![NodeId(11), NodeId(5), NodeId(2), NodeId(0)]);
    }

    #[test]
    fn subtree_lists_descendants() {
        let (_, tree) = SpanningTree::complete_kary(2, 2);
        let sub = tree.subtree(NodeId(1));
        assert_eq!(sub, vec![NodeId(1), NodeId(3), NodeId(4)]);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attach_panics() {
        let (_, mut tree) = SpanningTree::complete_kary(2, 2);
        tree.attach(NodeId(3), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "cannot detach the root")]
    fn detaching_root_panics() {
        let (_, mut tree) = SpanningTree::complete_kary(2, 2);
        tree.detach_subtree(NodeId::ROOT);
    }

    proptest! {
        /// Random bounded trees always satisfy their bounds and invariants.
        #[test]
        fn prop_bounded_random_invariants(seed in 0u64..50, k in 2usize..6, d in 3u32..12) {
            let topo = grid_topology(30, 1000 + seed);
            let mut rng = RngFactory::new(seed).stream("prop-bounded");
            if let Some(tree) = SpanningTree::bounded_random(&topo, NodeId::ROOT, k, d, &mut rng) {
                prop_assert!(tree.check_invariants().is_ok());
                prop_assert!(tree.max_fanout() <= k);
                prop_assert!(tree.max_depth() <= d);
                prop_assert_eq!(tree.attached_count(), 30);
                // Tree edges must exist in the radio graph.
                for n in topo.nodes() {
                    if let Some(p) = tree.parent(n) {
                        prop_assert!(topo.has_link(n, p));
                    }
                }
            }
        }

        /// BFS depth equals hop distance on arbitrary connected graphs.
        #[test]
        fn prop_bfs_depth_is_hop_distance(seed in 0u64..30) {
            let topo = grid_topology(25, 2000 + seed);
            let tree = SpanningTree::bfs(&topo, NodeId::ROOT);
            let hops = topo.hop_distances(NodeId::ROOT, |_| true);
            for n in topo.nodes() {
                prop_assert_eq!(tree.depth(n).unwrap(), hops[n.index()]);
            }
        }
    }
}
