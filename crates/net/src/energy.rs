//! Energy accounting.
//!
//! The paper's analytical and simulated comparisons use a unit cost model:
//! one unit per transmission, one unit per reception (Section 5). The
//! ledger keeps per-node tallies so experiments can also report hotspots.

use crate::ids::NodeId;
use dirq_sim::snap::{SnapError, SnapReader, SnapWriter};

/// Per-node transmission/reception tallies under a unit cost model.
#[derive(Clone, Debug)]
pub struct EnergyLedger {
    tx: Vec<u64>,
    rx: Vec<u64>,
    tx_cost: f64,
    rx_cost: f64,
}

impl EnergyLedger {
    /// Ledger for `n` nodes with the paper's unit costs (1 tx / 1 rx).
    pub fn new(n: usize) -> Self {
        EnergyLedger::with_costs(n, 1.0, 1.0)
    }

    /// Ledger with custom per-operation costs (for radio-chip ablations).
    pub fn with_costs(n: usize, tx_cost: f64, rx_cost: f64) -> Self {
        assert!(tx_cost >= 0.0 && rx_cost >= 0.0, "costs must be non-negative");
        EnergyLedger { tx: vec![0; n], rx: vec![0; n], tx_cost, rx_cost }
    }

    /// Record one transmission by `node`.
    #[inline]
    pub fn record_tx(&mut self, node: NodeId) {
        self.tx[node.index()] += 1;
    }

    /// Record one reception by `node`.
    #[inline]
    pub fn record_rx(&mut self, node: NodeId) {
        self.rx[node.index()] += 1;
    }

    /// Raw per-node reception tallies, indexed by node. Exists for
    /// row-disjoint parallel recording (the MAC's colour-class listener
    /// shards): workers touching disjoint nodes may increment their slots
    /// concurrently without synchronisation.
    pub fn rx_tallies_mut(&mut self) -> &mut [u64] {
        &mut self.rx
    }

    /// Transmissions by `node`.
    pub fn tx_count(&self, node: NodeId) -> u64 {
        self.tx[node.index()]
    }

    /// Receptions by `node`.
    pub fn rx_count(&self, node: NodeId) -> u64 {
        self.rx[node.index()]
    }

    /// Total transmissions across all nodes.
    pub fn total_tx(&self) -> u64 {
        self.tx.iter().sum()
    }

    /// Total receptions across all nodes.
    pub fn total_rx(&self) -> u64 {
        self.rx.iter().sum()
    }

    /// Total cost: `tx_cost·Σtx + rx_cost·Σrx`. With unit costs this is the
    /// paper's `C = CTx + CRx`.
    pub fn total_cost(&self) -> f64 {
        self.total_tx() as f64 * self.tx_cost + self.total_rx() as f64 * self.rx_cost
    }

    /// Cost attributable to a single node.
    pub fn node_cost(&self, node: NodeId) -> f64 {
        self.tx[node.index()] as f64 * self.tx_cost + self.rx[node.index()] as f64 * self.rx_cost
    }

    /// The node with the highest cost (ties broken by lowest id), with its
    /// cost; `None` for an empty ledger.
    pub fn hotspot(&self) -> Option<(NodeId, f64)> {
        (0..self.tx.len())
            .map(|i| (NodeId::from_index(i), self.node_cost(NodeId::from_index(i))))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
    }

    /// Zero every tally.
    pub fn reset(&mut self) {
        self.tx.fill(0);
        self.rx.fill(0);
    }

    /// Write the per-node tallies to `w` (costs are configuration, not
    /// state — the restored ledger keeps its own).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.tag(b"ELDG");
        w.u64s(&self.tx);
        w.u64s(&self.rx);
    }

    /// Overlay tallies captured by [`EnergyLedger::snap`] onto this
    /// ledger. The node count must match.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag(b"ELDG")?;
        let pos = r.position();
        let tx = r.u64s()?;
        let rx = r.u64s()?;
        if tx.len() != self.tx.len() || rx.len() != self.rx.len() {
            return Err(SnapError::Malformed { pos, what: "ledger node count mismatch" });
        }
        self.tx = tx;
        self.rx = rx;
        Ok(())
    }

    /// Add another ledger's tallies into this one (sizes must match).
    pub fn merge(&mut self, other: &EnergyLedger) {
        assert_eq!(self.tx.len(), other.tx.len(), "ledger size mismatch");
        for i in 0..self.tx.len() {
            self.tx[i] += other.tx[i];
            self.rx[i] += other.rx[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cost_model_matches_paper() {
        let mut l = EnergyLedger::new(3);
        l.record_tx(NodeId(0));
        l.record_rx(NodeId(1));
        l.record_rx(NodeId(2));
        // One broadcast heard by two neighbours: cost 1 + 2 = 3.
        assert_eq!(l.total_cost(), 3.0);
        assert_eq!(l.total_tx(), 1);
        assert_eq!(l.total_rx(), 2);
    }

    #[test]
    fn per_node_tallies() {
        let mut l = EnergyLedger::new(2);
        l.record_tx(NodeId(1));
        l.record_tx(NodeId(1));
        l.record_rx(NodeId(0));
        assert_eq!(l.tx_count(NodeId(1)), 2);
        assert_eq!(l.rx_count(NodeId(0)), 1);
        assert_eq!(l.node_cost(NodeId(1)), 2.0);
    }

    #[test]
    fn custom_costs() {
        let mut l = EnergyLedger::with_costs(1, 2.5, 0.5);
        l.record_tx(NodeId(0));
        l.record_rx(NodeId(0));
        assert_eq!(l.total_cost(), 3.0);
    }

    #[test]
    fn hotspot_finds_busiest_node() {
        let mut l = EnergyLedger::new(3);
        l.record_tx(NodeId(2));
        l.record_tx(NodeId(2));
        l.record_tx(NodeId(0));
        let (node, cost) = l.hotspot().unwrap();
        assert_eq!(node, NodeId(2));
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn hotspot_tie_breaks_to_lowest_id() {
        let mut l = EnergyLedger::new(3);
        l.record_tx(NodeId(1));
        l.record_tx(NodeId(2));
        assert_eq!(l.hotspot().unwrap().0, NodeId(1));
    }

    #[test]
    fn merge_and_reset() {
        let mut a = EnergyLedger::new(2);
        a.record_tx(NodeId(0));
        let mut b = EnergyLedger::new(2);
        b.record_rx(NodeId(1));
        a.merge(&b);
        assert_eq!(a.total_cost(), 2.0);
        a.reset();
        assert_eq!(a.total_cost(), 0.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn merge_size_mismatch_panics() {
        let mut a = EnergyLedger::new(2);
        let b = EnergyLedger::new(3);
        a.merge(&b);
    }
}
