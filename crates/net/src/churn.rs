//! Topology-churn schedules.
//!
//! Section 4.2 of the paper: "The Range Tables of DirQ are able to adapt to
//! changes within the network topology due to dead nodes or the addition of
//! new nodes." A [`ChurnPlan`] scripts those changes for an experiment:
//! which nodes die or come online at which epoch. The protocol layer learns
//! of them only through LMAC's cross-layer notifications.

use dirq_sim::SimRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::ids::NodeId;

/// A single scripted topology change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The node stops transmitting and receiving forever.
    Death(NodeId),
    /// The node comes online (used for post-deployment additions; the node
    /// must exist in the topology but is silent before this epoch).
    Birth(NodeId),
}

impl ChurnEvent {
    /// The node the event concerns.
    pub fn node(&self) -> NodeId {
        match *self {
            ChurnEvent::Death(n) | ChurnEvent::Birth(n) => n,
        }
    }
}

/// Scripted churn: a list of `(epoch, event)` pairs sorted by epoch.
#[derive(Clone, Debug, Default)]
pub struct ChurnPlan {
    events: Vec<(u64, ChurnEvent)>,
}

impl ChurnPlan {
    /// An empty plan (fixed topology).
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// Build from unsorted events.
    pub fn new(mut events: Vec<(u64, ChurnEvent)>) -> Self {
        events.sort_by_key(|&(e, ev)| (e, ev.node()));
        let plan = ChurnPlan { events };
        plan.validate();
        plan
    }

    /// Random plan: kill `deaths` distinct non-root nodes at uniform epochs
    /// in `[from_epoch, until_epoch)`.
    pub fn random_deaths(
        n_nodes: usize,
        deaths: usize,
        from_epoch: u64,
        until_epoch: u64,
        rng: &mut SimRng,
    ) -> Self {
        assert!(deaths < n_nodes, "cannot kill every node (root must survive)");
        assert!(from_epoch < until_epoch, "empty epoch window");
        let mut victims: Vec<NodeId> = (1..n_nodes).map(NodeId::from_index).collect();
        victims.shuffle(rng);
        victims.truncate(deaths);
        let events = victims
            .into_iter()
            .map(|v| (rng.gen_range(from_epoch..until_epoch), ChurnEvent::Death(v)))
            .collect();
        ChurnPlan::new(events)
    }

    /// Like [`ChurnPlan::random_deaths`], but victims and their death
    /// epochs are sampled so that `keeps_root_connected` holds for every
    /// *epoch-ordered* prefix of the dead set — i.e. at no point during
    /// the run is a still-alive node severed from the sink.
    ///
    /// Killing an unlucky victim set can sever the sink from the rest of
    /// the network, after which *no* dissemination scheme can reach any
    /// source — the paper's topology-dynamics experiments measure recovery
    /// from failures, not sink partition, so scenario generation rejects
    /// partitioning picks.
    ///
    /// The schedule is built in kill order: the candidate pool is shuffled
    /// once, each victim is the first candidate whose death keeps the
    /// predicate true given everyone already scheduled, then the sorted
    /// random epochs are assigned to the victims in that order. Every
    /// epoch-ordered prefix is therefore a validated selection prefix *by
    /// construction* — unlike rejection sampling over (victim, epoch)
    /// pairs, this cannot deadlock when an early draw lands at the window
    /// end (e.g. pendant chains that must die leaf-first). Equal epochs
    /// are spread apart when the window allows, so the invariant holds
    /// per event, not only per epoch.
    ///
    /// # Panics
    /// Panics when fewer than `deaths` victims can be chosen without
    /// violating the predicate (with sink-connectivity this requires
    /// `deaths ≥ n_nodes - 1`; a connected graph always has a removable
    /// non-root node).
    pub fn random_deaths_connected(
        n_nodes: usize,
        deaths: usize,
        from_epoch: u64,
        until_epoch: u64,
        rng: &mut SimRng,
        keeps_root_connected: impl Fn(&[NodeId]) -> bool,
    ) -> Self {
        assert!(deaths < n_nodes, "cannot kill every node (root must survive)");
        assert!(from_epoch < until_epoch, "empty epoch window");
        let mut pool: Vec<NodeId> = (1..n_nodes).map(NodeId::from_index).collect();
        pool.shuffle(rng);
        // Victims in kill order; each prefix satisfies the predicate.
        let mut victims: Vec<NodeId> = Vec::with_capacity(deaths);
        for k in 0..deaths {
            let accepted = (0..pool.len()).find(|&offset| {
                victims.push(pool[offset]);
                if keeps_root_connected(&victims) {
                    return true;
                }
                victims.pop();
                false
            });
            let Some(idx) = accepted else {
                panic!("only {k} of {deaths} deaths possible without partitioning the sink");
            };
            pool.swap_remove(idx);
        }
        // Epochs: uniform draws, sorted, then spread apart where ties
        // occurred (the window almost always has room). Assigned to the
        // victims in kill order, so the set dead by any epoch is exactly a
        // validated selection prefix.
        let mut epochs: Vec<u64> =
            (0..deaths).map(|_| rng.gen_range(from_epoch..until_epoch)).collect();
        epochs.sort_unstable();
        if (until_epoch - from_epoch) >= deaths as u64 {
            for i in 1..epochs.len() {
                if epochs[i] <= epochs[i - 1] {
                    epochs[i] = epochs[i - 1] + 1;
                }
            }
            // Bumping may have run past the window end; push back down
            // (room is guaranteed by the width check above).
            for i in (0..epochs.len()).rev() {
                let cap = until_epoch - (epochs.len() - i) as u64;
                if epochs[i] > cap {
                    epochs[i] = cap;
                }
            }
            debug_assert!(epochs.first().is_none_or(|&e| e >= from_epoch));
            debug_assert!(epochs.windows(2).all(|w| w[0] < w[1]));
        }
        let events =
            victims.into_iter().zip(epochs).map(|(v, e)| (e, ChurnEvent::Death(v))).collect();
        ChurnPlan::new(events)
    }

    /// All events, sorted by epoch.
    pub fn events(&self) -> &[(u64, ChurnEvent)] {
        &self.events
    }

    /// Events scheduled for exactly `epoch`.
    pub fn at_epoch(&self, epoch: u64) -> impl Iterator<Item = ChurnEvent> + '_ {
        let start = self.events.partition_point(|&(e, _)| e < epoch);
        self.events[start..].iter().take_while(move |&&(e, _)| e == epoch).map(|&(_, ev)| ev)
    }

    /// Whether the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Nodes that are born after epoch 0 (initially offline).
    pub fn initially_offline(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter_map(|&(e, ev)| match ev {
                ChurnEvent::Birth(n) if e > 0 => Some(n),
                _ => None,
            })
            .collect()
    }

    fn validate(&self) {
        // A node may die at most once, be born at most once, and if both,
        // the birth must precede the death. The root may not die.
        let mut seen_death = std::collections::HashSet::new();
        let mut birth_epoch = std::collections::HashMap::new();
        for &(e, ev) in &self.events {
            match ev {
                ChurnEvent::Death(n) => {
                    assert!(!n.is_root(), "the root/sink cannot die in a churn plan");
                    assert!(seen_death.insert(n), "{n} dies twice");
                    if let Some(&b) = birth_epoch.get(&n) {
                        assert!(b < e, "{n} dies at epoch {e} before its birth at {b}");
                    }
                }
                ChurnEvent::Birth(n) => {
                    assert!(birth_epoch.insert(n, e).is_none(), "{n} is born twice");
                    assert!(!seen_death.contains(&n), "{n} is born after dying");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirq_sim::RngFactory;

    #[test]
    fn empty_plan() {
        let p = ChurnPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.at_epoch(5).count(), 0);
    }

    #[test]
    fn events_sorted_and_queryable_by_epoch() {
        let p = ChurnPlan::new(vec![
            (30, ChurnEvent::Death(NodeId(3))),
            (10, ChurnEvent::Death(NodeId(1))),
            (10, ChurnEvent::Birth(NodeId(9))),
        ]);
        assert_eq!(p.len(), 3);
        let at10: Vec<ChurnEvent> = p.at_epoch(10).collect();
        assert_eq!(at10.len(), 2);
        assert_eq!(p.at_epoch(30).count(), 1);
        assert_eq!(p.at_epoch(20).count(), 0);
    }

    #[test]
    fn random_deaths_kills_distinct_nonroot_nodes() {
        let mut rng = RngFactory::new(4).stream("churn");
        let p = ChurnPlan::random_deaths(50, 10, 100, 1000, &mut rng);
        assert_eq!(p.len(), 10);
        let mut nodes: Vec<NodeId> = p.events().iter().map(|&(_, ev)| ev.node()).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 10, "victims must be distinct");
        assert!(nodes.iter().all(|n| !n.is_root()));
        assert!(p.events().iter().all(|&(e, _)| (100..1000).contains(&e)));
    }

    #[test]
    fn connected_deaths_respect_epoch_order() {
        // Line 0(sink)-1-2: node 1 may only die once node 2 is already
        // dead, otherwise node 2 is alive but severed from the sink. The
        // connectivity predicate must therefore be enforced against
        // epoch-ordered prefixes, not selection order.
        let line_ok = |victims: &[NodeId]| {
            // Node 2 is reachable iff node 1 is alive; node 1 always is.
            !victims.contains(&NodeId(1)) || victims.contains(&NodeId(2))
        };
        for seed in 0..200 {
            let mut rng = RngFactory::new(seed).stream("churn-line");
            let p = ChurnPlan::random_deaths_connected(3, 2, 10, 1000, &mut rng, line_ok);
            let deaths: Vec<(u64, NodeId)> =
                p.events().iter().map(|&(e, ev)| (e, ev.node())).collect();
            assert_eq!(deaths.len(), 2);
            assert_eq!(deaths[0].1, NodeId(2), "node 2 must die first (seed {seed}): {deaths:?}");
            assert!(deaths[0].0 <= deaths[1].0);
        }
    }

    #[test]
    fn connected_deaths_every_intermediate_set_keeps_predicate() {
        // Random 10-node ring-ish predicate: forbid killing both 1 and 2
        // unless 3 died earlier. Check the invariant on every prefix of
        // the produced plan, in epoch order.
        let pred = |victims: &[NodeId]| {
            !(victims.contains(&NodeId(1))
                && victims.contains(&NodeId(2))
                && !victims.contains(&NodeId(3)))
        };
        for seed in 0..100 {
            let mut rng = RngFactory::new(1000 + seed).stream("churn-pred");
            let p = ChurnPlan::random_deaths_connected(10, 5, 1, 500, &mut rng, pred);
            let mut dead: Vec<NodeId> = Vec::new();
            for &(_, ev) in p.events() {
                dead.push(ev.node());
                assert!(pred(&dead), "prefix {dead:?} violates the predicate (seed {seed})");
            }
        }
    }

    #[test]
    fn initially_offline_lists_late_births() {
        let p = ChurnPlan::new(vec![
            (0, ChurnEvent::Birth(NodeId(5))),
            (100, ChurnEvent::Birth(NodeId(6))),
        ]);
        assert_eq!(p.initially_offline(), vec![NodeId(6)]);
    }

    #[test]
    #[should_panic(expected = "root/sink cannot die")]
    fn root_death_rejected() {
        let _ = ChurnPlan::new(vec![(1, ChurnEvent::Death(NodeId::ROOT))]);
    }

    #[test]
    #[should_panic(expected = "dies twice")]
    fn double_death_rejected() {
        let _ = ChurnPlan::new(vec![
            (1, ChurnEvent::Death(NodeId(2))),
            (2, ChurnEvent::Death(NodeId(2))),
        ]);
    }

    #[test]
    #[should_panic(expected = "born after dying")]
    fn birth_after_death_rejected() {
        let _ = ChurnPlan::new(vec![
            (1, ChurnEvent::Death(NodeId(2))),
            (2, ChurnEvent::Birth(NodeId(2))),
        ]);
    }
}
