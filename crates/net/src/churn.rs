//! Topology-churn schedules.
//!
//! Section 4.2 of the paper: "The Range Tables of DirQ are able to adapt to
//! changes within the network topology due to dead nodes or the addition of
//! new nodes." A [`ChurnPlan`] scripts those changes for an experiment:
//! which nodes die or come online at which epoch. The protocol layer learns
//! of them only through LMAC's cross-layer notifications.

use dirq_sim::SimRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::ids::NodeId;

/// A single scripted topology change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The node stops transmitting and receiving forever.
    Death(NodeId),
    /// The node comes online (used for post-deployment additions; the node
    /// must exist in the topology but is silent before this epoch).
    Birth(NodeId),
}

impl ChurnEvent {
    /// The node the event concerns.
    pub fn node(&self) -> NodeId {
        match *self {
            ChurnEvent::Death(n) | ChurnEvent::Birth(n) => n,
        }
    }
}

/// Scripted churn: a list of `(epoch, event)` pairs sorted by epoch.
#[derive(Clone, Debug, Default)]
pub struct ChurnPlan {
    events: Vec<(u64, ChurnEvent)>,
}

impl ChurnPlan {
    /// An empty plan (fixed topology).
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// Build from unsorted events.
    pub fn new(mut events: Vec<(u64, ChurnEvent)>) -> Self {
        events.sort_by_key(|&(e, ev)| (e, ev.node()));
        let plan = ChurnPlan { events };
        plan.validate();
        plan
    }

    /// Random plan: kill `deaths` distinct non-root nodes at uniform epochs
    /// in `[from_epoch, until_epoch)`.
    pub fn random_deaths(
        n_nodes: usize,
        deaths: usize,
        from_epoch: u64,
        until_epoch: u64,
        rng: &mut SimRng,
    ) -> Self {
        assert!(deaths < n_nodes, "cannot kill every node (root must survive)");
        assert!(from_epoch < until_epoch, "empty epoch window");
        let mut victims: Vec<NodeId> =
            (1..n_nodes).map(NodeId::from_index).collect();
        victims.shuffle(rng);
        victims.truncate(deaths);
        let events = victims
            .into_iter()
            .map(|v| (rng.gen_range(from_epoch..until_epoch), ChurnEvent::Death(v)))
            .collect();
        ChurnPlan::new(events)
    }

    /// All events, sorted by epoch.
    pub fn events(&self) -> &[(u64, ChurnEvent)] {
        &self.events
    }

    /// Events scheduled for exactly `epoch`.
    pub fn at_epoch(&self, epoch: u64) -> impl Iterator<Item = ChurnEvent> + '_ {
        let start = self.events.partition_point(|&(e, _)| e < epoch);
        self.events[start..]
            .iter()
            .take_while(move |&&(e, _)| e == epoch)
            .map(|&(_, ev)| ev)
    }

    /// Whether the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Nodes that are born after epoch 0 (initially offline).
    pub fn initially_offline(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter_map(|&(e, ev)| match ev {
                ChurnEvent::Birth(n) if e > 0 => Some(n),
                _ => None,
            })
            .collect()
    }

    fn validate(&self) {
        // A node may die at most once, be born at most once, and if both,
        // the birth must precede the death. The root may not die.
        let mut seen_death = std::collections::HashSet::new();
        let mut birth_epoch = std::collections::HashMap::new();
        for &(e, ev) in &self.events {
            match ev {
                ChurnEvent::Death(n) => {
                    assert!(!n.is_root(), "the root/sink cannot die in a churn plan");
                    assert!(seen_death.insert(n), "{n} dies twice");
                    if let Some(&b) = birth_epoch.get(&n) {
                        assert!(b < e, "{n} dies at epoch {e} before its birth at {b}");
                    }
                }
                ChurnEvent::Birth(n) => {
                    assert!(
                        birth_epoch.insert(n, e).is_none(),
                        "{n} is born twice"
                    );
                    assert!(!seen_death.contains(&n), "{n} is born after dying");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirq_sim::RngFactory;

    #[test]
    fn empty_plan() {
        let p = ChurnPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.at_epoch(5).count(), 0);
    }

    #[test]
    fn events_sorted_and_queryable_by_epoch() {
        let p = ChurnPlan::new(vec![
            (30, ChurnEvent::Death(NodeId(3))),
            (10, ChurnEvent::Death(NodeId(1))),
            (10, ChurnEvent::Birth(NodeId(9))),
        ]);
        assert_eq!(p.len(), 3);
        let at10: Vec<ChurnEvent> = p.at_epoch(10).collect();
        assert_eq!(at10.len(), 2);
        assert_eq!(p.at_epoch(30).count(), 1);
        assert_eq!(p.at_epoch(20).count(), 0);
    }

    #[test]
    fn random_deaths_kills_distinct_nonroot_nodes() {
        let mut rng = RngFactory::new(4).stream("churn");
        let p = ChurnPlan::random_deaths(50, 10, 100, 1000, &mut rng);
        assert_eq!(p.len(), 10);
        let mut nodes: Vec<NodeId> = p.events().iter().map(|&(_, ev)| ev.node()).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 10, "victims must be distinct");
        assert!(nodes.iter().all(|n| !n.is_root()));
        assert!(p.events().iter().all(|&(e, _)| (100..1000).contains(&e)));
    }

    #[test]
    fn initially_offline_lists_late_births() {
        let p = ChurnPlan::new(vec![
            (0, ChurnEvent::Birth(NodeId(5))),
            (100, ChurnEvent::Birth(NodeId(6))),
        ]);
        assert_eq!(p.initially_offline(), vec![NodeId(6)]);
    }

    #[test]
    #[should_panic(expected = "root/sink cannot die")]
    fn root_death_rejected() {
        let _ = ChurnPlan::new(vec![(1, ChurnEvent::Death(NodeId::ROOT))]);
    }

    #[test]
    #[should_panic(expected = "dies twice")]
    fn double_death_rejected() {
        let _ = ChurnPlan::new(vec![
            (1, ChurnEvent::Death(NodeId(2))),
            (2, ChurnEvent::Death(NodeId(2))),
        ]);
    }

    #[test]
    #[should_panic(expected = "born after dying")]
    fn birth_after_death_rejected() {
        let _ = ChurnPlan::new(vec![
            (1, ChurnEvent::Death(NodeId(2))),
            (2, ChurnEvent::Birth(NodeId(2))),
        ]);
    }
}
