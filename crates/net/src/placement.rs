//! Node deployment strategies.
//!
//! The paper's environmental-monitoring scenario deploys nodes over a
//! forest. We support the three standard WSN layouts; experiments default
//! to uniform random placement with the sink pinned to a corner, which
//! yields the deep, irregular trees the paper's tree bounds (k ≤ 8,
//! d ≤ 10) suggest.

use dirq_sim::SimRng;
use rand::Rng;

use crate::geometry::Position;

/// How the sink (node 0) is positioned relative to the field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkPlacement {
    /// Sink at the field's corner (origin) — deep trees, the default.
    Corner,
    /// Sink at the centre — shallow trees.
    Center,
    /// Sink placed like every other node.
    Random,
}

/// Deterministic positions for `count` secondary sinks spread over a
/// `bounds` rectangle: the far corner first, then the remaining corners,
/// the centre and the edge midpoints. With the primary sink at the origin
/// corner this maximises pairwise sink spacing for small counts.
///
/// Consumes no randomness, so repositioning nodes onto these sites never
/// perturbs the deployment's RNG stream.
///
/// # Panics
/// Panics when more than eight sites are requested.
pub fn extra_sink_sites(bounds: (f64, f64), count: usize) -> Vec<Position> {
    let (bx, by) = bounds;
    let sites = [
        (bx, by),
        (bx, 0.0),
        (0.0, by),
        (bx / 2.0, by / 2.0),
        (bx / 2.0, by),
        (bx / 2.0, 0.0),
        (0.0, by / 2.0),
        (bx, by / 2.0),
    ];
    assert!(count <= sites.len(), "at most {} extra sinks supported", sites.len());
    sites[..count].iter().map(|&(x, y)| Position::new(x, y)).collect()
}

/// A deployment strategy.
#[derive(Clone, Debug)]
pub enum Placement {
    /// Independently uniform positions in a `side × side` square.
    UniformRandom {
        /// Side length of the deployment square, metres.
        side: f64,
    },
    /// A √n × √n grid filling a `side × side` square, each point jittered
    /// uniformly by ±`jitter` in both axes.
    JitteredGrid {
        /// Side length of the deployment square, metres.
        side: f64,
        /// Maximum absolute jitter per axis, metres.
        jitter: f64,
    },
    /// `clusters` Gaussian blobs with standard deviation `spread`, centred
    /// uniformly at random in the square.
    Clustered {
        /// Side length of the deployment square, metres.
        side: f64,
        /// Number of cluster centres.
        clusters: usize,
        /// Standard deviation of each blob, metres.
        spread: f64,
    },
    /// Independently uniform positions in a `length × width` strip
    /// (length ≫ width) — the pipeline/road-monitoring layout. With
    /// [`SinkPlacement::Corner`] the sink sits at the `x = 0` end, giving
    /// the deepest trees of any family.
    Corridor {
        /// Strip length along x, metres.
        length: f64,
        /// Strip width along y, metres.
        width: f64,
    },
}

impl Placement {
    /// Deployment square side length. For the (non-square) corridor this
    /// is the dominant dimension — the extent a world generator should
    /// cover.
    pub fn side(&self) -> f64 {
        match *self {
            Placement::UniformRandom { side }
            | Placement::JitteredGrid { side, .. }
            | Placement::Clustered { side, .. } => side,
            Placement::Corridor { length, .. } => length,
        }
    }

    /// Bounding rectangle `(x extent, y extent)` of the deployment area.
    pub fn bounds(&self) -> (f64, f64) {
        match *self {
            Placement::Corridor { length, width } => (length, width),
            _ => (self.side(), self.side()),
        }
    }

    /// Generate positions for `n` nodes. Index 0 is the sink, placed
    /// according to `sink`.
    pub fn generate(&self, n: usize, sink: SinkPlacement, rng: &mut SimRng) -> Vec<Position> {
        assert!(n > 0, "a network needs at least the sink node");
        let (bx, by) = self.bounds();
        assert!(bx > 0.0 && by > 0.0, "deployment area must have positive extent");
        let mut positions = Vec::with_capacity(n);

        // Sink first so the remaining draws are identical across sink modes.
        positions.push(match sink {
            SinkPlacement::Corner => Position::new(0.0, 0.0),
            SinkPlacement::Center => Position::new(bx / 2.0, by / 2.0),
            SinkPlacement::Random => Position::new(rng.gen_range(0.0..bx), rng.gen_range(0.0..by)),
        });

        match *self {
            Placement::UniformRandom { side } => {
                for _ in 1..n {
                    positions
                        .push(Position::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)));
                }
            }
            Placement::Corridor { length, width } => {
                for _ in 1..n {
                    positions
                        .push(Position::new(rng.gen_range(0.0..length), rng.gen_range(0.0..width)));
                }
            }
            Placement::JitteredGrid { side, jitter } => {
                let cols = (n as f64).sqrt().ceil() as usize;
                let step = side / cols as f64;
                let mut placed = 1;
                'outer: for r in 0..cols {
                    for c in 0..cols {
                        if placed >= n {
                            break 'outer;
                        }
                        // Skip the cell the sink occupies conceptually
                        // (cell 0,0) only when the sink is at the corner.
                        if sink == SinkPlacement::Corner && r == 0 && c == 0 {
                            continue;
                        }
                        let jx = if jitter > 0.0 { rng.gen_range(-jitter..jitter) } else { 0.0 };
                        let jy = if jitter > 0.0 { rng.gen_range(-jitter..jitter) } else { 0.0 };
                        let x = ((c as f64 + 0.5) * step + jx).clamp(0.0, side);
                        let y = ((r as f64 + 0.5) * step + jy).clamp(0.0, side);
                        positions.push(Position::new(x, y));
                        placed += 1;
                    }
                }
                // If skipping the corner cell left us short, fill randomly.
                while positions.len() < n {
                    positions
                        .push(Position::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)));
                }
            }
            Placement::Clustered { side, clusters, spread } => {
                assert!(clusters > 0, "need at least one cluster");
                let centres: Vec<Position> = (0..clusters)
                    .map(|_| Position::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
                    .collect();
                for i in 1..n {
                    let c = &centres[i % clusters];
                    let x = (c.x + dirq_sim::rng::sample_normal(rng, 0.0, spread)).clamp(0.0, side);
                    let y = (c.y + dirq_sim::rng::sample_normal(rng, 0.0, spread)).clamp(0.0, side);
                    positions.push(Position::new(x, y));
                }
            }
        }
        debug_assert_eq!(positions.len(), n);
        positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirq_sim::RngFactory;

    fn rng() -> SimRng {
        RngFactory::new(7).stream("placement-test")
    }

    #[test]
    fn uniform_positions_inside_square() {
        let p = Placement::UniformRandom { side: 100.0 };
        let pos = p.generate(200, SinkPlacement::Random, &mut rng());
        assert_eq!(pos.len(), 200);
        for q in &pos {
            assert!((0.0..=100.0).contains(&q.x) && (0.0..=100.0).contains(&q.y));
        }
    }

    #[test]
    fn sink_pinning() {
        let p = Placement::UniformRandom { side: 50.0 };
        let corner = p.generate(10, SinkPlacement::Corner, &mut rng());
        assert_eq!(corner[0], Position::new(0.0, 0.0));
        let center = p.generate(10, SinkPlacement::Center, &mut rng());
        assert_eq!(center[0], Position::new(25.0, 25.0));
    }

    #[test]
    fn grid_is_roughly_regular_without_jitter() {
        let p = Placement::JitteredGrid { side: 100.0, jitter: 0.0 };
        let pos = p.generate(16, SinkPlacement::Center, &mut rng());
        assert_eq!(pos.len(), 16);
        // Without jitter all non-sink points sit at half-step offsets.
        let step = 100.0 / 4.0;
        for q in &pos[1..] {
            let fx = (q.x / step) - (q.x / step).floor();
            assert!((fx - 0.5).abs() < 1e-9, "x={} not on grid", q.x);
        }
    }

    #[test]
    fn grid_fills_exact_count_with_corner_sink() {
        let p = Placement::JitteredGrid { side: 100.0, jitter: 1.0 };
        let pos = p.generate(50, SinkPlacement::Corner, &mut rng());
        assert_eq!(pos.len(), 50);
    }

    #[test]
    fn clustered_positions_clamped() {
        let p = Placement::Clustered { side: 10.0, clusters: 3, spread: 30.0 };
        let pos = p.generate(100, SinkPlacement::Corner, &mut rng());
        for q in &pos {
            assert!((0.0..=10.0).contains(&q.x) && (0.0..=10.0).contains(&q.y));
        }
    }

    #[test]
    fn corridor_positions_inside_strip() {
        let p = Placement::Corridor { length: 2000.0, width: 60.0 };
        assert_eq!(p.bounds(), (2000.0, 60.0));
        assert_eq!(p.side(), 2000.0, "dominant dimension drives world extent");
        let pos = p.generate(300, SinkPlacement::Corner, &mut rng());
        assert_eq!(pos[0], Position::new(0.0, 0.0), "sink at the origin end");
        for q in &pos[1..] {
            assert!((0.0..=2000.0).contains(&q.x) && (0.0..=60.0).contains(&q.y));
        }
        // The strip is actually used end to end.
        let max_x = pos.iter().map(|q| q.x).fold(0.0, f64::max);
        assert!(max_x > 1500.0, "corridor should span its length, got {max_x:.0}");
    }

    #[test]
    fn corridor_center_sink_respects_rectangle() {
        let p = Placement::Corridor { length: 100.0, width: 10.0 };
        let pos = p.generate(5, SinkPlacement::Center, &mut rng());
        assert_eq!(pos[0], Position::new(50.0, 5.0));
    }

    #[test]
    fn deterministic_for_same_rng_seed() {
        let p = Placement::UniformRandom { side: 100.0 };
        let a = p.generate(30, SinkPlacement::Corner, &mut rng());
        let b = p.generate(30, SinkPlacement::Corner, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least the sink")]
    fn zero_nodes_rejected() {
        let p = Placement::UniformRandom { side: 1.0 };
        let _ = p.generate(0, SinkPlacement::Corner, &mut rng());
    }

    #[test]
    fn extra_sink_sites_are_spread_and_deterministic() {
        let sites = extra_sink_sites((100.0, 60.0), 4);
        assert_eq!(sites[0], Position::new(100.0, 60.0), "far corner first");
        assert_eq!(sites[3], Position::new(50.0, 30.0), "then the centre");
        assert_eq!(sites, extra_sink_sites((100.0, 60.0), 4));
        // All sites distinct and inside the rectangle.
        for (i, a) in sites.iter().enumerate() {
            assert!((0.0..=100.0).contains(&a.x) && (0.0..=60.0).contains(&a.y));
            for b in &sites[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_extra_sinks_rejected() {
        let _ = extra_sink_sites((10.0, 10.0), 9);
    }
}
