//! Fixed-capacity node bitsets for the hot simulation loops.
//!
//! The MAC's per-slot bookkeeping (who is transmitting, who can hear, who
//! collided) was previously linear scans over `Vec<NodeId>`; a [`NodeBits`]
//! gives O(1) membership and ascending-order iteration with zero
//! steady-state allocations.

use crate::ids::NodeId;

/// A set of node ids over a fixed universe `0..n`, backed by a word array.
#[derive(Clone, Debug, Default)]
pub struct NodeBits {
    words: Vec<u64>,
    n: usize,
}

impl NodeBits {
    /// Empty set over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        NodeBits { words: vec![0; n.div_ceil(64)], n }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Insert `node`; returns `true` when it was not present before.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        let i = node.index();
        debug_assert!(i < self.n, "node out of universe");
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Remove `node`; returns `true` when it was present.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        let i = node.index();
        debug_assert!(i < self.n, "node out of universe");
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Whether `node` is present.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        debug_assert!(i < self.n, "node out of universe");
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Remove every element (retains capacity).
    #[inline]
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate elements in ascending id order.
    pub fn iter(&self) -> NodeBitsIter<'_> {
        NodeBitsIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending iterator over a [`NodeBits`].
pub struct NodeBitsIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for NodeBitsIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(NodeId::from_index(self.word_idx * 64 + bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeBits::new(130);
        assert!(s.insert(NodeId(0)));
        assert!(s.insert(NodeId(64)));
        assert!(s.insert(NodeId(129)));
        assert!(!s.insert(NodeId(64)), "double insert reports already-present");
        assert!(s.contains(NodeId(129)) && !s.contains(NodeId(1)));
        assert_eq!(s.len(), 3);
        assert!(s.remove(NodeId(64)));
        assert!(!s.remove(NodeId(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iteration_is_ascending() {
        let mut s = NodeBits::new(200);
        for i in [150u32, 3, 64, 63, 199, 0] {
            s.insert(NodeId(i));
        }
        let got: Vec<u32> = s.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![0, 3, 63, 64, 150, 199]);
    }

    #[test]
    fn clear_retains_universe() {
        let mut s = NodeBits::new(70);
        s.insert(NodeId(69));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.universe(), 70);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn empty_universe() {
        let s = NodeBits::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
