//! 2-D geometry for node deployment.

/// A point in the deployment plane, in metres.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Position {
    /// Easting, metres.
    pub x: f64,
    /// Northing, metres.
    pub y: f64,
}

impl Position {
    /// Construct from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Position) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt for threshold tests).
    #[inline]
    pub fn distance_sq(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise midpoint.
    pub fn midpoint(&self, other: &Position) -> Position {
        Position::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Write both coordinates to `w` by bit pattern.
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.f64(self.x);
        w.f64(self.y);
    }

    /// Rebuild a position captured by [`Position::snap`].
    pub fn unsnap(r: &mut dirq_sim::SnapReader<'_>) -> Result<Self, dirq_sim::SnapError> {
        Ok(Position { x: r.f64()?, y: r.f64()? })
    }
}

/// An axis-aligned rectangle (bounding box) in the deployment plane.
///
/// Used by the location extension: nodes advertise the bounding box of
/// their subtree's positions so spatially scoped queries can be pruned the
/// same way value ranges prune value queries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Smallest x.
    pub x_min: f64,
    /// Smallest y.
    pub y_min: f64,
    /// Largest x.
    pub x_max: f64,
    /// Largest y.
    pub y_max: f64,
}

impl Rect {
    /// Rectangle from two corners (any orientation).
    pub fn new(a: Position, b: Position) -> Self {
        Rect { x_min: a.x.min(b.x), y_min: a.y.min(b.y), x_max: a.x.max(b.x), y_max: a.y.max(b.y) }
    }

    /// Degenerate rectangle containing exactly one point.
    pub fn point(p: Position) -> Self {
        Rect { x_min: p.x, y_min: p.y, x_max: p.x, y_max: p.y }
    }

    /// Square of side `2·half` centred on `c`.
    pub fn centered(c: Position, half: f64) -> Self {
        debug_assert!(half >= 0.0, "half-extent must be non-negative");
        Rect { x_min: c.x - half, y_min: c.y - half, x_max: c.x + half, y_max: c.y + half }
    }

    /// Whether `p` lies inside (inclusive).
    #[inline]
    pub fn contains(&self, p: &Position) -> bool {
        p.x >= self.x_min && p.x <= self.x_max && p.y >= self.y_min && p.y <= self.y_max
    }

    /// Whether the two rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x_min <= other.x_max
            && self.x_max >= other.x_min
            && self.y_min <= other.y_max
            && self.y_max >= other.y_min
    }

    /// Smallest rectangle containing both.
    pub fn hull(&self, other: &Rect) -> Rect {
        Rect {
            x_min: self.x_min.min(other.x_min),
            y_min: self.y_min.min(other.y_min),
            x_max: self.x_max.max(other.x_max),
            y_max: self.y_max.max(other.y_max),
        }
    }

    /// Width × height.
    pub fn area(&self) -> f64 {
        (self.x_max - self.x_min).max(0.0) * (self.y_max - self.y_min).max(0.0)
    }

    /// Write the four bounds to `w` by bit pattern.
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.f64(self.x_min);
        w.f64(self.y_min);
        w.f64(self.x_max);
        w.f64(self.y_max);
    }

    /// Rebuild a rectangle captured by [`Rect::snap`].
    pub fn unsnap(r: &mut dirq_sim::SnapReader<'_>) -> Result<Self, dirq_sim::SnapError> {
        Ok(Rect { x_min: r.f64()?, y_min: r.f64()?, x_max: r.f64()?, y_max: r.f64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pythagorean_distance() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Position::new(2.0, 2.0);
        let b = Position::new(4.0, 6.0);
        assert_eq!(a.midpoint(&b), Position::new(3.0, 4.0));
    }

    #[test]
    fn rect_normalises_corners() {
        let r = Rect::new(Position::new(5.0, 1.0), Position::new(2.0, 4.0));
        assert_eq!(r, Rect { x_min: 2.0, y_min: 1.0, x_max: 5.0, y_max: 4.0 });
        assert_eq!(r.area(), 9.0);
    }

    #[test]
    fn rect_contains_boundary_inclusive() {
        let r = Rect::centered(Position::new(0.0, 0.0), 1.0);
        assert!(r.contains(&Position::new(1.0, 1.0)));
        assert!(r.contains(&Position::new(0.0, 0.0)));
        assert!(!r.contains(&Position::new(1.0001, 0.0)));
    }

    #[test]
    fn rect_intersections() {
        let a = Rect::new(Position::new(0.0, 0.0), Position::new(2.0, 2.0));
        let b = Rect::new(Position::new(2.0, 2.0), Position::new(3.0, 3.0)); // corner touch
        let c = Rect::new(Position::new(2.1, 2.1), Position::new(3.0, 3.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn rect_hull_and_point() {
        let a = Rect::point(Position::new(1.0, 1.0));
        assert_eq!(a.area(), 0.0);
        let h = a.hull(&Rect::point(Position::new(4.0, -1.0)));
        assert_eq!(h, Rect { x_min: 1.0, y_min: -1.0, x_max: 4.0, y_max: 1.0 });
        assert!(h.contains(&Position::new(2.0, 0.0)));
    }

    proptest! {
        /// Hull contains both inputs; intersection is symmetric.
        #[test]
        fn prop_rect_hull_contains(
            ax in -100.0f64..100.0, ay in -100.0f64..100.0,
            bx in -100.0f64..100.0, by in -100.0f64..100.0,
            cx in -100.0f64..100.0, cy in -100.0f64..100.0,
        ) {
            let a = Rect::new(Position::new(ax, ay), Position::new(bx, by));
            let b = Rect::point(Position::new(cx, cy));
            let h = a.hull(&b);
            prop_assert!(h.contains(&Position::new(cx, cy)));
            prop_assert!(h.contains(&Position::new(ax, ay)));
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
            prop_assert!(h.area() >= a.area());
        }

        /// Distance is symmetric, non-negative, zero iff identical points.
        #[test]
        fn prop_metric_axioms(
            ax in -1e4f64..1e4, ay in -1e4f64..1e4,
            bx in -1e4f64..1e4, by in -1e4f64..1e4,
        ) {
            let a = Position::new(ax, ay);
            let b = Position::new(bx, by);
            prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
            prop_assert!(a.distance(&b) >= 0.0);
            prop_assert!((a.distance(&a)).abs() < 1e-12);
        }

        /// Triangle inequality.
        #[test]
        fn prop_triangle_inequality(
            ax in -1e3f64..1e3, ay in -1e3f64..1e3,
            bx in -1e3f64..1e3, by in -1e3f64..1e3,
            cx in -1e3f64..1e3, cy in -1e3f64..1e3,
        ) {
            let a = Position::new(ax, ay);
            let b = Position::new(bx, by);
            let c = Position::new(cx, cy);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }
    }
}
