//! Graphviz (DOT) export of topologies and spanning trees.
//!
//! Debug/documentation aid: `dot -Tsvg` renders the deployment with tree
//! edges bold and pure radio links dashed.

use std::fmt::Write as _;

use crate::graph::Topology;
use crate::ids::NodeId;
use crate::tree::SpanningTree;

/// Render the radio graph alone.
pub fn topology_dot(topo: &Topology) -> String {
    render(topo, None)
}

/// Render the radio graph with `tree` edges highlighted.
pub fn topology_with_tree_dot(topo: &Topology, tree: &SpanningTree) -> String {
    render(topo, Some(tree))
}

fn render(topo: &Topology, tree: Option<&SpanningTree>) -> String {
    let mut out = String::from("graph wsn {\n  node [shape=circle, fontsize=10];\n");
    for n in topo.nodes() {
        let p = topo.position(n);
        let style = if n.is_root() { ", style=filled, fillcolor=gold" } else { "" };
        let _ = writeln!(out, "  {} [pos=\"{:.1},{:.1}!\"{}];", n.index(), p.x, p.y, style);
    }
    for a in topo.nodes() {
        for &b in topo.neighbors(a) {
            if a < b {
                let is_tree_edge =
                    tree.map(|t| t.parent(a) == Some(b) || t.parent(b) == Some(a)).unwrap_or(false);
                let attrs = if is_tree_edge {
                    " [penwidth=2]"
                } else if tree.is_some() {
                    " [style=dashed, color=gray]"
                } else {
                    ""
                };
                let _ = writeln!(out, "  {} -- {}{};", a.index(), b.index(), attrs);
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Render only the spanning tree as a directed graph (parent → child).
pub fn tree_dot(tree: &SpanningTree) -> String {
    let mut out = String::from("digraph tree {\n  node [shape=circle, fontsize=10];\n");
    for i in 0..tree.len() {
        let n = NodeId::from_index(i);
        if tree.is_attached(n) {
            for &c in tree.children(n) {
                let _ = writeln!(out, "  {} -> {};", n.index(), c.index());
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_dot_contains_all_edges() {
        let topo = Topology::from_edges(3, &[(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
        let dot = topology_dot(&topo);
        assert!(dot.contains("0 -- 1"));
        assert!(dot.contains("1 -- 2"));
        assert!(dot.starts_with("graph wsn {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn tree_edges_highlighted() {
        let (topo, tree) = SpanningTree::complete_kary(2, 1);
        let dot = topology_with_tree_dot(&topo, &tree);
        assert!(dot.contains("penwidth=2"));
        assert!(dot.contains("fillcolor=gold"), "root should be highlighted");
    }

    #[test]
    fn tree_dot_directed() {
        let (_, tree) = SpanningTree::complete_kary(2, 1);
        let dot = tree_dot(&tree);
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("0 -> 2"));
    }

    #[test]
    fn detached_nodes_have_no_tree_edges() {
        let (_, mut tree) = SpanningTree::complete_kary(2, 2);
        tree.detach_subtree(NodeId(1));
        let dot = tree_dot(&tree);
        assert!(!dot.contains("1 ->"));
        assert!(!dot.contains("-> 3"));
    }
}
