//! An inline small-vector of node ids.
//!
//! Multicast destination lists are almost always tiny (the paper's trees
//! have mean fan-out ≈ 1, unicast is a 1-element multicast), yet the MAC
//! previously heap-allocated a `Vec<NodeId>` per queued message. A
//! [`NodeList`] stores up to four ids inline and only spills to the heap
//! beyond that.

use crate::ids::NodeId;

/// Inline capacity of a [`NodeList`].
pub const NODELIST_INLINE: usize = 4;

/// A list of node ids, inline up to [`NODELIST_INLINE`] elements.
#[derive(Clone, Debug)]
pub enum NodeList {
    /// The common case: at most four ids, no heap allocation.
    Inline {
        /// Number of valid entries in `buf`.
        len: u8,
        /// Storage; entries beyond `len` are meaningless.
        buf: [NodeId; NODELIST_INLINE],
    },
    /// Fallback for larger fan-outs.
    Heap(Vec<NodeId>),
}

impl NodeList {
    /// An empty list.
    pub const fn new() -> Self {
        NodeList::Inline { len: 0, buf: [NodeId(0); NODELIST_INLINE] }
    }

    /// A single-element list (unicast).
    pub fn single(node: NodeId) -> Self {
        let mut l = NodeList::new();
        l.push(node);
        l
    }

    /// Append `node`, spilling to the heap when the inline buffer is full.
    pub fn push(&mut self, node: NodeId) {
        match self {
            NodeList::Inline { len, buf } => {
                if (*len as usize) < NODELIST_INLINE {
                    buf[*len as usize] = node;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(NODELIST_INLINE * 2);
                    v.extend_from_slice(&buf[..]);
                    v.push(node);
                    *self = NodeList::Heap(v);
                }
            }
            NodeList::Heap(v) => v.push(node),
        }
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        match self {
            NodeList::Inline { len, buf } => &buf[..*len as usize],
            NodeList::Heap(v) => v,
        }
    }
}

impl Default for NodeList {
    fn default() -> Self {
        NodeList::new()
    }
}

impl std::ops::Deref for NodeList {
    type Target = [NodeId];

    fn deref(&self) -> &[NodeId] {
        self.as_slice()
    }
}

impl PartialEq for NodeList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for NodeList {}

impl FromIterator<NodeId> for NodeList {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut l = NodeList::new();
        for n in iter {
            l.push(n);
        }
        l
    }
}

impl From<Vec<NodeId>> for NodeList {
    fn from(v: Vec<NodeId>) -> Self {
        if v.len() <= NODELIST_INLINE {
            v.into_iter().collect()
        } else {
            NodeList::Heap(v)
        }
    }
}

impl From<&[NodeId]> for NodeList {
    fn from(s: &[NodeId]) -> Self {
        s.iter().copied().collect()
    }
}

impl<const N: usize> From<[NodeId; N]> for NodeList {
    fn from(s: [NodeId; N]) -> Self {
        s.into_iter().collect()
    }
}

impl<'a> IntoIterator for &'a NodeList {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_until_capacity() {
        let mut l = NodeList::new();
        for i in 0..4u32 {
            l.push(NodeId(i));
            assert!(matches!(l, NodeList::Inline { .. }));
        }
        assert_eq!(l.as_slice(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        l.push(NodeId(4));
        assert!(matches!(l, NodeList::Heap(_)), "fifth element spills");
        assert_eq!(l.len(), 5);
        assert_eq!(l[4], NodeId(4));
    }

    #[test]
    fn equality_ignores_representation() {
        let inline: NodeList = [NodeId(1), NodeId(2)].into();
        let heap = NodeList::Heap(vec![NodeId(1), NodeId(2)]);
        assert_eq!(inline, heap);
        assert_ne!(inline, NodeList::single(NodeId(1)));
    }

    #[test]
    fn conversions() {
        let from_vec: NodeList = vec![NodeId(9); 6].into();
        assert!(matches!(from_vec, NodeList::Heap(_)));
        assert_eq!(from_vec.len(), 6);
        let from_slice: NodeList = (&[NodeId(1)][..]).into();
        assert_eq!(from_slice.as_slice(), &[NodeId(1)]);
        let collected: NodeList = (0..3).map(NodeId).collect();
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn deref_gives_slice_ops() {
        let l: NodeList = [NodeId(5), NodeId(7)].into();
        assert!(l.contains(&NodeId(7)));
        assert_eq!(l.iter().count(), 2);
        assert!(!l.is_empty());
        assert!(NodeList::new().is_empty());
    }
}
