//! The connectivity graph.
//!
//! A [`Topology`] is the immutable radio graph computed once at deployment:
//! node positions plus a symmetric adjacency structure. Runtime liveness
//! (deaths/births) is layered on top by the MAC and protocol engines — the
//! graph itself records every node that will ever exist.

use dirq_sim::SimRng;

use crate::geometry::Position;
use crate::ids::NodeId;
use crate::placement::{Placement, SinkPlacement};
use crate::radio::RadioModel;

/// An immutable radio connectivity graph.
#[derive(Clone, Debug)]
pub struct Topology {
    positions: Vec<Position>,
    /// Sorted neighbour lists, symmetric.
    adjacency: Vec<Vec<NodeId>>,
    link_count: usize,
}

impl Topology {
    /// Build the graph implied by `positions` under `radio`.
    pub fn from_positions<R: RadioModel>(positions: Vec<Position>, radio: &R) -> Self {
        let n = positions.len();
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut link_count = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if radio.connected(i, &positions[i], j, &positions[j]) {
                    adjacency[i].push(NodeId::from_index(j));
                    adjacency[j].push(NodeId::from_index(i));
                    link_count += 1;
                }
            }
        }
        // Lists are built in increasing order already, but make the
        // invariant explicit for future mutations.
        for l in &mut adjacency {
            l.sort_unstable();
        }
        Topology { positions, adjacency, link_count }
    }

    /// Deploy `n` nodes with `placement`/`sink`, retrying fresh placements
    /// until the graph is connected (up to `max_attempts`).
    ///
    /// Returns `None` when no connected deployment was found — callers
    /// should increase density or range rather than loop further.
    pub fn deploy_connected<R: RadioModel>(
        n: usize,
        placement: &Placement,
        sink: SinkPlacement,
        radio: &R,
        rng: &mut SimRng,
        max_attempts: usize,
    ) -> Option<Self> {
        for _ in 0..max_attempts {
            let positions = placement.generate(n, sink, rng);
            let topo = Topology::from_positions(positions, radio);
            if topo.is_connected() {
                return Some(topo);
            }
        }
        None
    }

    /// Build directly from an explicit edge list (used for synthetic exact
    /// trees and tests). Positions are laid out on a line; they carry no
    /// meaning for such graphs.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut link_count = 0;
        for &(a, b) in edges {
            assert!(a.index() < n && b.index() < n, "edge endpoint out of range");
            assert_ne!(a, b, "self-loops are not allowed");
            adjacency[a.index()].push(b);
            adjacency[b.index()].push(a);
            link_count += 1;
        }
        for l in &mut adjacency {
            l.sort_unstable();
            let before = l.len();
            l.dedup();
            assert_eq!(l.len(), before, "duplicate edge in edge list");
        }
        let positions = (0..n).map(|i| Position::new(i as f64, 0.0)).collect();
        Topology { positions, adjacency, link_count }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// Position of `node`.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// All positions, indexed by node.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Sorted neighbours of `node`.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Whether an undirected link `a`–`b` exists.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a.index()].binary_search(&b).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len()).map(NodeId::from_index)
    }

    /// Nodes reachable from `start` (including `start`), via BFS, visiting
    /// only nodes for which `passable` returns true.
    pub fn reachable_from(&self, start: NodeId, passable: impl Fn(NodeId) -> bool) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        if !passable(start) {
            return seen;
        }
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v.index()] && passable(v) {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Whether every node is reachable from the root.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.reachable_from(NodeId::ROOT, |_| true).iter().all(|&r| r)
    }

    /// BFS hop distance from `start` to every node (`u32::MAX` where
    /// unreachable), visiting only `passable` nodes.
    pub fn hop_distances(&self, start: NodeId, passable: impl Fn(NodeId) -> bool) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.len()];
        if !passable(start) {
            return dist;
        }
        let mut queue = std::collections::VecDeque::new();
        dist[start.index()] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if dist[v.index()] == u32::MAX && passable(v) {
                    dist[v.index()] = dist[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::UnitDisk;
    use dirq_sim::RngFactory;

    fn line(n: usize) -> Topology {
        let edges: Vec<(NodeId, NodeId)> =
            (0..n - 1).map(|i| (NodeId::from_index(i), NodeId::from_index(i + 1))).collect();
        Topology::from_edges(n, &edges)
    }

    #[test]
    fn from_positions_symmetric_adjacency() {
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(5.0, 0.0),
            Position::new(100.0, 0.0),
        ];
        let t = Topology::from_positions(positions, &UnitDisk::new(10.0));
        assert_eq!(t.link_count(), 1);
        assert!(t.has_link(NodeId(0), NodeId(1)));
        assert!(t.has_link(NodeId(1), NodeId(0)));
        assert!(!t.has_link(NodeId(0), NodeId(2)));
        assert_eq!(t.degree(NodeId(2)), 0);
        assert!(!t.is_connected());
    }

    #[test]
    fn line_graph_metrics() {
        let t = line(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.link_count(), 4);
        assert!(t.is_connected());
        let d = t.hop_distances(NodeId(0), |_| true);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reachability_respects_passability() {
        let t = line(5);
        // Node 2 impassable cuts the line.
        let seen = t.reachable_from(NodeId(0), |n| n != NodeId(2));
        assert_eq!(seen, vec![true, true, false, false, false]);
        let d = t.hop_distances(NodeId(0), |n| n != NodeId(2));
        assert_eq!(d[4], u32::MAX);
    }

    #[test]
    fn deploy_connected_finds_dense_network() {
        let mut rng = RngFactory::new(11).stream("deploy");
        let t = Topology::deploy_connected(
            50,
            &Placement::UniformRandom { side: 100.0 },
            SinkPlacement::Corner,
            &UnitDisk::new(25.0),
            &mut rng,
            100,
        )
        .expect("a 50-node/25m/100m network should connect within 100 tries");
        assert!(t.is_connected());
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn deploy_connected_gives_up_on_sparse_network() {
        let mut rng = RngFactory::new(11).stream("deploy-sparse");
        let t = Topology::deploy_connected(
            50,
            &Placement::UniformRandom { side: 1000.0 },
            SinkPlacement::Corner,
            &UnitDisk::new(5.0),
            &mut rng,
            5,
        );
        assert!(t.is_none());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let _ = Topology::from_edges(2, &[(NodeId(0), NodeId(0))]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_rejected() {
        let _ = Topology::from_edges(2, &[(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))]);
    }

    #[test]
    fn empty_graph_is_connected() {
        let t = Topology::from_edges(0, &[]);
        assert!(t.is_connected());
        assert!(t.is_empty());
    }
}
