//! The connectivity graph.
//!
//! A [`Topology`] is the immutable radio graph computed once at deployment:
//! node positions plus a symmetric adjacency structure. Runtime liveness
//! (deaths/births) is layered on top by the MAC and protocol engines — the
//! graph itself records every node that will ever exist.
//!
//! ## Layout
//!
//! Adjacency is stored in **CSR form** (`offsets`/`targets`): neighbour
//! lookup is a single slice over one contiguous array, so the per-slot MAC
//! loops walk memory linearly instead of chasing one heap allocation per
//! node. Link membership additionally keeps a dense bit matrix for graphs
//! up to [`DENSE_LINK_MAX_NODES`] nodes, making [`Topology::has_link`] a
//! single bit test on every deployment size the paper's experiments use
//! (and far beyond); larger graphs fall back to binary search over the CSR
//! row.

use dirq_sim::SimRng;

use crate::geometry::Position;
use crate::ids::NodeId;
use crate::placement::{Placement, SinkPlacement};
use crate::radio::RadioModel;

/// Largest node count for which a dense link bit-matrix is kept
/// (`n²` bits — 2 MiB at 4096 nodes).
pub const DENSE_LINK_MAX_NODES: usize = 4096;

/// An immutable radio connectivity graph in CSR layout.
#[derive(Clone, Debug)]
pub struct Topology {
    positions: Vec<Position>,
    /// CSR row starts; `offsets[i]..offsets[i + 1]` indexes `targets`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbour lists.
    targets: Vec<NodeId>,
    /// Row-major adjacency bit matrix (`words_per_row` words per node);
    /// empty when `len() > DENSE_LINK_MAX_NODES`.
    link_bits: Vec<u64>,
    words_per_row: usize,
    link_count: usize,
}

impl Topology {
    /// Build the graph implied by `positions` under `radio`.
    pub fn from_positions<R: RadioModel>(positions: Vec<Position>, radio: &R) -> Self {
        let edges = Topology::geometric_edges(&positions, radio);
        Topology::build(positions, &edges, false)
    }

    /// Build the graph implied by `positions` under `radio`, plus explicit
    /// `backbone` links that exist regardless of radio reach — the wired
    /// (or long-range) connections of a multi-sink deployment's sink
    /// backhaul. Backbone pairs already connected by radio are ignored.
    pub fn from_positions_with_backbone<R: RadioModel>(
        positions: Vec<Position>,
        radio: &R,
        backbone: &[(NodeId, NodeId)],
    ) -> Self {
        let n = positions.len();
        let mut edges = Topology::geometric_edges(&positions, radio);
        for &(a, b) in backbone {
            assert!(a.index() < n && b.index() < n, "backbone endpoint out of range");
            assert_ne!(a, b, "backbone self-loops are not allowed");
            let e = if a < b { (a, b) } else { (b, a) };
            if !edges.contains(&e) {
                edges.push(e);
            }
        }
        Topology::build(positions, &edges, false)
    }

    /// The undirected edges `radio` induces over `positions` (`i < j`).
    fn geometric_edges<R: RadioModel>(positions: &[Position], radio: &R) -> Vec<(NodeId, NodeId)> {
        let n = positions.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if radio.connected(i, &positions[i], j, &positions[j]) {
                    edges.push((NodeId::from_index(i), NodeId::from_index(j)));
                }
            }
        }
        edges
    }

    /// Deploy `n` nodes with `placement`/`sink`, retrying fresh placements
    /// until the graph is connected (up to `max_attempts`).
    ///
    /// Returns `None` when no connected deployment was found — callers
    /// should increase density or range rather than loop further.
    pub fn deploy_connected<R: RadioModel>(
        n: usize,
        placement: &Placement,
        sink: SinkPlacement,
        radio: &R,
        rng: &mut SimRng,
        max_attempts: usize,
    ) -> Option<Self> {
        for _ in 0..max_attempts {
            let positions = placement.generate(n, sink, rng);
            let topo = Topology::from_positions(positions, radio);
            if topo.is_connected() {
                return Some(topo);
            }
        }
        None
    }

    /// Deploy a **multi-sink** network: like [`Topology::deploy_connected`],
    /// but nodes `1..=extra_sinks` are repositioned onto deterministic
    /// spread sites ([`crate::placement::extra_sink_sites`]) and wired to
    /// the primary sink by backbone links. Every node then reaches *some*
    /// sink over radio, and the augmented graph's BFS tree attaches each
    /// node under its nearest sink.
    pub fn deploy_connected_multi_sink<R: RadioModel>(
        n: usize,
        placement: &Placement,
        sink: SinkPlacement,
        radio: &R,
        rng: &mut SimRng,
        max_attempts: usize,
        extra_sinks: usize,
    ) -> Option<Self> {
        assert!(extra_sinks + 1 < n, "need at least one non-sink node");
        let sites = crate::placement::extra_sink_sites(placement.bounds(), extra_sinks);
        let backbone: Vec<(NodeId, NodeId)> =
            (1..=extra_sinks).map(|i| (NodeId::ROOT, NodeId::from_index(i))).collect();
        for _ in 0..max_attempts {
            let mut positions = placement.generate(n, sink, rng);
            positions[1..=extra_sinks].copy_from_slice(&sites);
            let topo = Topology::from_positions_with_backbone(positions, radio, &backbone);
            if topo.is_connected() {
                return Some(topo);
            }
        }
        None
    }

    /// Build directly from an explicit edge list (used for synthetic exact
    /// trees and tests). Positions are laid out on a line; they carry no
    /// meaning for such graphs.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        for &(a, b) in edges {
            assert!(a.index() < n && b.index() < n, "edge endpoint out of range");
            assert_ne!(a, b, "self-loops are not allowed");
        }
        let positions = (0..n).map(|i| Position::new(i as f64, 0.0)).collect();
        Topology::build(positions, edges, true)
    }

    /// CSR construction from an undirected edge list. `check_duplicates`
    /// rejects repeated edges (explicit edge lists must be clean; the
    /// geometric builder cannot produce duplicates).
    fn build(positions: Vec<Position>, edges: &[(NodeId, NodeId)], check_duplicates: bool) -> Self {
        let n = positions.len();

        // Degree count, then prefix-sum into row offsets.
        let mut offsets = vec![0u32; n + 1];
        for &(a, b) in edges {
            offsets[a.index() + 1] += 1;
            offsets[b.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }

        // Fill rows, then sort each row in place.
        let mut targets = vec![NodeId(0); edges.len() * 2];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(a, b) in edges {
            targets[cursor[a.index()] as usize] = b;
            cursor[a.index()] += 1;
            targets[cursor[b.index()] as usize] = a;
            cursor[b.index()] += 1;
        }
        for i in 0..n {
            let row = &mut targets[offsets[i] as usize..offsets[i + 1] as usize];
            row.sort_unstable();
            if check_duplicates {
                assert!(row.windows(2).all(|w| w[0] != w[1]), "duplicate edge in edge list");
            }
        }

        // Dense membership matrix for O(1) has_link on practical sizes.
        let (words_per_row, link_bits) = if n <= DENSE_LINK_MAX_NODES {
            let wpr = n.div_ceil(64).max(1);
            let mut bits = vec![0u64; wpr * n];
            for &(a, b) in edges {
                let (ai, bi) = (a.index(), b.index());
                bits[ai * wpr + bi / 64] |= 1 << (bi % 64);
                bits[bi * wpr + ai / 64] |= 1 << (ai % 64);
            }
            (wpr, bits)
        } else {
            (0, Vec::new())
        };

        Topology { positions, offsets, targets, link_bits, words_per_row, link_count: edges.len() }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// Position of `node`.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// All positions, indexed by node.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Sorted neighbours of `node` — a contiguous CSR slice.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Start of `node`'s row in the global CSR target array: edge slot
    /// `row_start(u) + p` holds `neighbors(u)[p]`. Lets callers keep
    /// edge-aligned side tables (e.g. the MAC's mirror-position index).
    #[inline]
    pub fn row_start(&self, node: NodeId) -> usize {
        self.offsets[node.index()] as usize
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Maximum degree over all nodes (useful for pre-sizing MAC buffers).
    pub fn max_degree(&self) -> usize {
        (0..self.len()).map(|i| (self.offsets[i + 1] - self.offsets[i]) as usize).max().unwrap_or(0)
    }

    /// Whether an undirected link `a`–`b` exists.
    #[inline]
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        if self.words_per_row > 0 {
            let bi = b.index();
            self.link_bits[a.index() * self.words_per_row + bi / 64] & (1 << (bi % 64)) != 0
        } else {
            self.neighbors(a).binary_search(&b).is_ok()
        }
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len()).map(NodeId::from_index)
    }

    /// Nodes reachable from `start` (including `start`), via BFS, visiting
    /// only nodes for which `passable` returns true.
    pub fn reachable_from(&self, start: NodeId, passable: impl Fn(NodeId) -> bool) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        if !passable(start) {
            return seen;
        }
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v.index()] && passable(v) {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Whether every node is reachable from the root.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.reachable_from(NodeId::ROOT, |_| true).iter().all(|&r| r)
    }

    /// Greedy 2-hop colouring: assigns every node the smallest colour not
    /// used by any node within two hops (ascending node order, so the
    /// result is deterministic for a given graph). Two nodes sharing a
    /// colour therefore have **disjoint closed neighbourhoods** — they are
    /// at least three hops apart and no third node hears both.
    ///
    /// This is the interference structure LMAC's slot schedule converges
    /// to; the MAC computes it once per topology epoch and shards its
    /// parallel listener phase across the colour classes.
    pub fn two_hop_coloring(&self) -> Vec<u32> {
        let n = self.len();
        let mut color = vec![0u32; n];
        // `stamp[c] == u` marks colour c as forbidden for node u; stamps
        // avoid clearing a bitmap per node.
        let mut stamp: Vec<u32> = Vec::new();
        for i in 0..n {
            let u = NodeId::from_index(i);
            let mark = |stamp: &mut Vec<u32>, c: u32| {
                let c = c as usize;
                if c >= stamp.len() {
                    stamp.resize(c + 1, u32::MAX);
                }
                stamp[c] = i as u32;
            };
            for &v in self.neighbors(u) {
                if v.index() < i {
                    mark(&mut stamp, color[v.index()]);
                }
                for &w in self.neighbors(v) {
                    if w.index() < i {
                        mark(&mut stamp, color[w.index()]);
                    }
                }
            }
            color[i] = (0..).find(|&c| stamp.get(c as usize).copied() != Some(i as u32)).unwrap();
        }
        color
    }

    /// BFS hop distance from `start` to every node (`u32::MAX` where
    /// unreachable), visiting only `passable` nodes.
    pub fn hop_distances(&self, start: NodeId, passable: impl Fn(NodeId) -> bool) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.len()];
        if !passable(start) {
            return dist;
        }
        let mut queue = std::collections::VecDeque::new();
        dist[start.index()] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if dist[v.index()] == u32::MAX && passable(v) {
                    dist[v.index()] = dist[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::UnitDisk;
    use dirq_sim::RngFactory;

    fn line(n: usize) -> Topology {
        let edges: Vec<(NodeId, NodeId)> =
            (0..n - 1).map(|i| (NodeId::from_index(i), NodeId::from_index(i + 1))).collect();
        Topology::from_edges(n, &edges)
    }

    #[test]
    fn from_positions_symmetric_adjacency() {
        let positions =
            vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0), Position::new(100.0, 0.0)];
        let t = Topology::from_positions(positions, &UnitDisk::new(10.0));
        assert_eq!(t.link_count(), 1);
        assert!(t.has_link(NodeId(0), NodeId(1)));
        assert!(t.has_link(NodeId(1), NodeId(0)));
        assert!(!t.has_link(NodeId(0), NodeId(2)));
        assert_eq!(t.degree(NodeId(2)), 0);
        assert!(!t.is_connected());
    }

    #[test]
    fn line_graph_metrics() {
        let t = line(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.link_count(), 4);
        assert!(t.is_connected());
        let d = t.hop_distances(NodeId(0), |_| true);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn csr_rows_are_sorted_and_symmetric() {
        let t = Topology::from_edges(
            5,
            &[
                (NodeId(4), NodeId(0)),
                (NodeId(2), NodeId(0)),
                (NodeId(0), NodeId(1)),
                (NodeId(3), NodeId(2)),
            ],
        );
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(t.neighbors(NodeId(2)), &[NodeId(0), NodeId(3)]);
        assert_eq!(t.max_degree(), 3);
        for a in t.nodes() {
            for &b in t.neighbors(a) {
                assert!(t.has_link(a, b) && t.has_link(b, a));
            }
        }
    }

    #[test]
    fn has_link_agrees_with_neighbor_lists() {
        let mut rng = RngFactory::new(77).stream("csr");
        let t = Topology::deploy_connected(
            40,
            &Placement::UniformRandom { side: 100.0 },
            SinkPlacement::Corner,
            &UnitDisk::new(30.0),
            &mut rng,
            100,
        )
        .unwrap();
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(
                    t.has_link(a, b),
                    t.neighbors(a).binary_search(&b).is_ok(),
                    "bit matrix and CSR disagree on {a}-{b}"
                );
            }
        }
    }

    #[test]
    fn reachability_respects_passability() {
        let t = line(5);
        // Node 2 impassable cuts the line.
        let seen = t.reachable_from(NodeId(0), |n| n != NodeId(2));
        assert_eq!(seen, vec![true, true, false, false, false]);
        let d = t.hop_distances(NodeId(0), |n| n != NodeId(2));
        assert_eq!(d[4], u32::MAX);
    }

    #[test]
    fn deploy_connected_finds_dense_network() {
        let mut rng = RngFactory::new(11).stream("deploy");
        let t = Topology::deploy_connected(
            50,
            &Placement::UniformRandom { side: 100.0 },
            SinkPlacement::Corner,
            &UnitDisk::new(25.0),
            &mut rng,
            100,
        )
        .expect("a 50-node/25m/100m network should connect within 100 tries");
        assert!(t.is_connected());
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn deploy_connected_gives_up_on_sparse_network() {
        let mut rng = RngFactory::new(11).stream("deploy-sparse");
        let t = Topology::deploy_connected(
            50,
            &Placement::UniformRandom { side: 1000.0 },
            SinkPlacement::Corner,
            &UnitDisk::new(5.0),
            &mut rng,
            5,
        );
        assert!(t.is_none());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let _ = Topology::from_edges(2, &[(NodeId(0), NodeId(0))]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_rejected() {
        let _ = Topology::from_edges(2, &[(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))]);
    }

    #[test]
    fn empty_graph_is_connected() {
        let t = Topology::from_edges(0, &[]);
        assert!(t.is_connected());
        assert!(t.is_empty());
    }

    /// Ring + long chords, defined purely by index arithmetic so the edge
    /// set among the first `k` nodes is identical for every graph size
    /// ≥ `k` (enabling dense-vs-sparse parity checks across the
    /// [`DENSE_LINK_MAX_NODES`] boundary without O(n²) geometry).
    fn chord_edges(n: usize) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::new();
        for i in 0..n {
            if i + 1 < n {
                edges.push((NodeId::from_index(i), NodeId::from_index(i + 1)));
            }
            if i + 97 < n {
                edges.push((NodeId::from_index(i), NodeId::from_index(i + 97)));
            }
        }
        edges
    }

    #[test]
    fn sparse_fallback_above_dense_limit() {
        let big = DENSE_LINK_MAX_NODES + 104; // 4200: CSR binary-search path
        let small = DENSE_LINK_MAX_NODES; // 4096: dense bit-matrix path
        let t_sparse = Topology::from_edges(big, &chord_edges(big));
        let t_dense = Topology::from_edges(small, &chord_edges(small));

        // Every edge among the first `small` nodes exists in both graphs;
        // the two membership implementations must agree on all of them,
        // and on a deterministic sample of non-edges.
        for (a, b) in chord_edges(small) {
            assert!(t_sparse.has_link(a, b) && t_sparse.has_link(b, a));
            assert_eq!(t_sparse.has_link(a, b), t_dense.has_link(a, b), "{a}-{b}");
        }
        let mut x: u64 = 0x243F6A8885A308D3;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = NodeId::from_index((x >> 33) as usize % small);
            let b = NodeId::from_index((x >> 11) as usize % small);
            if a == b {
                continue;
            }
            assert_eq!(
                t_sparse.has_link(a, b),
                t_dense.has_link(a, b),
                "dense and sparse membership disagree on {a}-{b}"
            );
            assert_eq!(
                t_sparse.has_link(a, b),
                t_sparse.neighbors(a).binary_search(&b).is_ok(),
                "sparse has_link inconsistent with its own CSR row at {a}-{b}"
            );
        }
    }

    #[test]
    fn backbone_links_exist_regardless_of_radio_reach() {
        let positions =
            vec![Position::new(0.0, 0.0), Position::new(500.0, 0.0), Position::new(5.0, 0.0)];
        let t = Topology::from_positions_with_backbone(
            positions,
            &UnitDisk::new(10.0),
            &[(NodeId(0), NodeId(1))],
        );
        assert!(t.has_link(NodeId(0), NodeId(1)), "backbone link must exist");
        assert!(t.has_link(NodeId(0), NodeId(2)), "radio link preserved");
        assert!(!t.has_link(NodeId(1), NodeId(2)));
        // A backbone pair already in radio reach is not duplicated.
        let positions = vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)];
        let t = Topology::from_positions_with_backbone(
            positions,
            &UnitDisk::new(10.0),
            &[(NodeId(1), NodeId(0))],
        );
        assert_eq!(t.link_count(), 1);
    }

    #[test]
    fn multi_sink_deployment_pins_sites_and_connects() {
        let mut rng = RngFactory::new(9).stream("multi-sink");
        let placement = Placement::UniformRandom { side: 200.0 };
        let t = Topology::deploy_connected_multi_sink(
            80,
            &placement,
            SinkPlacement::Corner,
            &UnitDisk::new(40.0),
            &mut rng,
            200,
            3,
        )
        .expect("multi-sink deployment should connect");
        assert!(t.is_connected());
        // Extra sinks sit on the deterministic sites, wired to the root.
        let sites = crate::placement::extra_sink_sites((200.0, 200.0), 3);
        for (i, &site) in sites.iter().enumerate() {
            let sink = NodeId::from_index(i + 1);
            assert_eq!(t.position(sink), site);
            assert!(t.has_link(NodeId::ROOT, sink), "backbone to {sink} missing");
        }
        // Nearest-sink attachment: hop distances in the augmented graph
        // are never worse than radio-only distances from the root.
        let multi = t.hop_distances(NodeId::ROOT, |_| true);
        assert!(multi.iter().all(|&d| d != u32::MAX));
    }

    #[test]
    fn two_hop_coloring_is_proper_and_deterministic() {
        let t = Topology::deploy_connected(
            60,
            &Placement::UniformRandom { side: 100.0 },
            SinkPlacement::Corner,
            &UnitDisk::new(30.0),
            &mut RngFactory::new(5).stream("color"),
            100,
        )
        .unwrap();
        let color = t.two_hop_coloring();
        assert_eq!(color, t.two_hop_coloring(), "colouring must be deterministic");
        for a in t.nodes() {
            for &b in t.neighbors(a) {
                assert_ne!(color[a.index()], color[b.index()], "1-hop clash {a}-{b}");
                for &c in t.neighbors(b) {
                    if c != a {
                        assert_ne!(color[a.index()], color[c.index()], "2-hop clash {a}-{c}");
                    }
                }
            }
        }
        // Greedy colour count is bounded by the densest 2-hop
        // neighbourhood plus one.
        let max_two_hop = t
            .nodes()
            .map(|u| {
                let mut seen = std::collections::HashSet::new();
                for &v in t.neighbors(u) {
                    seen.insert(v);
                    seen.extend(t.neighbors(v).iter().copied());
                }
                seen.remove(&u);
                seen.len()
            })
            .max()
            .unwrap();
        let colors = color.iter().max().unwrap() + 1;
        assert!(colors as usize <= max_two_hop + 1, "{colors} colours for {max_two_hop} 2-hop");
    }

    #[test]
    fn two_hop_coloring_of_a_line_cycles_three_colors() {
        let t = line(7);
        assert_eq!(t.two_hop_coloring(), vec![0, 1, 2, 0, 1, 2, 0]);
        // Isolated nodes all take colour 0.
        let empty = Topology::from_edges(3, &[]);
        assert_eq!(empty.two_hop_coloring(), vec![0, 0, 0]);
    }

    #[test]
    fn large_graph_neighbor_slices_stay_sorted_and_symmetric() {
        let n = DENSE_LINK_MAX_NODES + 104;
        let t = Topology::from_edges(n, &chord_edges(n));
        assert_eq!(t.len(), n);
        assert!(t.is_connected());
        let mut degree_sum = 0;
        for a in t.nodes() {
            let row = t.neighbors(a);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row of {a} not strictly sorted");
            assert_eq!(row.len(), t.degree(a));
            degree_sum += row.len();
            for &b in row {
                assert!(t.neighbors(b).binary_search(&a).is_ok(), "asymmetric link {a}-{b}");
            }
        }
        assert_eq!(degree_sum, 2 * t.link_count());
        // Hop distances stay exact on the fallback path: node i sits
        // (roughly) i/97 chord hops from the root.
        let d = t.hop_distances(NodeId::ROOT, |_| true);
        assert_eq!(d[97], 1);
        assert_eq!(d[2 * 97], 2);
        assert_eq!(d[1], 1);
    }
}
