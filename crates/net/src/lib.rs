//! # dirq-net — network substrate
//!
//! The DirQ paper simulates a 50-node multihop wireless sensor network. This
//! crate provides everything below the MAC layer:
//!
//! * [`ids`] — dense node identifiers.
//! * [`bits`] — fixed-universe node bitsets for the hot simulation loops.
//! * [`nodelist`] — inline small-vectors of node ids (allocation-free
//!   multicast destination lists).
//! * [`geometry`] — 2-D positions and distances.
//! * [`placement`] — deployment strategies (uniform random, jittered grid,
//!   clustered).
//! * [`radio`] — connectivity models (unit disk; log-distance path loss with
//!   deterministic per-link shadowing).
//! * [`graph`] — the connectivity graph ([`Topology`]) with BFS reachability.
//! * [`tree`] — spanning-tree construction: BFS trees, the paper's
//!   bounded fan-out/depth random trees ("k = 8, d = 10"), and exact
//!   complete k-ary trees for validating the analytic model.
//! * [`energy`] — the paper's unit-cost energy ledger (1 unit per
//!   transmission, 1 unit per reception).
//! * [`churn`] — birth/death schedules driving the topology-dynamics
//!   experiments.
//! * [`dot`] — Graphviz export for debugging and documentation.

#![warn(missing_docs)]

pub mod bits;
pub mod churn;
pub mod dot;
pub mod energy;
pub mod geometry;
pub mod graph;
pub mod ids;
pub mod nodelist;
pub mod placement;
pub mod radio;
pub mod tree;

pub use bits::NodeBits;
pub use energy::EnergyLedger;
pub use geometry::{Position, Rect};
pub use graph::Topology;
pub use ids::NodeId;
pub use nodelist::NodeList;
pub use tree::SpanningTree;
