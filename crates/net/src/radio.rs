//! Radio connectivity models.
//!
//! Whether two nodes share a link is decided once at deployment time (the
//! paper's network is fixed apart from births/deaths, and LMAC's TDMA
//! schedule removes collisions, so per-packet fading is out of scope).
//!
//! Two models are provided:
//!
//! * [`UnitDisk`] — the classic binary-range model.
//! * [`LogDistance`] — log-distance path loss with deterministic per-link
//!   log-normal shadowing, giving the irregular neighbourhoods real
//!   deployments show.

use crate::geometry::Position;

/// A connectivity decision procedure over node pairs.
pub trait RadioModel {
    /// Whether nodes at `a` and `b` (deployment indices `ia`, `ib`) can
    /// communicate. Must be symmetric in its arguments.
    fn connected(&self, ia: usize, a: &Position, ib: usize, b: &Position) -> bool;

    /// Nominal communication range in metres (used by deployment helpers to
    /// pick sensible densities).
    fn nominal_range(&self) -> f64;
}

/// Binary unit-disk model: connected iff within `range` metres.
#[derive(Clone, Copy, Debug)]
pub struct UnitDisk {
    /// Communication radius, metres.
    pub range: f64,
}

impl UnitDisk {
    /// Construct with the given radius.
    pub fn new(range: f64) -> Self {
        assert!(range > 0.0, "radio range must be positive");
        UnitDisk { range }
    }
}

impl RadioModel for UnitDisk {
    #[inline]
    fn connected(&self, _ia: usize, a: &Position, _ib: usize, b: &Position) -> bool {
        a.distance_sq(b) <= self.range * self.range
    }

    fn nominal_range(&self) -> f64 {
        self.range
    }
}

/// Log-distance path loss with deterministic per-link shadowing.
///
/// Received power: `P_rx = P_tx − PL(d0) − 10·γ·log10(d/d0) − X_σ`, where
/// `X_σ` is a zero-mean Gaussian drawn deterministically per unordered node
/// pair from `shadow_seed`, making the same pair symmetric and the whole
/// topology reproducible.
#[derive(Clone, Copy, Debug)]
pub struct LogDistance {
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Path loss at the reference distance, dB.
    pub ref_loss_db: f64,
    /// Reference distance d0, metres.
    pub ref_distance: f64,
    /// Path-loss exponent γ (2 = free space, 3–4 = forest/urban).
    pub exponent: f64,
    /// Receiver sensitivity, dBm.
    pub sensitivity_dbm: f64,
    /// Shadowing standard deviation σ, dB (0 disables shadowing).
    pub shadowing_sigma_db: f64,
    /// Seed for the per-link shadowing draws.
    pub shadow_seed: u64,
}

impl LogDistance {
    /// A forest-like default: γ = 3.0, σ = 4 dB, ~30 m nominal range.
    pub fn forest(shadow_seed: u64) -> Self {
        LogDistance {
            tx_power_dbm: 0.0,
            ref_loss_db: 40.0,
            ref_distance: 1.0,
            exponent: 3.0,
            sensitivity_dbm: -85.0,
            shadowing_sigma_db: 4.0,
            shadow_seed,
        }
    }

    /// Deterministic standard-normal draw for an unordered node pair.
    fn pair_normal(&self, ia: usize, ib: usize) -> f64 {
        let (lo, hi) = if ia <= ib { (ia as u64, ib as u64) } else { (ib as u64, ia as u64) };
        let mut s =
            self.shadow_seed ^ (lo.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ hi.rotate_left(32);
        let u1 = (dirq_sim::rng::splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
        let u2 = (dirq_sim::rng::splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
        let u1 = u1.max(f64::MIN_POSITIVE);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Received power for a pair, dBm.
    pub fn received_power_dbm(&self, ia: usize, a: &Position, ib: usize, b: &Position) -> f64 {
        let d = a.distance(b).max(self.ref_distance);
        let pl = self.ref_loss_db + 10.0 * self.exponent * (d / self.ref_distance).log10();
        let shadow = if self.shadowing_sigma_db > 0.0 {
            self.shadowing_sigma_db * self.pair_normal(ia, ib)
        } else {
            0.0
        };
        self.tx_power_dbm - pl - shadow
    }

    /// Distance at which the *mean* received power equals sensitivity.
    pub fn mean_range(&self) -> f64 {
        let budget = self.tx_power_dbm - self.ref_loss_db - self.sensitivity_dbm;
        self.ref_distance * 10f64.powf(budget / (10.0 * self.exponent))
    }
}

impl RadioModel for LogDistance {
    fn connected(&self, ia: usize, a: &Position, ib: usize, b: &Position) -> bool {
        self.received_power_dbm(ia, a, ib, b) >= self.sensitivity_dbm
    }

    fn nominal_range(&self) -> f64 {
        self.mean_range()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_disk_threshold() {
        let r = UnitDisk::new(10.0);
        let o = Position::new(0.0, 0.0);
        assert!(r.connected(0, &o, 1, &Position::new(10.0, 0.0)));
        assert!(!r.connected(0, &o, 1, &Position::new(10.0001, 0.0)));
        assert_eq!(r.nominal_range(), 10.0);
    }

    #[test]
    #[should_panic(expected = "radio range must be positive")]
    fn unit_disk_rejects_zero_range() {
        let _ = UnitDisk::new(0.0);
    }

    #[test]
    fn log_distance_monotone_without_shadowing() {
        let mut m = LogDistance::forest(1);
        m.shadowing_sigma_db = 0.0;
        let o = Position::new(0.0, 0.0);
        let p_near = m.received_power_dbm(0, &o, 1, &Position::new(5.0, 0.0));
        let p_far = m.received_power_dbm(0, &o, 1, &Position::new(50.0, 0.0));
        assert!(p_near > p_far);
    }

    #[test]
    fn log_distance_mean_range_is_connectivity_boundary() {
        let mut m = LogDistance::forest(1);
        m.shadowing_sigma_db = 0.0;
        let r = m.mean_range();
        let o = Position::new(0.0, 0.0);
        assert!(m.connected(0, &o, 1, &Position::new(r * 0.99, 0.0)));
        assert!(!m.connected(0, &o, 1, &Position::new(r * 1.01, 0.0)));
    }

    #[test]
    fn shadowing_is_symmetric_and_deterministic() {
        let m = LogDistance::forest(99);
        let a = Position::new(0.0, 0.0);
        let b = Position::new(20.0, 5.0);
        let ab = m.received_power_dbm(3, &a, 8, &b);
        let ba = m.received_power_dbm(8, &b, 3, &a);
        assert_eq!(ab, ba, "link budget must be symmetric");
        let again = m.received_power_dbm(3, &a, 8, &b);
        assert_eq!(ab, again);
    }

    #[test]
    fn shadowing_varies_across_pairs() {
        let m = LogDistance::forest(99);
        let a = Position::new(0.0, 0.0);
        let b = Position::new(20.0, 0.0);
        // Same geometry, different pair ids → different shadowing.
        let p1 = m.received_power_dbm(0, &a, 1, &b);
        let p2 = m.received_power_dbm(2, &a, 3, &b);
        assert_ne!(p1, p2);
    }

    #[test]
    fn shadowing_roughly_zero_mean() {
        let m = LogDistance::forest(7);
        let a = Position::new(0.0, 0.0);
        let b = Position::new(10.0, 0.0);
        let mut base = m;
        base.shadowing_sigma_db = 0.0;
        let unshadowed = base.received_power_dbm(0, &a, 1, &b);
        let n = 2000;
        let mean_shadow: f64 =
            (0..n).map(|i| m.received_power_dbm(i, &a, i + 10_000, &b) - unshadowed).sum::<f64>()
                / n as f64;
        assert!(mean_shadow.abs() < 0.5, "shadowing mean {mean_shadow} not ~0");
    }
}
