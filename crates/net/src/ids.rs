//! Node identifiers.

use std::fmt;

/// Dense identifier of a sensor node.
///
/// Node 0 is by convention the root/sink (the paper's gateway that injects
/// queries). IDs index directly into per-node arrays throughout the
/// workspace, so they are a `u32` rather than a `usize`: half the footprint
/// in the hot routing tables, per the type-size guidance in the HPC guides.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The conventional root/sink identifier.
    pub const ROOT: NodeId = NodeId(0);

    /// This id as an array index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from an array index.
    ///
    /// # Panics
    /// Panics if `i` exceeds `u32::MAX` (networks that large are out of
    /// scope by ~five orders of magnitude).
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("node index exceeds u32 range"))
    }

    /// Whether this is the root node.
    #[inline]
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_conventions() {
        assert!(NodeId::ROOT.is_root());
        assert!(!NodeId(1).is_root());
        assert_eq!(NodeId::ROOT.index(), 0);
    }

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 49, 1000] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn ordering_follows_numeric() {
        assert!(NodeId(3) < NodeId(10));
        assert_eq!(format!("{}", NodeId(7)), "n7");
    }
}
