//! Property test guarding the PR 1 churn fix: a death schedule produced by
//! [`ChurnPlan::random_deaths_connected`] must never sever a still-alive
//! node from the sink at *any* point of the schedule — the predicate is
//! enforced against every epoch-ordered prefix of the dead set, not the
//! selection order.

use dirq_net::churn::{ChurnEvent, ChurnPlan};
use dirq_net::placement::{Placement, SinkPlacement};
use dirq_net::radio::UnitDisk;
use dirq_net::{NodeId, Topology};
use dirq_sim::RngFactory;
use proptest::prelude::*;

/// The exact predicate the scenario engine hands to the sampler.
fn keeps_root_connected(topo: &Topology, victims: &[NodeId]) -> bool {
    let n = topo.len();
    let mut dead = vec![false; n];
    for &v in victims {
        dead[v.index()] = true;
    }
    let reach = topo.reachable_from(NodeId::ROOT, |v| !dead[v.index()]);
    topo.nodes().all(|v| dead[v.index()] || reach[v.index()])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
    #[test]
    fn no_prefix_of_the_death_schedule_severs_an_alive_node(
        seed in 0u64..10_000,
        n in 12usize..48,
        death_fraction in 0.1f64..0.6,
        window in (1u64..500, 500u64..2_000),
    ) {
        let factory = RngFactory::new(seed);
        // Densities comparable to the paper's 50-node/100 m/28 m setup,
        // scaled with n so sparse topologies (bridges, pendant chains) and
        // dense ones are both exercised.
        let side = 100.0 * (n as f64 / 50.0).sqrt();
        let Some(topo) = Topology::deploy_connected(
            n,
            &Placement::UniformRandom { side },
            SinkPlacement::Corner,
            &UnitDisk::new(28.0),
            &mut factory.stream("deploy"),
            50,
        ) else {
            // Disconnected draw (rare at this density): not this test's topic.
            return Err(TestCaseError::reject("no connected deployment"));
        };

        let deaths = ((n as f64 * death_fraction) as usize).clamp(1, n - 2);
        let (from_epoch, until_epoch) = window;
        let plan = ChurnPlan::random_deaths_connected(
            n,
            deaths,
            from_epoch,
            until_epoch,
            &mut factory.stream("churn"),
            |victims| keeps_root_connected(&topo, victims),
        );
        prop_assert_eq!(plan.len(), deaths);

        // Replay the schedule in epoch order; after every single death the
        // surviving network must still reach the sink in the radio graph.
        let mut dead_so_far: Vec<NodeId> = Vec::new();
        for &(epoch, ev) in plan.events() {
            let ChurnEvent::Death(v) = ev else {
                return Err(TestCaseError::fail("death-only plan produced a birth"));
            };
            prop_assert!(!v.is_root(), "the sink itself was scheduled to die");
            prop_assert!(
                (from_epoch..until_epoch).contains(&epoch),
                "death at {} outside [{}, {})", epoch, from_epoch, until_epoch
            );
            dead_so_far.push(v);
            prop_assert!(
                keeps_root_connected(&topo, &dead_so_far),
                "killing {:?} (epoch {}) severed an alive node from the sink; dead so far: {:?}",
                v, epoch, dead_so_far
            );
        }
    }
}

/// Deterministic regression case: a pendant chain where the inner node may
/// only die after its whole subtree is gone. This is the shape that made
/// the pre-PR-1 sampler partition the sink.
#[test]
fn pendant_chain_deaths_are_ordered_inner_last() {
    // 0(sink) - 1 - 2 - 3 - 4: killing 1 strands {2,3,4}; killing 2 after
    // that strands {3,4}; the only valid full order is 4, 3, 2, 1.
    let edges: Vec<(NodeId, NodeId)> = (0..4).map(|i| (NodeId(i), NodeId(i + 1))).collect();
    let topo = Topology::from_edges(5, &edges);
    for seed in 0..50 {
        let mut rng = RngFactory::new(seed).stream("chain");
        let plan = ChurnPlan::random_deaths_connected(5, 4, 10, 1_000, &mut rng, |victims| {
            keeps_root_connected(&topo, victims)
        });
        let order: Vec<NodeId> = plan.events().iter().map(|&(_, ev)| ev.node()).collect();
        assert_eq!(
            order,
            vec![NodeId(4), NodeId(3), NodeId(2), NodeId(1)],
            "seed {seed}: chain must die leaf-first"
        );
    }
}
