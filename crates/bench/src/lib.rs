//! # dirq-bench — the reproduction harness
//!
//! One binary per figure/result of the paper's evaluation (Section 5 and
//! Section 7), plus Criterion microbenchmarks of the hot data structures.
//!
//! | Paper artefact | Binary | What it prints |
//! |---|---|---|
//! | Fig. 5a/5b (accuracy vs fixed δ) | `fig5_accuracy` | the four percentage series for δ = 1..9 %, at 40 % and 60 % relevance |
//! | Fig. 6 (update traffic vs time) | `fig6_updates` | updates per 100 epochs for δ = 3/5/9 % and ATC, with the Umax/hr band lines |
//! | Fig. 7 (overshoot vs time) | `fig7_overshoot` | per-interval overshoot for δ = 3/5/9 % and ATC at 20 % relevance |
//! | Section 5 worked example + Eqs. 3–9 | `tab_analytic` | closed-form cost tables and simulated validation |
//! | §1/§7 headline (45–55 % of flooding) | `cost_ratio` | measured DirQ/flooding cost ratios |
//! | design-choice sensitivity (DESIGN.md §6) | `ablations` | update rule / tree / world / sampling / MAC perturbations |
//!
//! (`probe` is a development-time calibration scratchpad, not a published
//! figure.)
//!
//! Every binary accepts `--epochs N`, `--seed S` and `--quick` (a short
//! 4 000-epoch run for smoke testing); defaults reproduce the paper's
//! 20 000-epoch setup. Output is an aligned table plus machine-readable
//! CSV blocks.

#![warn(missing_docs)]

pub mod args;
pub mod experiments;
pub mod matrix;
