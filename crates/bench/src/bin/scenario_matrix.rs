//! The scenario-matrix bench: run the preset registry through the
//! deterministic sweep executor and record `BENCH_2.json`.
//!
//! Modes:
//!
//! * default — the full registry (100–5 000 nodes, including the ≥2 000
//!   node deployments) at its recorded epoch budgets; writes the artifact
//!   with a per-large-preset epochs/s throughput section and a history
//!   trail of earlier recorded (wall-seconds, fingerprint) pairs.
//! * `--preset NAME` — one preset only.
//! * `--epoch-scale F` / `--quick` — scale every epoch budget (quick ≈ 0.1).
//! * `--smoke` — CI mode: the small smoke preset at two thread counts,
//!   asserting the fingerprints are identical, match the recorded golden,
//!   that the emitted JSON parses back, and that the checked-in
//!   `BENCH_2.json` still carries the recorded full-registry fingerprint
//!   ([`registry::REGISTRY_GOLDEN_FINGERPRINT`]). Exits non-zero on any
//!   mismatch.
//! * `--list` — print the registry and exit.
//!
//! Usage: `scenario_matrix [--preset NAME] [--epoch-scale F] [--quick]
//! [--threads T] [--replicates R] [--out PATH] [--smoke] [--list]`

use std::time::Instant;

use dirq_core::Engine;
use dirq_scenario::{registry, run_matrix_report, ScenarioReport, ScenarioSpec, SweepConfig};
use dirq_sim::json::Json;

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: scenario_matrix [--preset NAME] [--epoch-scale F] [--quick] \
         [--threads T] [--mac-workers W] [--replicates R] [--out PATH] [--smoke] [--list]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let mut cfg = SweepConfig::default();
    let mut out = String::from("BENCH_2.json");
    let mut only: Option<String> = None;
    let mut smoke = false;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                cfg.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"))
            }
            "--mac-workers" => {
                cfg.mac_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--mac-workers needs a number"))
            }
            "--replicates" => {
                cfg.replicates = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--replicates needs a number"))
            }
            "--epoch-scale" => {
                cfg.epoch_scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--epoch-scale needs a number"))
            }
            "--quick" => cfg.epoch_scale = 0.1,
            "--preset" => {
                only = Some(args.next().unwrap_or_else(|| usage("--preset needs a name")))
            }
            "--out" => out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--smoke" => smoke = true,
            "--list" => list = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    if list {
        println!("{:<22} {:>6} {:>7}  schemes", "preset", "nodes", "epochs");
        for s in registry::registry() {
            let schemes: Vec<String> = s.schemes.iter().map(|k| k.label()).collect();
            println!("{:<22} {:>6} {:>7}  {}", s.name, s.n_nodes, s.epochs, schemes.join(", "));
        }
        return;
    }

    if smoke {
        run_smoke(&out);
        return;
    }

    let specs: Vec<ScenarioSpec> = match &only {
        Some(name) => {
            vec![dirq_scenario::preset(name)
                .unwrap_or_else(|| usage(&format!("unknown preset {name:?} (try --list)")))]
        }
        None => registry::registry(),
    };

    let t0 = Instant::now();
    let report = run_matrix_report(&specs, &cfg);
    let wall = t0.elapsed().as_secs_f64();

    print!("{}", report.summary_table().to_ascii());
    if !report.comparisons.is_empty() {
        println!("comparisons (scheme / flooding, same scenario):");
        for c in &report.comparisons {
            println!("  {:<18} {:<22} {:>7.3}", c.scenario, c.metric, c.ratio);
        }
    }
    println!(
        "report fingerprint: {:#018X}  ({} rows, {:.1}s wall)",
        report.stable_fingerprint(),
        report.rows.len(),
        wall
    );

    let mut doc = artifact(&report, &cfg, wall);
    // Per-epoch throughput of the two largest presets, measured on the run
    // loop only (setup excluded) — the trajectory ISSUE/ROADMAP perf work
    // is gated on. Each preset runs the colour-class MAC parallelism at
    // 1, 2 and 4 workers (the `threads` axis); the run fingerprint must be
    // identical across the axis — worker counts may only change speed.
    let mut throughput = Vec::new();
    for name in ["grid_2000", "stress_5000"] {
        if !specs.iter().any(|s| s.name == name) {
            continue;
        }
        let spec = registry::preset(name).expect("registry preset").scaled(cfg.epoch_scale);
        let scheme = spec.schemes[0];
        let mut serial_fp = None;
        for threads in [1usize, 2, 4] {
            // Best of two runs: the run loop is deterministic, so repeats
            // only differ by scheduling noise — keep the cleaner sample.
            let mut eps = 0f64;
            let mut fp = 0u64;
            let mut epochs = 0u64;
            for _ in 0..2 {
                let mut run_cfg = spec.config(scheme, spec.seed);
                run_cfg.lmac.workers = threads;
                let engine = Engine::new(run_cfg);
                let t = Instant::now();
                let r = engine.run();
                eps = eps.max(r.epochs as f64 / t.elapsed().as_secs_f64());
                fp = r.stable_fingerprint();
                epochs = r.epochs;
            }
            match serial_fp {
                None => serial_fp = Some(fp),
                Some(want) => assert_eq!(
                    fp, want,
                    "{name}: {threads} MAC workers changed the run fingerprint"
                ),
            }
            println!(
                "{name}: {eps:.0} epochs/s ({epochs} epochs, run loop only, {threads} threads)"
            );
            let mut o = Json::object();
            o.set("scenario", Json::Str(name.to_string()));
            o.set("threads", Json::Num(threads as f64));
            o.set("epochs", Json::Num(epochs as f64));
            o.set("epochs_per_sec", Json::Num(eps.round()));
            o.set("fingerprint", Json::Str(format!("{:#018X}", fp)));
            throughput.push(o);
        }
    }
    if !throughput.is_empty() {
        doc.set("throughput", Json::Arr(throughput));
    }
    // Carry the recorded trajectory forward: previous (wall, fingerprint)
    // pairs stay in the artifact so the scale history reads like BENCH_1.
    doc.set("history", history_with(&out, &report, wall));
    std::fs::write(&out, doc.render_pretty()).expect("write scenario matrix json");
    println!("wrote {out}");
}

/// Wrap the report in the artifact envelope.
fn artifact(report: &ScenarioReport, cfg: &SweepConfig, wall: f64) -> Json {
    let mut doc = Json::object();
    doc.set("schema", Json::Str("dirq-scenario-matrix-v1".to_string()));
    doc.set("epoch_scale", Json::Num(cfg.epoch_scale));
    doc.set("replicates", Json::Num(cfg.replicates as f64));
    doc.set("wall_seconds", Json::Num((wall * 100.0).round() / 100.0));
    doc.set("report", report.to_json());
    doc.set("tool", Json::Str("crates/bench/src/bin/scenario_matrix.rs".to_string()));
    doc
}

/// The history array of the existing artifact at `path` (if any), with
/// this run's (wall-seconds, fingerprint, rows) appended.
fn history_with(path: &str, report: &ScenarioReport, wall: f64) -> Json {
    let mut entries: Vec<Json> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| doc.get("history").and_then(Json::as_array).map(<[Json]>::to_vec))
        .unwrap_or_default();
    let mut entry = Json::object();
    entry.set("wall_seconds", Json::Num((wall * 100.0).round() / 100.0));
    entry.set("report_fingerprint", Json::Str(format!("{:#018X}", report.stable_fingerprint())));
    entry.set("rows", Json::Num(report.rows.len() as f64));
    entries.push(entry);
    Json::Arr(entries)
}

/// CI smoke: one small preset, two thread counts, golden fingerprint,
/// JSON round-trip, plus a staleness check of the checked-in
/// `BENCH_2.json` against the recorded full-registry fingerprint. Any
/// failure exits non-zero.
fn run_smoke(out: &str) {
    // The recorded artifact must match the registry golden — catching PRs
    // that change behaviour (or the registry) without re-running the
    // matrix and re-recording BENCH_2.json.
    match std::fs::read_to_string("BENCH_2.json").ok().and_then(|t| Json::parse(&t).ok()) {
        Some(doc) => {
            let recorded = doc
                .get("report")
                .and_then(|r| r.get("report_fingerprint"))
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let expected = format!("{:#018X}", registry::REGISTRY_GOLDEN_FINGERPRINT);
            if recorded != expected {
                eprintln!(
                    "FAIL: BENCH_2.json records {recorded}, expected {expected}\n\
                     (behaviour or registry changed? re-run scenario_matrix and re-record)"
                );
                std::process::exit(1);
            }
        }
        None => {
            eprintln!("FAIL: BENCH_2.json missing or unparseable; re-run scenario_matrix");
            std::process::exit(1);
        }
    }
    let spec = registry::smoke();
    let single = run_matrix_report(
        std::slice::from_ref(&spec),
        &SweepConfig { threads: 1, ..SweepConfig::default() },
    );
    let parallel = run_matrix_report(
        std::slice::from_ref(&spec),
        &SweepConfig { threads: 0, ..SweepConfig::default() },
    );
    let fp = single.stable_fingerprint();
    if fp != parallel.stable_fingerprint() {
        eprintln!(
            "FAIL: thread count changed the report: {:#018X} (1 thread) vs {:#018X} (all cores)",
            fp,
            parallel.stable_fingerprint()
        );
        std::process::exit(1);
    }
    if fp != registry::SMOKE_GOLDEN_FINGERPRINT {
        eprintln!(
            "FAIL: smoke fingerprint {fp:#018X} != recorded golden {:#018X}\n\
             (intentional behaviour change? re-record via tests/scenario_golden.rs)",
            registry::SMOKE_GOLDEN_FINGERPRINT
        );
        std::process::exit(1);
    }
    // Golden thread-invariance gate for the parallel MAC path: the whole
    // registry (scaled to smoke budgets) at 1 and at 4 threads — both the
    // sweep fan-out and the intra-run colour-class MAC workers — must
    // produce the identical report fingerprint.
    let registry_scale = 0.1;
    let reg1 = run_matrix_report(
        &registry::registry(),
        &SweepConfig {
            threads: 1,
            mac_workers: 1,
            epoch_scale: registry_scale,
            ..SweepConfig::default()
        },
    );
    let reg4 = run_matrix_report(
        &registry::registry(),
        &SweepConfig {
            threads: 4,
            mac_workers: 4,
            epoch_scale: registry_scale,
            ..SweepConfig::default()
        },
    );
    if reg1.stable_fingerprint() != reg4.stable_fingerprint() {
        eprintln!(
            "FAIL: registry diverges across thread counts: {:#018X} (1 thread) vs \
             {:#018X} (4 sweep threads x 4 MAC workers)",
            reg1.stable_fingerprint(),
            reg4.stable_fingerprint()
        );
        std::process::exit(1);
    }
    println!(
        "registry thread-invariance OK at scale {registry_scale}: {:#018X}",
        reg1.stable_fingerprint()
    );
    let doc = artifact(&single, &SweepConfig::default(), 0.0);
    let text = doc.render_pretty();
    std::fs::write(out, &text).expect("write smoke json");
    let parsed = match Json::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("FAIL: emitted smoke JSON does not parse: {e}");
            std::process::exit(1);
        }
    };
    let recorded = parsed
        .get("report")
        .and_then(|r| r.get("report_fingerprint"))
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    if recorded != format!("{fp:#018X}") {
        eprintln!("FAIL: JSON round-trip lost the fingerprint: {recorded:?}");
        std::process::exit(1);
    }
    println!("smoke OK: fingerprint {fp:#018X} stable across thread counts, JSON parses");
    println!("wrote {out}");
}
