//! The scenario-matrix bench: run the preset registry through the
//! deterministic sweep executor and record `BENCH_2.json`.
//!
//! Modes:
//!
//! * default — the full registry (100–50 000 nodes, including the ≥2 000
//!   node deployments) at its recorded epoch budgets; writes the artifact
//!   with a per-large-preset epochs/s throughput section and a history
//!   trail of earlier recorded (wall-seconds, fingerprint) pairs.
//! * `--preset NAME` — one preset only.
//! * `--epoch-scale F` / `--quick` — scale every epoch budget (quick ≈ 0.1).
//! * `--smoke` — CI mode: the small smoke preset at two thread counts,
//!   asserting the fingerprints are identical, match the recorded golden,
//!   that the emitted JSON parses back, that the checked-in `BENCH_2.json`
//!   still carries the recorded full-registry fingerprint
//!   ([`registry::REGISTRY_GOLDEN_FINGERPRINT`]), and that short
//!   large-preset runs still clear the perf-trajectory floor (see
//!   `--perf-floor`). Exits non-zero on any mismatch.
//! * `--list` — print the registry and exit.
//!
//! The smoke perf tripwire compares fresh short-run epochs/s of
//! `grid_2000`/`stress_5000`/`stress_20000` against the throughput
//! recorded in `BENCH_2.json` and fails below `floor × recorded`. The
//! floor defaults to 0.35 (CI runners are slower and noisier than the
//! recording box) and can be overridden with `--perf-floor F` or the
//! `DIRQ_PERF_FLOOR` environment variable; `0` disables the tripwire
//! entirely.
//!
//! Usage: `scenario_matrix [--preset NAME] [--epoch-scale F] [--quick]
//! [--threads T] [--mac-workers W] [--world-workers W]
//! [--dispatch-workers W] [--upkeep-workers W] [--replicates R]
//! [--perf-floor F] [--out PATH] [--smoke] [--list]`

use dirq_bench::matrix;
use dirq_scenario::{registry, run_matrix_report, ScenarioSpec, SweepConfig};
use dirq_sim::json::Json;

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: scenario_matrix [--preset NAME] [--epoch-scale F] [--quick] \
         [--threads T] [--mac-workers W] [--world-workers W] [--dispatch-workers W] \
         [--upkeep-workers W] [--replicates R] [--perf-floor F] [--out PATH] \
         [--smoke] [--list]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// The perf-trajectory floor: `--perf-floor` wins, then `DIRQ_PERF_FLOOR`,
/// then the default of 0.35. `0` disables the tripwire (documented escape
/// hatch for noisy or heavily shared runners). An unparseable environment
/// value is a hard error — silently falling back to the default would
/// defeat the override exactly when an operator reaches for it.
fn perf_floor(flag: Option<f64>) -> f64 {
    if let Some(f) = flag {
        return f;
    }
    match std::env::var("DIRQ_PERF_FLOOR") {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!(
                "FAIL: DIRQ_PERF_FLOOR={v:?} is not a number (use e.g. 0.2, or 0 to disable)"
            );
            std::process::exit(2);
        }),
        Err(_) => 0.35,
    }
}

fn main() {
    let mut cfg = SweepConfig::default();
    let mut out = String::from("BENCH_2.json");
    let mut only: Option<String> = None;
    let mut smoke = false;
    let mut list = false;
    let mut floor_flag: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                cfg.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"))
            }
            "--mac-workers" => {
                cfg.mac_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--mac-workers needs a number"))
            }
            "--world-workers" => {
                cfg.world_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--world-workers needs a number"))
            }
            "--dispatch-workers" => {
                cfg.dispatch_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--dispatch-workers needs a number"))
            }
            "--upkeep-workers" => {
                cfg.upkeep_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--upkeep-workers needs a number"))
            }
            "--replicates" => {
                cfg.replicates = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--replicates needs a number"))
            }
            "--epoch-scale" => {
                cfg.epoch_scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--epoch-scale needs a number"))
            }
            "--quick" => cfg.epoch_scale = 0.1,
            "--preset" => {
                only = Some(args.next().unwrap_or_else(|| usage("--preset needs a name")))
            }
            "--perf-floor" => {
                floor_flag = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--perf-floor needs a fraction")),
                )
            }
            "--out" => out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--smoke" => smoke = true,
            "--list" => list = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    if list {
        println!("{:<22} {:>6} {:>7}  schemes", "preset", "nodes", "epochs");
        for s in registry::registry() {
            let schemes: Vec<String> = s.schemes.iter().map(|k| k.label()).collect();
            println!("{:<22} {:>6} {:>7}  {}", s.name, s.n_nodes, s.epochs, schemes.join(", "));
        }
        return;
    }

    if smoke {
        run_smoke(&out, &cfg, perf_floor(floor_flag));
        return;
    }

    let specs: Vec<ScenarioSpec> = match &only {
        Some(name) => {
            vec![dirq_scenario::preset(name)
                .unwrap_or_else(|| usage(&format!("unknown preset {name:?} (try --list)")))]
        }
        None => registry::registry(),
    };
    matrix::run_and_record(&specs, &cfg, &out);
}

/// CI smoke: one small preset at two thread counts, the smoke-scaled
/// registry at two worker configurations, golden fingerprints, JSON
/// round-trip, a staleness check of the checked-in `BENCH_2.json`, and
/// the perf-trajectory tripwire. Any failure exits non-zero.
///
/// Only the worker knobs (`--mac-workers`/`--world-workers`/
/// `--dispatch-workers`/`--upkeep-workers`) flow in from the command
/// line — the CI worker matrix exercises the parallel MAC,
/// world-generation, protocol dispatch and protocol upkeep paths, and
/// none may move a fingerprint. Budget knobs
/// (`--epoch-scale`, `--quick`, `--replicates`) are deliberately
/// ignored: the smoke goldens are recorded at fixed budgets.
fn run_smoke(out: &str, cli_cfg: &SweepConfig, floor: f64) {
    let base_cfg = &SweepConfig {
        mac_workers: cli_cfg.mac_workers,
        world_workers: cli_cfg.world_workers,
        dispatch_workers: cli_cfg.dispatch_workers,
        upkeep_workers: cli_cfg.upkeep_workers,
        ..SweepConfig::default()
    };
    // The recorded artifact must match the registry golden — catching PRs
    // that change behaviour (or the registry) without re-running the
    // matrix and re-recording BENCH_2.json.
    let bench2 = std::fs::read_to_string("BENCH_2.json").ok().and_then(|t| Json::parse(&t).ok());
    match &bench2 {
        Some(doc) => {
            let recorded = doc
                .get("report")
                .and_then(|r| r.get("report_fingerprint"))
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let expected = format!("{:#018X}", registry::REGISTRY_GOLDEN_FINGERPRINT);
            if recorded != expected {
                eprintln!(
                    "FAIL: BENCH_2.json records {recorded}, expected {expected}\n\
                     (behaviour or registry changed? re-record via record_goldens)"
                );
                std::process::exit(1);
            }
        }
        None => {
            eprintln!("FAIL: BENCH_2.json missing or unparseable; re-run record_goldens");
            std::process::exit(1);
        }
    }
    let spec = registry::smoke();
    let single =
        run_matrix_report(std::slice::from_ref(&spec), &SweepConfig { threads: 1, ..*base_cfg });
    let parallel =
        run_matrix_report(std::slice::from_ref(&spec), &SweepConfig { threads: 0, ..*base_cfg });
    let fp = single.stable_fingerprint();
    if fp != parallel.stable_fingerprint() {
        eprintln!(
            "FAIL: thread count changed the report: {:#018X} (1 thread) vs {:#018X} (all cores)",
            fp,
            parallel.stable_fingerprint()
        );
        std::process::exit(1);
    }
    if fp != registry::SMOKE_GOLDEN_FINGERPRINT {
        eprintln!(
            "FAIL: smoke fingerprint {fp:#018X} != recorded golden {:#018X}\n\
             (intentional behaviour change? re-record via record_goldens)",
            registry::SMOKE_GOLDEN_FINGERPRINT
        );
        std::process::exit(1);
    }
    // Golden worker-invariance gate for the parallel MAC, world,
    // protocol-dispatch and protocol-upkeep paths: the whole registry
    // (scaled to smoke
    // budgets) serial vs with the requested intra-run worker knobs
    // engaged — identical report fingerprints. Only meaningful when a
    // worker knob is > 1, so the serial CI matrix leg skips the two
    // extra registry sweeps.
    let workers = base_cfg
        .mac_workers
        .max(base_cfg.world_workers)
        .max(base_cfg.dispatch_workers)
        .max(base_cfg.upkeep_workers)
        .max(1);
    if workers > 1 {
        let registry_scale = 0.1;
        let reg1 = run_matrix_report(
            &registry::registry(),
            &SweepConfig {
                threads: 1,
                mac_workers: 1,
                world_workers: 1,
                dispatch_workers: 1,
                upkeep_workers: 1,
                epoch_scale: registry_scale,
                ..SweepConfig::default()
            },
        );
        let reg_sharded = run_matrix_report(
            &registry::registry(),
            &SweepConfig {
                threads: 4,
                mac_workers: base_cfg.mac_workers.max(1),
                world_workers: base_cfg.world_workers.max(1),
                dispatch_workers: base_cfg.dispatch_workers.max(1),
                upkeep_workers: base_cfg.upkeep_workers.max(1),
                epoch_scale: registry_scale,
                ..SweepConfig::default()
            },
        );
        if reg1.stable_fingerprint() != reg_sharded.stable_fingerprint() {
            eprintln!(
                "FAIL: registry diverges across worker counts: {:#018X} (serial) vs \
                 {:#018X} (4 sweep threads x {} MAC workers x {} world workers x {} \
                 dispatch workers x {} upkeep workers)",
                reg1.stable_fingerprint(),
                reg_sharded.stable_fingerprint(),
                base_cfg.mac_workers.max(1),
                base_cfg.world_workers.max(1),
                base_cfg.dispatch_workers.max(1),
                base_cfg.upkeep_workers.max(1),
            );
            std::process::exit(1);
        }
        println!(
            "registry worker-invariance OK at scale {registry_scale}: {:#018X}",
            reg1.stable_fingerprint()
        );
    } else {
        println!("registry worker-invariance skipped (serial leg; run with worker knobs > 1)");
    }

    // Perf-trajectory tripwire: fresh short runs of the large presets
    // must clear `floor × recorded epochs/s` (BENCH_2 throughput,
    // matching worker count). Catches perf regressions that land without
    // re-recording the trajectory.
    if floor > 0.0 {
        let doc = bench2.expect("BENCH_2.json verified above");
        for name in ["grid_2000", "stress_5000", "stress_20000"] {
            // Short-budget spec: enough run-loop epochs for a stable
            // epochs/s estimate without full-budget wall time.
            let spec = registry::preset(name).expect("registry preset").scaled(0.05);
            // Baseline at the matching worker count, else the serial one.
            let Some(recorded) = matrix::recorded_throughput(&doc, name, workers)
                .or_else(|| matrix::recorded_throughput(&doc, name, 1))
            else {
                eprintln!("FAIL: BENCH_2.json has no recorded throughput for {name}");
                std::process::exit(1);
            };
            let (eps, epochs, _) = matrix::measure_throughput(&spec, workers, 2);
            let threshold = recorded * floor;
            println!(
                "perf floor {name}: fresh {eps:.0} eps ({epochs} epochs, {workers} workers) \
                 vs recorded {recorded:.0} × floor {floor} = {threshold:.0}"
            );
            if eps < threshold {
                eprintln!(
                    "FAIL: {name} throughput {eps:.0} epochs/s fell below {threshold:.0} \
                     ({floor} × recorded {recorded:.0}).\n\
                     Perf regression — or a noisy runner: override with --perf-floor F or \
                     DIRQ_PERF_FLOOR=F (0 disables)."
                );
                std::process::exit(1);
            }
        }
    } else {
        println!("perf floor disabled (floor = 0)");
    }

    let doc = matrix::artifact(&single, &SweepConfig::default(), 0.0);
    let text = doc.render_pretty();
    std::fs::write(out, &text).expect("write smoke json");
    let parsed = match Json::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("FAIL: emitted smoke JSON does not parse: {e}");
            std::process::exit(1);
        }
    };
    let recorded = parsed
        .get("report")
        .and_then(|r| r.get("report_fingerprint"))
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    if recorded != format!("{fp:#018X}") {
        eprintln!("FAIL: JSON round-trip lost the fingerprint: {recorded:?}");
        std::process::exit(1);
    }
    println!("smoke OK: fingerprint {fp:#018X} stable across thread counts, JSON parses");
    println!("wrote {out}");
}
