//! Regenerates **Fig. 7** of the DirQ paper: query overshoot over time for
//! fixed δ = 3/5/9 % and the Adaptive Threshold Control, at 20 % relevant
//! nodes.
//!
//! Expected shape (paper): overshoot grows with δ; ATC's overshoot sits
//! between the fixed-δ extremes while its cost stays in the 45–55 % band.
//! The summary reports overshoot under both plausible readings of the
//! paper's axis: relative to the should-receive set, and in percentage
//! points of network size.

use dirq_bench::args::HarnessArgs;
use dirq_bench::experiments::fig7;

fn main() {
    let args = HarnessArgs::from_env();
    eprintln!("fig7: 4 policies, {} epochs each (use --quick for a fast pass)", args.epochs);
    let (summary, series) = fig7(&args);
    println!("# Fig. 7 — overshoot (20% relevant nodes)");
    println!("{}", summary.to_ascii());
    println!("# CSV series (mean relative overshoot per 1000-epoch interval)");
    print!("{}", series.to_csv());
}
