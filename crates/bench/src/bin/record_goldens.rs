//! One-pass golden re-record tool.
//!
//! Recomputes **every** pinned fingerprint in the workspace — the
//! engine-level and report-level pins of the [`dirq::goldens`] manifest,
//! the smoke golden, and the full-budget registry golden — and either:
//!
//! * **default (record)** — rewrites the constants in place
//!   (`src/goldens.rs`, `crates/scenario/src/registry.rs`) and
//!   regenerates `BENCH_2.json` from the same full matrix run, so an
//!   intentional behaviour break lands as one consistent commit; or
//! * **`--check`** — recomputes everything fresh, compares against the
//!   checked-in values (constants, the `BENCH_2.json` report
//!   fingerprint, and the deterministic `state_fingerprint` fields of
//!   the loadgen's `BENCH_3.json`) and exits non-zero on any mismatch.
//!   This is the CI staleness gate: a behaviour change cannot land with
//!   half-recorded goldens.
//!
//! Usage: `record_goldens [--check] [--out PATH]`

use std::path::{Path, PathBuf};

use dirq::goldens::{self, GoldenPin};
use dirq::scenario::registry;
use dirq_scenario::{run_matrix_report, SweepConfig};
use dirq_sim::json::Json;

/// Workspace root, resolved from this crate's manifest directory so the
/// tool works from any working directory.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

/// Rewrite `const NAME: u64 = 0x…;` in `file` to `value`. Returns whether
/// the stored value changed.
fn patch_const(file: &Path, name: &str, value: u64) -> bool {
    let text =
        std::fs::read_to_string(file).unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
    let needle = format!("const {name}: u64 = ");
    let Some(at) = text.find(&needle) else {
        panic!("{}: no `{needle}` declaration found", file.display());
    };
    let vstart = at + needle.len();
    let vend = vstart + text[vstart..].find(';').expect("const terminator");
    let new_value = format!("{value:#018X}");
    if text[vstart..vend] == new_value {
        return false;
    }
    let patched = format!("{}{}{}", &text[..vstart], new_value, &text[vend..]);
    std::fs::write(file, patched).unwrap_or_else(|e| panic!("write {}: {e}", file.display()));
    true
}

/// The report fingerprint `BENCH_2.json` records, if readable.
fn bench2_fingerprint(path: &Path) -> Option<String> {
    let doc = Json::parse(&std::fs::read_to_string(path).ok()?).ok()?;
    Some(doc.get("report")?.get("report_fingerprint")?.as_str()?.to_string())
}

/// Staleness check for the loadgen artifact: the wall-clock numbers
/// (qps, latencies) are machine-specific, but the `state_fingerprint`
/// and `epochs_to_answer` fields in `BENCH_3.json` are deterministic
/// functions of the recorded deployment recipe — recompute both fresh
/// (the latter through the [`dirqd::loadmodel`] replay the loadgen
/// itself asserts against) and report drift. Also pins the recorded
/// schema and image format version. Returns problem strings (empty =
/// current). Re-record with
/// `cargo run --release -p dirq-dirqd --bin loadgen`.
fn bench3_stale_entries(path: &Path) -> Vec<String> {
    use dirq_scenario::Scheme;
    use dirqd::loadmodel::{histogram_counts, reference_epochs_histogram};

    const SCHEMA: &str = "dirqd-loadgen/2";

    let name = "BENCH_3.json";
    let Ok(text) = std::fs::read_to_string(path) else {
        return vec![format!("{name}: missing (re-run the loadgen)")];
    };
    let Ok(doc) = Json::parse(&text) else {
        return vec![format!("{name}: unparseable")];
    };
    let mut problems = Vec::new();
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some(SCHEMA) {
        problems.push(format!("{name}: schema {schema:?}, this build writes {SCHEMA:?}"));
    }
    let version = doc.get("image_format_version").and_then(Json::as_f64);
    if version != Some(f64::from(dirq_sim::snap::SNAP_FORMAT_VERSION)) {
        problems.push(format!(
            "{name}: image_format_version {version:?}, this build writes {}",
            dirq_sim::snap::SNAP_FORMAT_VERSION
        ));
    }
    let Some(rows) = doc.get("deployments").and_then(Json::as_array) else {
        problems.push(format!("{name}: no deployments array"));
        return problems;
    };
    if rows.len() < 2 {
        problems.push(format!("{name}: {} deployment(s), expected at least 2", rows.len()));
    }
    for row in rows {
        let label = row.get("name").and_then(Json::as_str).unwrap_or("<unnamed>").to_string();
        let fields = (|| {
            let preset_name = row.get("preset")?.as_str()?.to_string();
            let scale = row.get("scale")?.as_f64()?;
            let scheme = Scheme::parse(row.get("scheme")?.as_str()?)?;
            // Seeds are u64s carried losslessly; `as_u64` rejects what
            // `as_f64 as u64` used to round.
            let seed = row.get("seed")?.as_u64()?;
            let warmup = row.get("warmup_epochs")?.as_u64()?;
            let recorded = row.get("state_fingerprint")?.as_str()?.to_string();
            let spec = dirq_scenario::preset(&preset_name)?;
            let spec = if scale == 1.0 { spec } else { spec.scaled(scale) };
            Some((preset_name, scale, spec, scheme, seed, warmup, recorded))
        })();
        let Some((preset_name, scale, spec, scheme, seed, warmup, recorded)) = fields else {
            problems.push(format!("{name}: {label}: missing/invalid deployment fields"));
            continue;
        };
        let mut engine = dirq_core::Engine::new(spec.config(scheme, seed));
        for _ in 0..warmup {
            engine.step_epoch();
        }
        let fresh = format!("{:#018X}", engine.state_fingerprint());
        let status = if fresh == recorded { "ok" } else { "DRIFTED" };
        println!("  {:<26} {fresh}  {status}", format!("BENCH_3:{label}"));
        if fresh != recorded {
            problems.push(format!("{name}: {label}: records {recorded}, fresh is {fresh}"));
        }

        // The epochs-to-answer histogram is deterministic (unlike the
        // wall-ms percentiles beside it): replay the barriered phase
        // engine-level and compare the `(epochs, count)` pairs. Only
        // default-seed recipes can be replayed — the loadgen always
        // deploys with the preset default.
        let recorded_hist = (|| {
            row.get("epochs_to_answer")?
                .as_array()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_array()?;
                    Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
                })
                .collect::<Option<Vec<_>>>()
        })();
        let Some(recorded_hist) = recorded_hist else {
            problems.push(format!("{name}: {label}: missing/invalid epochs_to_answer"));
            continue;
        };
        if seed != spec.seed {
            problems.push(format!(
                "{name}: {label}: non-default seed {seed}; cannot replay epochs_to_answer"
            ));
            continue;
        }
        let fresh_hist = histogram_counts(&reference_epochs_histogram(&preset_name, scale, warmup));
        let status = if fresh_hist == recorded_hist { "ok" } else { "DRIFTED" };
        println!("  {:<26} {fresh_hist:?}  {status}", format!("BENCH_3:{label}:epochs"));
        if fresh_hist != recorded_hist {
            problems.push(format!(
                "{name}: {label}: records epochs_to_answer {recorded_hist:?}, fresh is \
                 {fresh_hist:?}"
            ));
        }
    }
    problems
}

fn main() {
    let mut check = false;
    let mut out = String::from("BENCH_2.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--help" | "-h" => {
                eprintln!("usage: record_goldens [--check] [--out PATH]");
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let root = repo_root();
    let pins = goldens::pins();

    // Recompute every manifest pin from scratch. Runs are deterministic
    // and independent; print progress as they land (the full pass is a
    // couple of minutes of release-mode simulation).
    println!("recomputing {} manifest pins + the full registry…", pins.len());
    let mut mismatches: Vec<String> = Vec::new();
    let mut fresh: Vec<(&GoldenPin, u64)> = Vec::new();
    for pin in &pins {
        let value = (pin.compute)();
        let status = if value == pin.recorded { "ok" } else { "DRIFTED" };
        println!("  {:<26} {:#018X}  {status}", pin.name, value);
        if value != pin.recorded {
            mismatches.push(format!(
                "{}: recorded {:#018X}, fresh {:#018X}",
                pin.name, pin.recorded, value
            ));
        }
        fresh.push((pin, value));
    }

    if check {
        // Full-budget registry sweep, compared against the constant and
        // the checked-in artifact (no writes in check mode).
        let report = run_matrix_report(&registry::registry(), &SweepConfig::default());
        let registry_fp = report.stable_fingerprint();
        println!(
            "  {:<26} {:#018X}  {}",
            "REGISTRY_GOLDEN_FINGERPRINT",
            registry_fp,
            if registry_fp == registry::REGISTRY_GOLDEN_FINGERPRINT { "ok" } else { "DRIFTED" }
        );
        if registry_fp != registry::REGISTRY_GOLDEN_FINGERPRINT {
            mismatches.push(format!(
                "REGISTRY_GOLDEN_FINGERPRINT: recorded {:#018X}, fresh {registry_fp:#018X}",
                registry::REGISTRY_GOLDEN_FINGERPRINT
            ));
        }
        let recorded_artifact = bench2_fingerprint(&root.join(&out));
        let expected = format!("{registry_fp:#018X}");
        if recorded_artifact.as_deref() != Some(expected.as_str()) {
            mismatches.push(format!(
                "{out}: records {}, fresh registry is {expected}",
                recorded_artifact.as_deref().unwrap_or("<missing/unparseable>")
            ));
        }
        // The loadgen artifact: deterministic fields only (wall-clock
        // numbers are machine-specific and exempt). Re-record with the
        // loadgen itself, not this tool.
        mismatches.extend(bench3_stale_entries(&root.join("BENCH_3.json")));
        if mismatches.is_empty() {
            println!("all goldens match a fresh record");
            return;
        }
        eprintln!("STALE GOLDENS ({}):", mismatches.len());
        for m in &mismatches {
            eprintln!("  {m}");
        }
        eprintln!("re-record with: cargo run --release -p dirq-bench --bin record_goldens");
        eprintln!("(BENCH_3.json entries: cargo run --release -p dirq-dirqd --bin loadgen)");
        std::process::exit(1);
    }

    // Record mode: patch the manifest constants, then regenerate the
    // artifact from the same behaviour and pin its registry fingerprint.
    let mut patched = 0usize;
    for (pin, value) in &fresh {
        if patch_const(&root.join(pin.file), pin.name, *value) {
            println!("  patched {} in {}", pin.name, pin.file);
            patched += 1;
        }
    }
    let out_abs = root.join(&out).to_string_lossy().into_owned();
    let report = dirq_bench::matrix::run_and_record(
        &registry::registry(),
        &SweepConfig::default(),
        &out_abs,
    );
    if patch_const(
        &root.join(goldens::REGISTRY_FILE),
        "REGISTRY_GOLDEN_FINGERPRINT",
        report.stable_fingerprint(),
    ) {
        println!("  patched REGISTRY_GOLDEN_FINGERPRINT in {}", goldens::REGISTRY_FILE);
        patched += 1;
    }
    println!(
        "done: {patched} constant(s) rewritten, {out} regenerated \
         (fingerprint {:#018X})",
        report.stable_fingerprint()
    );
    if patched > 0 {
        println!("note: rebuild + rerun tests to verify the new pins compile and hold");
    }
}
