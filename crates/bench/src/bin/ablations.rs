//! Design-choice ablations (DESIGN.md §6): quantify each mechanism the
//! paper's design relies on by perturbing it in isolation —
//!
//! * the Fig. 3 update hysteresis (δ transmission threshold off / doubled),
//! * the spanning-tree construction (bounded random vs shortest-path BFS),
//! * the synthetic world's spatial structure (clustered vs smooth fields),
//! * predictive sensor sampling (the Section 8 future work),
//! * LMAC's per-slot data capacity (dissemination latency).

use dirq_bench::args::HarnessArgs;
use dirq_bench::experiments::ablations;

fn main() {
    let args = HarnessArgs::from_env();
    eprintln!("ablations: 7 runs, {} epochs each (use --quick for a fast pass)", args.epochs);
    let table = ablations(&args);
    println!("# Ablations — effect of each design choice (40% relevance, fixed delta = 5%)");
    println!("{}", table.to_ascii());
    println!("# CSV");
    print!("{}", table.to_csv());
}
