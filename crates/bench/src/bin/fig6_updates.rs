//! Regenerates **Fig. 6** of the DirQ paper: total Update Messages
//! transmitted per 100 epochs over the run, for fixed δ = 3/5/9 % and the
//! Adaptive Threshold Control, at 40 % relevant nodes — together with the
//! reference lines `Umax/Hr`, `0.55·Umax/Hr` and `0.45·Umax/Hr`.
//!
//! Expected shape (paper): fixed thresholds produce flat series whose level
//! falls as δ grows; ATC steers its series into the 0.45–0.55 band, which
//! keeps total DirQ cost at ~45–55 % of flooding.

use dirq_bench::args::HarnessArgs;
use dirq_bench::experiments::fig6;

fn main() {
    let args = HarnessArgs::from_env();
    eprintln!("fig6: 4 policies, {} epochs each (use --quick for a fast pass)", args.epochs);
    let (summary, series) = fig6(&args);
    println!("# Fig. 6 — update messages per 100 epochs (40% relevant nodes)");
    println!("{}", summary.to_ascii());
    println!("# CSV series (one row per 100-epoch bucket)");
    print!("{}", series.to_csv());
}
