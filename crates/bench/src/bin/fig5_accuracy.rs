//! Regenerates **Fig. 5** of the DirQ paper: effect of the threshold δ on
//! dissemination accuracy, for the 40 % (Fig. 5a) and 60 % (Fig. 5b)
//! relevant-node scenarios.
//!
//! Series per δ ∈ 1..9 %: nodes that SHOULD receive the query, nodes that
//! RECEIVE it, source nodes, and nodes that should NOT have received it —
//! all as percentages of the 50-node network, averaged over the run's
//! queries.
//!
//! Expected shape (paper): the gap between RECEIVE and SHOULD grows with
//! δ and is most pronounced at lower relevance percentages.

use dirq_bench::args::HarnessArgs;
use dirq_bench::experiments::fig5;

fn main() {
    let args = HarnessArgs::from_env();
    eprintln!(
        "fig5: 2 scenarios x 9 thresholds, {} epochs each (use --quick for a fast pass)",
        args.epochs
    );
    let table = fig5(&args);
    println!("# Fig. 5 — effect of delta on accuracy (means over measured queries)");
    println!("{}", table.to_ascii());
    println!("# CSV");
    print!("{}", table.to_csv());
}
