//! Regenerates the paper's **headline result** (§1, §7): with the Adaptive
//! Threshold Control, DirQ's total cost — query dissemination plus range
//! updates plus control traffic — lands between 45 % and 55 % of the cost
//! of flooding, across the 20 %/40 %/60 % relevant-node scenarios, while
//! queries still reach their source nodes.

use dirq_bench::args::HarnessArgs;
use dirq_bench::experiments::cost_ratio;

fn main() {
    let args = HarnessArgs::from_env();
    eprintln!("cost_ratio: 6 runs, {} epochs each (use --quick for a fast pass)", args.epochs);
    let table = cost_ratio(&args);
    println!("# Headline — DirQ (ATC) vs flooding cost, per query");
    println!("{}", table.to_ascii());
    println!("# CSV");
    print!("{}", table.to_csv());
}
