//! Regenerates the **Section 5** analytical results: the closed-form cost
//! model on complete k-ary trees (Eqs. 3–9), the worked example
//! (k = 2, d = 4 ⇒ fMax = 46/60 ≈ 0.76), and a simulation-vs-formula
//! validation of the flooding cost on exact k-ary topologies.

use dirq_bench::args::HarnessArgs;
use dirq_bench::experiments::{analytic_table, analytic_validation};

fn main() {
    let args = HarnessArgs::from_env();
    println!("# Section 5 — closed-form costs on complete k-ary trees");
    println!("{}", analytic_table().to_ascii());
    let c = dirq_analytic::KaryCosts::compute(2, 4);
    let (num, den) = c.f_max_exact().unwrap();
    println!(
        "worked example (k=2, d=4): fMax = {num}/{den} = {:.4}  (paper truncates to 0.76)\n",
        c.f_max().unwrap()
    );
    println!("# Validation — simulated flooding vs Eq. 3/4 on exact k-ary trees");
    let v = analytic_validation(&args);
    println!("{}", v.to_ascii());
    println!("# CSV");
    print!("{}", v.to_csv());
}
