//! Measure the synthetic world generator's share of a large-preset epoch.
//!
//! Runs the `stress_5000` deployment twice: once through the full engine
//! (run-loop epochs/s) and once advancing only the `SensorWorld`, giving
//! the generator's standalone epochs/s and its share of the epoch budget.
//! The ROADMAP's "world generation is ~30 % of the 5 000-node epoch" came
//! from this measurement; re-run it when the generator changes.
//!
//! The standalone world replays the engine's single-sink deployment
//! (same streams, same retry budget); presets with `extra_sinks` are
//! rejected — the wired-backbone repositioning is not replicated here
//! and the share figure would silently compare different deployments.
//!
//! Usage: `world_probe [--preset NAME] [--epochs N] [--world-workers W]`

use std::time::Instant;

use dirq_core::Engine;
use dirq_data::sensor::SensorAssignment;
use dirq_data::{SensorCatalog, SensorWorld, WorldConfig};
use dirq_net::Topology;
use dirq_sim::RngFactory;

fn main() {
    let mut preset = String::from("stress_5000");
    let mut epochs: u64 = 200;
    let mut world_workers: usize = 1;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--preset" => preset = args.next().expect("--preset needs a name"),
            "--epochs" => {
                epochs = args.next().and_then(|v| v.parse().ok()).expect("--epochs needs a number")
            }
            "--world-workers" => {
                world_workers =
                    args.next().and_then(|v| v.parse().ok()).expect("--world-workers needs a count")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let spec = dirq_scenario::preset(&preset).expect("registry preset");
    let scheme = spec.schemes[0];
    let mut cfg = spec.config(scheme, spec.seed);
    cfg.epochs = epochs;
    cfg.measure_from_epoch = epochs / 5;

    // Engine run-loop epochs/s (setup excluded).
    let engine = Engine::new(cfg.clone());
    let t = Instant::now();
    let r = engine.run();
    let engine_secs = t.elapsed().as_secs_f64();
    let engine_eps = r.epochs as f64 / engine_secs;

    // World-only advance over the same deployment. Like the multi-sink
    // guard, refuse radio models whose deployment this probe does not
    // replicate — a silently different topology would skew the share.
    assert_eq!(cfg.extra_sinks, 0, "world_probe does not replicate multi-sink deployments");
    assert!(
        matches!(cfg.radio, dirq_core::RadioSpec::UnitDisk),
        "world_probe does not replicate non-unit-disk deployments"
    );
    let factory = RngFactory::new(cfg.seed);
    let mut rng = factory.stream("deploy");
    let placement = cfg.placement.clone().expect("preset placement");
    let topo = Topology::deploy_connected(
        cfg.n_nodes,
        &placement,
        cfg.sink,
        &dirq_net::radio::UnitDisk::new(cfg.radio_range),
        &mut rng,
        400,
    )
    .expect("deployment");
    let world_cfg = cfg.world.clone().unwrap_or_else(|| WorldConfig::environmental(cfg.side));
    let catalog = SensorCatalog::environmental();
    let assignment = SensorAssignment::heterogeneous(
        cfg.n_nodes,
        catalog.len(),
        cfg.sensor_coverage,
        &mut factory.stream("assignment"),
    );
    let mut world = SensorWorld::new(&world_cfg, catalog, assignment, &topo, &factory);
    world.set_workers(world_workers);
    let t = Instant::now();
    for _ in 0..epochs {
        world.advance_epoch();
    }
    let world_secs = t.elapsed().as_secs_f64();
    let world_eps = epochs as f64 / world_secs;

    // Share of the engine epoch spent in world generation (same per-epoch
    // cost in both runs; the engine's epoch also contains MAC + protocol).
    let share = (world_secs / epochs as f64) / (engine_secs / r.epochs as f64) * 100.0;
    println!("preset {preset}: {epochs} epochs, {} nodes", cfg.n_nodes);
    println!("engine run loop: {engine_eps:.0} epochs/s");
    println!("world advance alone: {world_eps:.0} epochs/s ({world_workers} workers)");
    println!("world share of engine epoch: {share:.1}%");
}
