//! Measure the per-phase serial share of a large-preset epoch.
//!
//! Runs a registry preset with the engine's phase-timing instrumentation
//! enabled and reports how the epoch budget splits between the synthetic
//! world advance, the protocol-upkeep sub-phases (churn, tree repair,
//! EHr, sensor sampling, query injection), the MAC slot loop, indication
//! dispatch and end-of-epoch finalisation — the measurement behind the
//! ROADMAP's "remaining serial wall" figures. Re-run it (before/after,
//! serial vs sharded) when the dispatch or upkeep paths change; the
//! PR-by-PR history lives in PERFORMANCE.md.
//!
//! Usage: `dispatch_probe [--preset NAME] [--epochs N]
//! [--dispatch-workers W] [--upkeep-workers W]`

use std::time::Instant;

use dirq_core::Engine;

fn main() {
    let mut preset = String::from("stress_5000");
    let mut epochs: u64 = 60;
    let mut dispatch_workers: usize = 1;
    let mut upkeep_workers: usize = 1;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--preset" => preset = args.next().expect("--preset needs a name"),
            "--epochs" => {
                epochs = args.next().and_then(|v| v.parse().ok()).expect("--epochs needs a number")
            }
            "--dispatch-workers" => {
                dispatch_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--dispatch-workers needs a count")
            }
            "--upkeep-workers" => {
                upkeep_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--upkeep-workers needs a count")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let spec = dirq_scenario::preset(&preset).expect("registry preset");
    let scheme = spec.schemes[0];
    let mut cfg = spec.config(scheme, spec.seed);
    cfg.epochs = epochs;
    cfg.measure_from_epoch = epochs / 5;
    cfg.dispatch_workers = dispatch_workers;
    cfg.upkeep_workers = upkeep_workers;

    let mut engine = Engine::new(cfg.clone());
    engine.enable_phase_timing();
    let t = Instant::now();
    for _ in 0..epochs {
        engine.step_epoch();
    }
    let wall = t.elapsed().as_secs_f64();
    let eps = epochs as f64 / wall;
    let ph = engine.phase_timings().expect("timing enabled");

    let phases = [
        ("world advance", ph.world),
        ("churn", ph.churn),
        ("tree repair", ph.repair),
        ("EHr broadcast", ph.ehr),
        ("sensor sampling", ph.sampling),
        ("query injection", ph.injection),
        ("MAC slot loop", ph.mac),
        ("indication dispatch", ph.dispatch),
        ("finalisation", ph.finalize),
    ];
    let accounted: f64 = phases.iter().map(|(_, s)| s).sum();
    println!(
        "preset {preset}: {epochs} epochs, {} nodes, {dispatch_workers} dispatch workers, \
         {upkeep_workers} upkeep workers",
        cfg.n_nodes
    );
    println!("run loop: {eps:.0} epochs/s ({wall:.2}s wall)");
    for (name, secs) in phases {
        println!("  {name:<20} {:>6.2}s  {:>5.1}% of epoch", secs, secs / wall * 100.0);
    }
    println!(
        "  {:<20} {:>6.2}s  {:>5.1}% of epoch",
        "protocol upkeep Σ",
        ph.protocol(),
        ph.protocol() / wall * 100.0
    );
    println!(
        "  {:<20} {:>6.2}s  {:>5.1}% of epoch",
        "unattributed",
        wall - accounted,
        (wall - accounted) / wall * 100.0
    );
}
