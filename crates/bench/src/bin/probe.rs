//! Ad-hoc calibration probe (not part of the published harness).

use dirq_core::{run_scenario, AtcConfig, DeltaPolicy, Protocol, ScenarioConfig};

fn atc_convergence() {
    let r = run_scenario(ScenarioConfig {
        delta_policy: DeltaPolicy::Adaptive(AtcConfig::default()),
        target_fraction: 0.4,
        epochs: 20_000,
        measure_from_epoch: 2_000,
        ..ScenarioConfig::paper(42)
    });
    let umax100 = r.u_max_per_hour * 100.0 / r.hour_epochs as f64;
    println!("umax/100ep = {umax100:.0}, final ratio = {:.3}", r.cost_ratio_vs_flooding().unwrap());
    for chunk_start in (0..200).step_by(20) {
        let upd: f64 = (chunk_start..chunk_start + 20)
            .map(|b| r.metrics.updates_per_bucket.sum(b))
            .sum::<f64>()
            / 20.0;
        let delta = r
            .delta_trace
            .iter()
            .filter(|(e, _)| {
                (chunk_start as u64 * 100..(chunk_start as u64 + 20) * 100).contains(e)
            })
            .map(|&(_, d)| d)
            .sum::<f64>()
            / 20.0;
        println!(
            "epochs {:>6}-{:>6}: upd/100ep={:>6.0}  meanδ={:.2}",
            chunk_start * 100,
            (chunk_start + 20) * 100,
            upd,
            delta
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--atc-long") {
        atc_convergence();
        return;
    }
    let epochs = 4000;
    let base = ScenarioConfig { epochs, measure_from_epoch: 400, ..ScenarioConfig::paper(42) };

    // Flooding reference.
    let flood = run_scenario(ScenarioConfig { protocol: Protocol::Flooding, ..base.clone() });
    println!(
        "flooding: cost/query measured={:.1} analytic={:.1}",
        flood.cost_per_query().unwrap(),
        flood.flooding_cost_per_query()
    );
    println!(
        "analytic: N={} links={} CF={:.0} CQDmax={:.0} CUDmax={:.0} fmax={:.3} Umax/hr={:.0} (per100ep={:.0})",
        flood.analytic.n,
        flood.analytic.links,
        flood.analytic.flooding,
        flood.analytic.cqd_max,
        flood.analytic.cud_max,
        flood.analytic.f_max().unwrap(),
        flood.u_max_per_hour,
        flood.u_max_per_hour * 100.0 / flood.hour_epochs as f64,
    );

    for (label, policy) in [
        ("d=3%", DeltaPolicy::Fixed(3.0)),
        ("d=5%", DeltaPolicy::Fixed(5.0)),
        ("d=9%", DeltaPolicy::Fixed(9.0)),
        ("ATC ", DeltaPolicy::Adaptive(AtcConfig::default())),
    ] {
        for target in [0.2, 0.4, 0.6] {
            let r = run_scenario(ScenarioConfig {
                delta_policy: policy,
                target_fraction: target,
                ..base.clone()
            });
            let m = &r.metrics;
            let upd_per_100 = m.updates_per_bucket.total() / (epochs as f64 / 100.0);
            let umax_per_100 = r.u_max_per_hour * 100.0 / r.hour_epochs as f64;
            println!(
                "{label} tgt={target:.1}: should={:.1}% recv={:.1}% src={:.1}% wrong={:.1}% overshoot={:.2}% recall={:.3} upd/100ep={:.0} (umax/100ep={:.0}) cost/q={:.1} ratio={:.3} meanδ={:.2}",
                m.mean_over_queries(|o| o.pct_should()).unwrap_or(0.0),
                m.mean_over_queries(|o| o.pct_received()).unwrap_or(0.0),
                m.mean_over_queries(|o| o.pct_sources()).unwrap_or(0.0),
                m.mean_over_queries(|o| o.pct_should_not()).unwrap_or(0.0),
                r.mean_overshoot_pct(),
                m.mean_over_queries(|o| o.source_recall()).unwrap_or(0.0),
                upd_per_100,
                umax_per_100,
                r.cost_per_query().unwrap_or(0.0),
                r.cost_ratio_vs_flooding().unwrap_or(0.0),
                r.delta_trace.last().map(|&(_, d)| d).unwrap_or(0.0),
            );
        }
    }
}
