//! End-to-end throughput baseline for the simulation hot path.
//!
//! Runs the standard fig5 (fixed δ, 40 % relevance) and fig7 (ATC, 20 %
//! relevance) scenarios, reports **epochs per second** and **heap
//! allocations per epoch** for each, and records the results in a JSON
//! file (default `BENCH_1.json`) so future perf work is gated on a
//! measured trajectory.
//!
//! The first run seeds the baseline section; later runs keep the recorded
//! baseline and update the `current` numbers plus the derived speedup.
//! Pass `--set-baseline` to re-seed the baseline from this run.
//!
//! Usage: `perf_baseline [--epochs N] [--seed S] [--out PATH] [--set-baseline]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dirq_core::{run_scenario, AtcConfig, DeltaPolicy, Protocol, ScenarioConfig};

/// System allocator wrapped with allocation counting, so the bench can
/// report steady-state allocation pressure alongside throughput.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counters are plain atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Measurement {
    epochs_per_sec: f64,
    allocs_per_epoch: f64,
    alloc_kib_per_epoch: f64,
    fingerprint: u64,
}

/// Run `cfg` a few times; keep the best throughput (least interference)
/// and the allocation profile of the final repetition.
fn measure(cfg: &ScenarioConfig, reps: usize) -> Measurement {
    let mut best_eps = 0.0f64;
    let mut allocs_per_epoch = 0.0;
    let mut kib_per_epoch = 0.0;
    let mut fingerprint = 0;
    for _ in 0..reps {
        let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
        let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
        let t0 = Instant::now();
        let r = run_scenario(cfg.clone());
        let dt = t0.elapsed().as_secs_f64();
        let calls = ALLOC_CALLS.load(Ordering::Relaxed) - calls0;
        let bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes0;
        best_eps = best_eps.max(cfg.epochs as f64 / dt);
        allocs_per_epoch = calls as f64 / cfg.epochs as f64;
        kib_per_epoch = bytes as f64 / 1024.0 / cfg.epochs as f64;
        fingerprint = r.stable_fingerprint();
    }
    Measurement {
        epochs_per_sec: best_eps,
        allocs_per_epoch,
        alloc_kib_per_epoch: kib_per_epoch,
        fingerprint,
    }
}

fn fig5_scenario(seed: u64, epochs: u64) -> ScenarioConfig {
    ScenarioConfig {
        epochs,
        measure_from_epoch: (epochs / 10).clamp(200, 2_000),
        target_fraction: 0.4,
        delta_policy: DeltaPolicy::Fixed(5.0),
        protocol: Protocol::Dirq,
        ..ScenarioConfig::paper(seed)
    }
}

fn fig7_scenario(seed: u64, epochs: u64) -> ScenarioConfig {
    ScenarioConfig {
        target_fraction: 0.2,
        delta_policy: DeltaPolicy::Adaptive(AtcConfig::default()),
        ..fig5_scenario(seed, epochs)
    }
}

/// Extract `"key": <number>` from previously written JSON (own format only).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut epochs: u64 = 3_000;
    let mut seed: u64 = 42;
    let mut out = String::from("BENCH_1.json");
    let mut set_baseline = false;
    fn usage(err: &str) -> ! {
        eprintln!("error: {err}");
        eprintln!("usage: perf_baseline [--epochs N] [--seed S] [--out PATH] [--set-baseline]");
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--epochs" => {
                epochs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--epochs needs a number"))
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"))
            }
            "--out" => out = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--set-baseline" => set_baseline = true,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let prior = if set_baseline { None } else { std::fs::read_to_string(&out).ok() };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"dirq-perf-baseline-v1\",\n");
    json.push_str(&format!("  \"epochs\": {epochs},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));

    println!(
        "{:<6} {:>14} {:>14} {:>12} {:>14} {:>9}",
        "scen", "epochs/s", "baseline", "speedup", "allocs/epoch", "KiB/ep"
    );
    for (name, cfg) in
        [("fig5", fig5_scenario(seed, epochs)), ("fig7", fig7_scenario(seed, epochs))]
    {
        let m = measure(&cfg, 2);
        let baseline = prior
            .as_deref()
            .and_then(|t| json_number(t, &format!("{name}_baseline_epochs_per_sec")))
            .unwrap_or(m.epochs_per_sec);
        let speedup = m.epochs_per_sec / baseline;
        println!(
            "{name:<6} {:>14.1} {:>14.1} {:>11.2}x {:>14.2} {:>9.2}",
            m.epochs_per_sec, baseline, speedup, m.allocs_per_epoch, m.alloc_kib_per_epoch
        );
        json.push_str(&format!("  \"{name}_baseline_epochs_per_sec\": {baseline:.1},\n"));
        json.push_str(&format!("  \"{name}_current_epochs_per_sec\": {:.1},\n", m.epochs_per_sec));
        json.push_str(&format!("  \"{name}_speedup\": {speedup:.3},\n"));
        json.push_str(&format!("  \"{name}_allocs_per_epoch\": {:.2},\n", m.allocs_per_epoch));
        json.push_str(&format!(
            "  \"{name}_alloc_kib_per_epoch\": {:.2},\n",
            m.alloc_kib_per_epoch
        ));
        json.push_str(&format!("  \"{name}_fingerprint\": \"{:#018X}\",\n", m.fingerprint));
    }
    // Trailing metadata key keeps the object comma-valid.
    json.push_str("  \"tool\": \"crates/bench/src/bin/perf_baseline.rs\"\n}\n");

    std::fs::write(&out, &json).expect("write bench json");
    println!("wrote {out}");
}
