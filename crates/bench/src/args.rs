//! Minimal command-line handling shared by the figure binaries.

/// Common options for figure binaries.
#[derive(Clone, Copy, Debug)]
pub struct HarnessArgs {
    /// Epochs per run (paper: 20 000).
    pub epochs: u64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs { epochs: 20_000, seed: 42, threads: 0 }
    }
}

impl HarnessArgs {
    /// Parse from an iterator of argument strings (without `argv[0]`).
    ///
    /// Recognised: `--epochs N`, `--seed S`, `--threads T`, `--quick`.
    /// Unknown arguments abort with a usage message.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = HarnessArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--epochs" => {
                    out.epochs = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--epochs needs a number"));
                }
                "--seed" => {
                    out.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                }
                "--threads" => {
                    out.threads = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--threads needs a number"));
                }
                "--quick" => out.epochs = 4_000,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument {other:?}")),
            }
        }
        out
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        HarnessArgs::parse(std::env::args().skip(1))
    }

    /// Warm-up epochs to exclude from aggregates for this run length.
    pub fn measure_from(&self) -> u64 {
        (self.epochs / 10).clamp(200, 2_000)
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: <bin> [--epochs N] [--seed S] [--threads T] [--quick]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> HarnessArgs {
        HarnessArgs::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.epochs, 20_000);
        assert_eq!(a.seed, 42);
        assert_eq!(a.threads, 0);
    }

    #[test]
    fn explicit_values() {
        let a = parse(&["--epochs", "1234", "--seed", "9", "--threads", "4"]);
        assert_eq!(a.epochs, 1234);
        assert_eq!(a.seed, 9);
        assert_eq!(a.threads, 4);
    }

    #[test]
    fn quick_mode() {
        let a = parse(&["--quick"]);
        assert_eq!(a.epochs, 4_000);
    }

    #[test]
    fn measure_from_scales() {
        assert_eq!(HarnessArgs { epochs: 20_000, seed: 0, threads: 0 }.measure_from(), 2_000);
        assert_eq!(HarnessArgs { epochs: 4_000, seed: 0, threads: 0 }.measure_from(), 400);
        assert_eq!(HarnessArgs { epochs: 500, seed: 0, threads: 0 }.measure_from(), 200);
    }
}
