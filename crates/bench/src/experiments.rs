//! Shared experiment runners behind the figure binaries.
//!
//! Each function reproduces one artefact of the paper's evaluation and
//! returns [`Table`]s ready for printing; the binaries add CSV output. All
//! sweeps run parameter points in parallel with deterministic per-point
//! seeds, so results are independent of thread count.

use dirq_core::{run_scenario, AtcConfig, DeltaPolicy, Protocol, RunResult, ScenarioConfig};
use dirq_sim::report::{fnum, Table};
use dirq_sim::runner::run_sweep;

use crate::args::HarnessArgs;

/// Threshold policies plotted in Figs. 6 and 7.
pub fn figure_policies() -> Vec<(&'static str, DeltaPolicy)> {
    vec![
        ("delta=3%", DeltaPolicy::Fixed(3.0)),
        ("delta=5%", DeltaPolicy::Fixed(5.0)),
        ("delta=9%", DeltaPolicy::Fixed(9.0)),
        ("ATC", DeltaPolicy::Adaptive(AtcConfig::default())),
    ]
}

fn base_config(args: &HarnessArgs) -> ScenarioConfig {
    ScenarioConfig {
        epochs: args.epochs,
        measure_from_epoch: args.measure_from(),
        ..ScenarioConfig::paper(args.seed)
    }
}

/// Fig. 5: the four percentage-of-nodes series versus fixed δ = 1..9 %,
/// for the 40 % (Fig. 5a) and 60 % (Fig. 5b) relevant-node scenarios.
pub fn fig5(args: &HarnessArgs) -> Table {
    let deltas: Vec<f64> = (1..=9).map(f64::from).collect();
    let mut points: Vec<(f64, f64)> = Vec::new();
    for &target in &[0.4, 0.6] {
        for &d in &deltas {
            points.push((target, d));
        }
    }
    let base = base_config(args);
    let results = run_sweep(&points, args.threads, |&(target, delta)| {
        run_scenario(ScenarioConfig {
            target_fraction: target,
            delta_policy: DeltaPolicy::Fixed(delta),
            ..base.clone()
        })
    });

    let mut table = Table::new([
        "relevant",
        "delta_pct",
        "should_receive_pct",
        "receive_pct",
        "source_pct",
        "should_not_receive_pct",
        "overshoot_rel_pct",
        "source_recall",
    ]);
    for ((target, delta), r) in points.iter().zip(&results) {
        let m = &r.metrics;
        table.row([
            format!("{:.0}%", target * 100.0),
            fnum(*delta, 0),
            fnum(m.mean_over_queries(|o| o.pct_should()).unwrap_or(0.0), 1),
            fnum(m.mean_over_queries(|o| o.pct_received()).unwrap_or(0.0), 1),
            fnum(m.mean_over_queries(|o| o.pct_sources()).unwrap_or(0.0), 1),
            fnum(m.mean_over_queries(|o| o.pct_should_not()).unwrap_or(0.0), 1),
            fnum(r.mean_overshoot_pct(), 1),
            fnum(m.mean_over_queries(|o| o.source_recall()).unwrap_or(0.0), 3),
        ]);
    }
    table
}

/// Fig. 6: update messages transmitted per 100 epochs over the run, for
/// δ = 3/5/9 % and ATC at 40 % relevance. Returns `(summary, series)`:
/// the summary holds per-policy means and the Umax/hr band, the series is
/// one row per 100-epoch bucket.
pub fn fig6(args: &HarnessArgs) -> (Table, Table) {
    let policies = figure_policies();
    let base = base_config(args);
    let results = run_sweep(&policies, args.threads, |(_, policy)| {
        run_scenario(ScenarioConfig { target_fraction: 0.4, delta_policy: *policy, ..base.clone() })
    });

    let umax_100 = results[0].u_max_per_hour * 100.0 / results[0].hour_epochs as f64;
    let mut summary = Table::new([
        "series",
        "updates_per_100ep_mean",
        "vs_umax",
        "cost_ratio_vs_flooding",
        "final_mean_delta_pct",
    ]);
    for ((name, _), r) in policies.iter().zip(&results) {
        let buckets = (r.epochs / 100).max(1) as f64;
        let mean = r.metrics.updates_per_bucket.total() / buckets;
        summary.row([
            (*name).to_string(),
            fnum(mean, 0),
            fnum(mean / umax_100, 2),
            fnum(r.cost_ratio_vs_flooding().unwrap_or(f64::NAN), 3),
            fnum(r.delta_trace.last().map(|&(_, d)| d).unwrap_or(f64::NAN), 2),
        ]);
    }
    for (name, value) in [
        ("Umax/Hr", umax_100),
        ("0.55*Umax/Hr", 0.55 * umax_100),
        ("0.45*Umax/Hr", 0.45 * umax_100),
    ] {
        summary.row([
            name.to_string(),
            fnum(value, 0),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }

    let mut series = Table::new([
        "epoch",
        "delta3",
        "delta5",
        "delta9",
        "atc",
        "umax",
        "umax_x0.55",
        "umax_x0.45",
    ]);
    let buckets = (args.epochs / 100) as usize;
    for b in 0..buckets {
        series.row([
            (b as u64 * 100).to_string(),
            fnum(results[0].metrics.updates_per_bucket.sum(b), 0),
            fnum(results[1].metrics.updates_per_bucket.sum(b), 0),
            fnum(results[2].metrics.updates_per_bucket.sum(b), 0),
            fnum(results[3].metrics.updates_per_bucket.sum(b), 0),
            fnum(umax_100, 0),
            fnum(0.55 * umax_100, 0),
            fnum(0.45 * umax_100, 0),
        ]);
    }
    (summary, series)
}

/// Fig. 7: overshoot over time for δ = 3/5/9 % and ATC at 20 % relevance.
/// Returns `(summary, series)`; the series has one row per 1 000-epoch
/// interval with the mean *relative* overshoot of the queries finalised in
/// it. The summary also reports the percentage-point definition, since the
/// paper's axis is ambiguous.
pub fn fig7(args: &HarnessArgs) -> (Table, Table) {
    let policies = figure_policies();
    let base = base_config(args);
    let results = run_sweep(&policies, args.threads, |(_, policy)| {
        run_scenario(ScenarioConfig { target_fraction: 0.2, delta_policy: *policy, ..base.clone() })
    });

    let mut summary = Table::new([
        "series",
        "mean_overshoot_rel_pct",
        "mean_overshoot_points",
        "mean_recall",
        "cost_ratio_vs_flooding",
    ]);
    for ((name, _), r) in policies.iter().zip(&results) {
        summary.row([
            (*name).to_string(),
            fnum(r.mean_overshoot_pct(), 1),
            fnum(r.metrics.mean_over_queries(|o| o.overshoot_points()).unwrap_or(f64::NAN), 1),
            fnum(r.metrics.mean_over_queries(|o| o.source_recall()).unwrap_or(f64::NAN), 3),
            fnum(r.cost_ratio_vs_flooding().unwrap_or(f64::NAN), 3),
        ]);
    }

    let interval = 1_000u64;
    let mut series = Table::new(["epoch", "delta3", "delta5", "delta9", "atc"]);
    let intervals = (args.epochs / interval) as usize;
    for i in 0..intervals {
        let lo = i as u64 * interval;
        let hi = lo + interval;
        let mut cells = vec![lo.to_string()];
        for r in &results {
            let vals: Vec<f64> = r
                .metrics
                .outcomes
                .iter()
                .filter(|o| o.epoch >= lo && o.epoch < hi)
                .map(|o| o.overshoot_pct())
                .collect();
            let mean = if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            cells.push(fnum(mean, 1));
        }
        series.row(cells);
    }
    (summary, series)
}

/// Section 5: closed-form costs on complete k-ary trees including the
/// paper's worked example (k = 2, d = 4 ⇒ fMax ≈ 0.76).
pub fn analytic_table() -> Table {
    let mut table = Table::new(["k", "d", "N", "CF", "CQDmax", "CUDmax", "fMax"]);
    for &(k, d) in &[
        (2u32, 2u32),
        (2, 3),
        (2, 4), // the worked example
        (2, 6),
        (3, 3),
        (3, 4),
        (4, 3),
        (8, 2),
        (8, 3),
    ] {
        let c = dirq_analytic::KaryCosts::compute(k, d);
        table.row([
            k.to_string(),
            d.to_string(),
            c.n.to_string(),
            c.flooding.to_string(),
            c.cqd_max.to_string(),
            c.cud_max.to_string(),
            c.f_max().map(|f| fnum(f, 4)).unwrap_or_default(),
        ]);
    }
    table
}

/// Section 5 validation: simulated flooding cost on exact k-ary trees must
/// match Eq. 3/4 to the message.
pub fn analytic_validation(args: &HarnessArgs) -> Table {
    let cases = [(2usize, 4u32), (3, 3), (4, 2)];
    let results = run_sweep(&cases, args.threads, |&(k, d)| {
        run_scenario(ScenarioConfig {
            tree: dirq_core::TreeKind::CompleteKary { k, d },
            protocol: Protocol::Flooding,
            epochs: 2_000,
            measure_from_epoch: 200,
            ..ScenarioConfig::paper(args.seed)
        })
    });
    let mut table = Table::new(["k", "d", "analytic_CF", "simulated_CF_per_query", "rel_error"]);
    for ((k, d), r) in cases.iter().zip(&results) {
        let analytic = r.flooding_cost_per_query();
        let measured = r.cost_per_query().unwrap_or(f64::NAN);
        table.row([
            k.to_string(),
            d.to_string(),
            fnum(analytic, 0),
            fnum(measured, 1),
            fnum((measured - analytic).abs() / analytic, 4),
        ]);
    }
    table
}

/// The §1/§7 headline: DirQ (with ATC) costs 45–55 % of flooding across
/// the three relevance scenarios.
pub fn cost_ratio(args: &HarnessArgs) -> Table {
    #[derive(Clone, Copy)]
    struct Point {
        target: f64,
        policy: DeltaPolicy,
        protocol: Protocol,
        label: &'static str,
    }
    let mut points = Vec::new();
    for &target in &[0.2, 0.4, 0.6] {
        points.push(Point {
            target,
            policy: DeltaPolicy::Adaptive(AtcConfig::default()),
            protocol: Protocol::Dirq,
            label: "DirQ (ATC)",
        });
    }
    for &target in &[0.2, 0.4, 0.6] {
        points.push(Point {
            target,
            policy: DeltaPolicy::Fixed(5.0),
            protocol: Protocol::Flooding,
            label: "Flooding",
        });
    }
    let base = base_config(args);
    let results: Vec<RunResult> = run_sweep(&points, args.threads, |p| {
        run_scenario(ScenarioConfig {
            target_fraction: p.target,
            delta_policy: p.policy,
            protocol: p.protocol,
            ..base.clone()
        })
    });

    let mut table = Table::new([
        "protocol",
        "relevant",
        "cost_per_query",
        "ratio_vs_flooding",
        "mean_overshoot_rel_pct",
        "mean_recall",
    ]);
    for (p, r) in points.iter().zip(&results) {
        table.row([
            p.label.to_string(),
            format!("{:.0}%", p.target * 100.0),
            fnum(r.cost_per_query().unwrap_or(f64::NAN), 1),
            fnum(r.cost_ratio_vs_flooding().unwrap_or(f64::NAN), 3),
            fnum(r.mean_overshoot_pct(), 1),
            fnum(r.metrics.mean_over_queries(|o| o.source_recall()).unwrap_or(f64::NAN), 3),
        ]);
    }
    table
}

/// Design-choice ablations (see DESIGN.md §6): each row perturbs one
/// mechanism against the paper-faithful default and reports its effect on
/// update traffic, cost, accuracy and (where applicable) sensor-sampling
/// savings.
pub fn ablations(args: &HarnessArgs) -> Table {
    use dirq_core::{PredictiveConfig, SamplingStrategy, TreeKind};
    use dirq_data::world::{FieldStyle, WorldConfig};

    #[derive(Clone)]
    struct Case {
        label: &'static str,
        cfg: ScenarioConfig,
    }
    let base = ScenarioConfig { delta_policy: DeltaPolicy::Fixed(5.0), ..base_config(args) };
    let smooth_world = {
        let mut w = WorldConfig::environmental(base.side);
        for t in &mut w.types {
            t.field_style = FieldStyle::Smooth;
        }
        w
    };
    let cases = vec![
        Case { label: "baseline (paper rules)", cfg: base.clone() },
        Case {
            label: "update rule: no hysteresis",
            cfg: ScenarioConfig { tx_threshold_factor: 0.0, ..base.clone() },
        },
        Case {
            label: "update rule: 2x hysteresis",
            cfg: ScenarioConfig { tx_threshold_factor: 2.0, ..base.clone() },
        },
        Case {
            label: "tree: shortest-path BFS",
            cfg: ScenarioConfig { tree: TreeKind::Bfs, ..base.clone() },
        },
        Case {
            label: "world: smooth fields",
            cfg: ScenarioConfig { world: Some(smooth_world), ..base.clone() },
        },
        Case {
            label: "sampling: predictive",
            cfg: ScenarioConfig {
                sampling: SamplingStrategy::Predictive(PredictiveConfig::default()),
                ..base.clone()
            },
        },
        Case {
            label: "mac: 1 msg/slot",
            cfg: ScenarioConfig {
                lmac: dirq_lmac::LmacConfig { data_messages_per_slot: 1, ..Default::default() },
                ..base.clone()
            },
        },
    ];

    let results = run_sweep(&cases, args.threads, |c| run_scenario(c.cfg.clone()));
    let mut table = Table::new([
        "variant",
        "updates_per_100ep",
        "cost_ratio",
        "overshoot_rel_pct",
        "recall",
        "sampling_skipped_pct",
    ]);
    for (case, r) in cases.iter().zip(&results) {
        let buckets = (r.epochs / 100).max(1) as f64;
        let skipped = if r.samples_taken + r.samples_skipped > 0 {
            fnum(100.0 * r.samples_skipped as f64 / (r.samples_taken + r.samples_skipped) as f64, 1)
        } else {
            "-".to_string()
        };
        table.row([
            case.label.to_string(),
            fnum(r.metrics.updates_per_bucket.total() / buckets, 0),
            fnum(r.cost_ratio_vs_flooding().unwrap_or(f64::NAN), 3),
            fnum(r.mean_overshoot_pct(), 1),
            fnum(r.metrics.mean_over_queries(|o| o.source_recall()).unwrap_or(f64::NAN), 3),
            skipped,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HarnessArgs {
        HarnessArgs { epochs: 600, seed: 7, threads: 0 }
    }

    #[test]
    fn ablations_cover_all_variants() {
        let t = ablations(&quick());
        assert_eq!(t.len(), 7);
        let csv = t.to_csv();
        assert!(csv.contains("baseline"));
        assert!(csv.contains("predictive"));
    }

    #[test]
    fn analytic_table_contains_worked_example() {
        let t = analytic_table();
        let csv = t.to_csv();
        assert!(csv.contains("2,4,31,91,45,60,0.7667"), "worked example row missing:\n{csv}");
    }

    #[test]
    fn fig6_tables_have_expected_shape() {
        let (summary, series) = fig6(&quick());
        assert_eq!(summary.len(), 4 + 3, "4 policies + 3 reference lines");
        assert_eq!(series.len(), 6, "600 epochs → 6 buckets of 100");
    }

    #[test]
    fn fig7_summary_orders_policies() {
        let (summary, _) = fig7(&quick());
        assert_eq!(summary.len(), 4);
    }

    #[test]
    fn validation_matches_analytic() {
        let t = analytic_validation(&HarnessArgs { epochs: 600, seed: 7, threads: 0 });
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            let rel: f64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert!(rel < 0.02, "validation row off: {line}");
        }
    }
}
