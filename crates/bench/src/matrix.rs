//! Shared machinery for recording the scenario-matrix artifact
//! (`BENCH_2.json`): the artifact envelope, the history trail and the
//! large-preset throughput measurement. Used by the `scenario_matrix`
//! bench (default mode) and by `record_goldens` (the one-pass golden
//! re-record tool), so both write byte-compatible artifacts.

use std::time::Instant;

use dirq_core::Engine;
use dirq_scenario::{registry, run_matrix_report, ScenarioReport, ScenarioSpec, SweepConfig};
use dirq_sim::json::Json;

/// Wrap the report in the artifact envelope.
pub fn artifact(report: &ScenarioReport, cfg: &SweepConfig, wall: f64) -> Json {
    let mut doc = Json::object();
    doc.set("schema", Json::Str("dirq-scenario-matrix-v1".to_string()));
    doc.set("epoch_scale", Json::Num(cfg.epoch_scale));
    doc.set("replicates", Json::Num(cfg.replicates as f64));
    doc.set("wall_seconds", Json::Num((wall * 100.0).round() / 100.0));
    doc.set("report", report.to_json());
    doc.set("tool", Json::Str("crates/bench/src/bin/scenario_matrix.rs".to_string()));
    doc
}

/// The history array of the existing artifact at `path` (if any), with
/// this run's (wall-seconds, fingerprint, rows) appended.
pub fn history_with(path: &str, report: &ScenarioReport, wall: f64) -> Json {
    let mut entries: Vec<Json> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| doc.get("history").and_then(Json::as_array).map(<[Json]>::to_vec))
        .unwrap_or_default();
    let mut entry = Json::object();
    entry.set("wall_seconds", Json::Num((wall * 100.0).round() / 100.0));
    entry.set("report_fingerprint", Json::Str(format!("{:#018X}", report.stable_fingerprint())));
    entry.set("rows", Json::Num(report.rows.len() as f64));
    entries.push(entry);
    Json::Arr(entries)
}

/// Run-loop epochs/s of one preset at `threads` intra-run workers (MAC
/// colour-class shards, world-generation shards, protocol-dispatch shards
/// *and* protocol-upkeep shards), best of `repeats`.
/// Returns `(epochs_per_sec, epochs, fingerprint)`.
pub fn measure_throughput(spec: &ScenarioSpec, threads: usize, repeats: usize) -> (f64, u64, u64) {
    let scheme = spec.schemes[0];
    let mut eps = 0f64;
    let mut fp = 0u64;
    let mut epochs = 0u64;
    for _ in 0..repeats.max(1) {
        let mut run_cfg = spec.config(scheme, spec.seed);
        run_cfg.lmac.workers = threads;
        run_cfg.world_workers = threads;
        run_cfg.dispatch_workers = threads;
        run_cfg.upkeep_workers = threads;
        let engine = Engine::new(run_cfg);
        let t = Instant::now();
        let r = engine.run();
        eps = eps.max(r.epochs as f64 / t.elapsed().as_secs_f64());
        fp = r.stable_fingerprint();
        epochs = r.epochs;
    }
    (eps, epochs, fp)
}

/// Run the full matrix over `specs`, measure the large-preset throughput
/// axis, and write the artifact (with carried-forward history) to `out`.
/// Returns the assembled report.
///
/// The throughput axis runs each large preset at 1, 2 and 4 intra-run
/// workers; the run fingerprint must be identical across the axis —
/// worker counts may only change speed, and this asserts it.
pub fn run_and_record(specs: &[ScenarioSpec], cfg: &SweepConfig, out: &str) -> ScenarioReport {
    let t0 = Instant::now();
    let report = run_matrix_report(specs, cfg);
    let wall = t0.elapsed().as_secs_f64();

    print!("{}", report.summary_table().to_ascii());
    if !report.comparisons.is_empty() {
        println!("comparisons (scheme / flooding, same scenario):");
        for c in &report.comparisons {
            println!("  {:<18} {:<22} {:>7.3}", c.scenario, c.metric, c.ratio);
        }
    }
    println!(
        "report fingerprint: {:#018X}  ({} rows, {:.1}s wall)",
        report.stable_fingerprint(),
        report.rows.len(),
        wall
    );

    let mut doc = artifact(&report, cfg, wall);
    // Per-epoch throughput of the largest presets, measured on the run
    // loop only (setup excluded) — the trajectory the ROADMAP perf work is
    // gated on, and the baseline of the CI perf-floor tripwire.
    let mut throughput = Vec::new();
    for name in ["grid_2000", "stress_5000", "stress_20000"] {
        if !specs.iter().any(|s| s.name == name) {
            continue;
        }
        let spec = registry::preset(name).expect("registry preset").scaled(cfg.epoch_scale);
        let mut serial_fp = None;
        for threads in [1usize, 2, 4] {
            // Best of two runs: the run loop is deterministic, so repeats
            // only differ by scheduling noise — keep the cleaner sample.
            let (eps, epochs, fp) = measure_throughput(&spec, threads, 2);
            match serial_fp {
                None => serial_fp = Some(fp),
                Some(want) => {
                    assert_eq!(fp, want, "{name}: {threads} workers changed the run fingerprint")
                }
            }
            println!(
                "{name}: {eps:.0} epochs/s ({epochs} epochs, run loop only, {threads} threads)"
            );
            let mut o = Json::object();
            o.set("scenario", Json::Str(name.to_string()));
            o.set("threads", Json::Num(threads as f64));
            o.set("epochs", Json::Num(epochs as f64));
            o.set("epochs_per_sec", Json::Num(eps.round()));
            o.set("fingerprint", Json::Str(format!("{:#018X}", fp)));
            throughput.push(o);
        }
    }
    if !throughput.is_empty() {
        doc.set("throughput", Json::Arr(throughput));
    }
    // Carry the recorded trajectory forward: previous (wall, fingerprint)
    // pairs stay in the artifact so the scale history reads like BENCH_1.
    doc.set("history", history_with(out, &report, wall));
    std::fs::write(out, doc.render_pretty()).expect("write scenario matrix json");
    println!("wrote {out}");
    report
}

/// The `epochs_per_sec` recorded in `doc`'s throughput section for
/// `(scenario, threads)`, if present.
pub fn recorded_throughput(doc: &Json, scenario: &str, threads: usize) -> Option<f64> {
    doc.get("throughput")?.as_array()?.iter().find_map(|o| {
        let matches = o.get("scenario")?.as_str()? == scenario
            && o.get("threads")?.as_f64()? as usize == threads;
        if matches {
            o.get("epochs_per_sec")?.as_f64()
        } else {
            None
        }
    })
}
