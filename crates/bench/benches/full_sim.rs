//! End-to-end scenario throughput: epochs per second for full DirQ and
//! flooding simulations (the unit of cost for every figure in the paper).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dirq_core::{run_scenario, AtcConfig, DeltaPolicy, Protocol, ScenarioConfig};

fn scenario(protocol: Protocol, policy: DeltaPolicy, epochs: u64) -> ScenarioConfig {
    ScenarioConfig {
        protocol,
        delta_policy: policy,
        epochs,
        measure_from_epoch: 0,
        ..ScenarioConfig::paper(5)
    }
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_sim/200_epochs");
    group.sample_size(10);
    for (name, protocol, policy) in [
        ("dirq_fixed5", Protocol::Dirq, DeltaPolicy::Fixed(5.0)),
        ("dirq_atc", Protocol::Dirq, DeltaPolicy::Adaptive(AtcConfig::default())),
        ("flooding", Protocol::Flooding, DeltaPolicy::Fixed(5.0)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let r = run_scenario(scenario(protocol, policy, 200));
                black_box(r.metrics.total_cost())
            });
        });
    }
    group.finish();
}

fn bench_network_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_sim/network_size_100_epochs");
    group.sample_size(10);
    for n in [25usize, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // Scale the field with √n so node density (and therefore the
            // 2-hop degree the TDMA schedule must colour) stays constant.
            let side = 100.0 * (n as f64 / 50.0).sqrt();
            b.iter(|| {
                let r = run_scenario(ScenarioConfig {
                    n_nodes: n,
                    side,
                    epochs: 100,
                    measure_from_epoch: 0,
                    lmac: dirq_lmac::LmacConfig { slots_per_frame: 64, ..Default::default() },
                    ..ScenarioConfig::paper(6)
                });
                black_box(r.queries_injected)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_network_sizes);
criterion_main!(benches);
