//! Microbenchmarks of the query-routing decision: given a node's range
//! tables, which children does a range query descend to?

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dirq_core::{DeltaPolicy, DirqNode, NodeConfig};
use dirq_data::{QueryId, RangeQuery, SensorType};
use dirq_net::NodeId;

fn node_with_children(n: usize) -> DirqNode {
    let cfg = NodeConfig {
        delta_policy: DeltaPolicy::Fixed(5.0),
        reference_spans: vec![20.0],
        variability_alpha: 0.2,
        tx_threshold_factor: 1.0,
    };
    let mut node = DirqNode::new(NodeId(1), cfg);
    let _ = node.set_parent(Some(NodeId(0)));
    let _ = node.sample(SensorType(0), 20.0);
    for i in 0..n {
        let base = (i as f64) * 3.0;
        let _ = node.on_update(NodeId(i as u32 + 2), SensorType(0), base, base + 2.0);
    }
    node
}

fn bench_on_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing/on_query");
    for n in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut node = node_with_children(n);
            let mut qid = 0u64;
            b.iter(|| {
                qid += 1;
                let q =
                    RangeQuery::value(QueryId(qid), SensorType(0), 5.0, 5.0 + (qid % 40) as f64);
                black_box(node.on_query(black_box(&q)))
            });
        });
    }
    group.finish();
}

fn bench_cascaded_update(c: &mut Criterion) {
    // An update arriving from a child, possibly cascading to the parent:
    // the steady-state hot path of the whole protocol.
    let mut group = c.benchmark_group("routing/on_update");
    for n in [8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut node = node_with_children(n);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let child = NodeId((i % n as u64) as u32 + 2);
                let min = (i % 100) as f64 * 0.5;
                black_box(node.on_update(child, SensorType(0), min, min + 2.0))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_on_query, bench_cascaded_update);
criterion_main!(benches);
