//! Microbenchmarks of the DES kernel's pending-event set.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dirq_sim::{EventQueue, SimTime};

fn bench_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue/push_pop");
    for n in [1_000u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n as usize);
                // Pseudo-random but deterministic times.
                let mut s = 0x12345u64;
                for i in 0..n {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    q.push(SimTime(s % (n * 4)), i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_interleaved(c: &mut Criterion) {
    // The simulator's steady-state pattern: pop one, schedule a couple.
    c.bench_function("event_queue/interleaved_steady_state", |b| {
        let mut q = EventQueue::new();
        for i in 0..1024u64 {
            q.push(SimTime(i), i);
        }
        b.iter(|| {
            let (t, v) = q.pop().unwrap();
            q.push(SimTime(t.ticks() + 13), v);
            q.push(SimTime(t.ticks() + 29), v ^ 1);
            let _ = q.pop();
            black_box(q.len())
        });
    });
}

criterion_group!(benches, bench_push_pop, bench_interleaved);
criterion_main!(benches);
