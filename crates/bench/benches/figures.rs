//! Smoke-scale regeneration of **every figure and table** of the paper
//! under `cargo bench`: each harness function runs at miniature epoch
//! counts so the full evaluation pipeline (world → LMAC → DirQ → metrics →
//! tables) is exercised and timed. The real 20 000-epoch figures come from
//! the `fig5_accuracy`/`fig6_updates`/`fig7_overshoot`/`tab_analytic`/
//! `cost_ratio` binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dirq_bench::args::HarnessArgs;
use dirq_bench::experiments;

fn quick_args() -> HarnessArgs {
    HarnessArgs { epochs: 400, seed: 11, threads: 0 }
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig5_smoke", |b| {
        b.iter(|| black_box(experiments::fig5(&quick_args()).len()));
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig6_smoke", |b| {
        b.iter(|| {
            let (summary, series) = experiments::fig6(&quick_args());
            black_box((summary.len(), series.len()))
        });
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig7_smoke", |b| {
        b.iter(|| {
            let (summary, series) = experiments::fig7(&quick_args());
            black_box((summary.len(), series.len()))
        });
    });
    g.finish();
}

fn bench_tab_analytic(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("tab_analytic_smoke", |b| {
        b.iter(|| {
            let t = experiments::analytic_table();
            let v = experiments::analytic_validation(&quick_args());
            black_box((t.len(), v.len()))
        });
    });
    g.finish();
}

fn bench_cost_ratio(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("cost_ratio_smoke", |b| {
        b.iter(|| black_box(experiments::cost_ratio(&quick_args()).len()));
    });
    g.finish();
}

criterion_group!(benches, bench_fig5, bench_fig6, bench_fig7, bench_tab_analytic, bench_cost_ratio);
criterion_main!(benches);
