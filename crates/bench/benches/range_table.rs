//! Microbenchmarks of the Range Table — the per-node data structure every
//! sensor reading and child update touches (paper Section 4.1).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dirq_core::{RangeEntry, RangeTable};
use dirq_net::NodeId;

fn table_with_children(n: usize) -> RangeTable {
    let mut t = RangeTable::new();
    t.observe_own(20.0, 0.5);
    for i in 0..n {
        t.set_child(NodeId(i as u32 + 1), RangeEntry { min: i as f64, max: i as f64 + 2.0 });
    }
    t
}

fn bench_observe_own(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_table/observe_own");
    // Alternating in-window and escaping readings: the realistic mix.
    group.bench_function("mixed", |b| {
        let mut t = RangeTable::new();
        t.observe_own(20.0, 1.0);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let r = if i.is_multiple_of(4) { 20.0 + (i % 7) as f64 } else { 20.3 };
            black_box(t.observe_own(black_box(r), 1.0))
        });
    });
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_table/aggregate");
    for n in [1usize, 8, 64] {
        let t = table_with_children(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| black_box(t.aggregate()));
        });
    }
    group.finish();
}

fn bench_set_child(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_table/set_child");
    for n in [8usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut t = table_with_children(n);
            let mut i = 0u32;
            b.iter(|| {
                i += 1;
                let child = NodeId(i % n as u32 + 1);
                black_box(t.set_child(child, RangeEntry { min: i as f64, max: i as f64 + 1.0 }))
            });
        });
    }
    group.finish();
}

fn bench_pending_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_table/pending_update");
    for n in [8usize, 64] {
        let mut t = table_with_children(n);
        let agg = t.aggregate().unwrap();
        t.mark_transmitted(agg);
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| black_box(t.pending_update(0.5)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_observe_own,
    bench_aggregate,
    bench_set_child,
    bench_pending_update
);
criterion_main!(benches);
