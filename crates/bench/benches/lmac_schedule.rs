//! Microbenchmarks of the LMAC substrate: slot assignment and the
//! steady-state frame loop.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dirq_lmac::{LmacConfig, LmacNetwork};
use dirq_net::placement::{Placement, SinkPlacement};
use dirq_net::radio::UnitDisk;
use dirq_net::Topology;
use dirq_sim::RngFactory;

fn topo(n: usize) -> Topology {
    // Constant density and constant radio range: the field grows with √n,
    // so the 2-hop degree (what the TDMA schedule must colour) stays flat.
    let side = 100.0 * (n as f64 / 50.0).sqrt();
    let mut rng = RngFactory::new(1).stream("bench-topo");
    Topology::deploy_connected(
        n,
        &Placement::UniformRandom { side },
        SinkPlacement::Corner,
        &UnitDisk::new(28.0),
        &mut rng,
        500,
    )
    .expect("connected deployment")
}

fn bench_greedy_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("lmac/assign_slots_greedy");
    for n in [50usize, 200] {
        let t = topo(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| {
                let mut net: LmacNetwork<u32> = LmacNetwork::new(
                    LmacConfig { slots_per_frame: 64, ..Default::default() },
                    t.clone(),
                );
                net.assign_slots_greedy();
                black_box(net.all_converged())
            });
        });
    }
    group.finish();
}

fn bench_steady_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("lmac/advance_frame");
    for n in [50usize, 200] {
        let t = topo(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            let mut net: LmacNetwork<u32> = LmacNetwork::new(
                LmacConfig { slots_per_frame: 64, ..Default::default() },
                t.clone(),
            );
            net.assign_slots_greedy();
            let mut rng = RngFactory::new(2).stream("bench-mac");
            b.iter(|| {
                let inds = net.advance_frame(&mut rng);
                black_box(inds.len())
            });
        });
    }
    group.finish();
}

fn bench_join_convergence(c: &mut Criterion) {
    // Full distributed slot election from scratch.
    c.bench_function("lmac/join_convergence_50", |b| {
        let t = topo(50);
        b.iter(|| {
            let mut net: LmacNetwork<u32> = LmacNetwork::new(LmacConfig::default(), t.clone());
            let mut rng = RngFactory::new(3).stream("bench-join");
            let mut frames = 0;
            while !(net.all_converged() && net.schedule_conflicts().is_empty()) {
                net.advance_frame(&mut rng);
                frames += 1;
                assert!(frames < 200, "join failed to converge");
            }
            black_box(frames)
        });
    });
}

criterion_group!(benches, bench_greedy_assignment, bench_steady_frame, bench_join_convergence);
criterion_main!(benches);
