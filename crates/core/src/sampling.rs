//! Predictive sensor sampling — the paper's Section 8 future work.
//!
//! "A drawback of DirQ is that we assume that nodes are able to sample
//! sensors continuously to check if the thresholds have been exceeded.
//! This consumes a lot of energy. We are currently developing a
//! statistical prediction technique that can be used by DirQ to ensure
//! that sensor sampling costs are minimized."
//!
//! This module implements that technique: after each acquisition the node
//! updates two local estimators — the signed per-epoch **drift** and the
//! unsigned **volatility** of the signal — and then *skips* sampling for as
//! many epochs as the model predicts the reading will stay inside the
//! current `[THmin, THmax]` tuple (shrunk by a safety margin). The
//! trade-off is classic: more skipping saves sensor energy but delays the
//! detection of threshold escapes, adding staleness to the advertised
//! ranges. The `ablations` binary quantifies the trade-off.

use dirq_sim::stats::Ewma;

/// When nodes acquire sensor readings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SamplingStrategy {
    /// Sample every sensor every epoch (the paper's stated assumption).
    EveryEpoch,
    /// Model-driven skipping (the paper's future-work proposal).
    Predictive(PredictiveConfig),
}

/// Tuning of the predictive sampler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredictiveConfig {
    /// Fraction of the distance-to-threshold treated as unusable margin
    /// (0.25 = predict escape when within 75 % of the window edge).
    pub safety_margin: f64,
    /// Hard cap on consecutive skipped epochs (bounds staleness even when
    /// the model believes the signal is static).
    pub max_skip: u64,
    /// EWMA smoothing for the drift/volatility estimators.
    pub alpha: f64,
    /// Multiplier on the volatility term when projecting movement
    /// (higher = more conservative).
    pub volatility_factor: f64,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig { safety_margin: 0.25, max_skip: 8, alpha: 0.25, volatility_factor: 2.0 }
    }
}

/// Per-(node, sensor-type) prediction state.
#[derive(Clone, Debug)]
pub struct Sampler {
    cfg: PredictiveConfig,
    last_value: Option<f64>,
    drift: Ewma,
    volatility: Ewma,
    skip_remaining: u64,
    samples_taken: u64,
    samples_skipped: u64,
}

impl Sampler {
    /// Fresh sampler.
    pub fn new(cfg: PredictiveConfig) -> Self {
        assert!((0.0..1.0).contains(&cfg.safety_margin), "safety margin must be in [0, 1)");
        assert!(cfg.volatility_factor >= 0.0, "volatility factor must be non-negative");
        Sampler {
            drift: Ewma::new(cfg.alpha),
            volatility: Ewma::new(cfg.alpha),
            last_value: None,
            skip_remaining: 0,
            samples_taken: 0,
            samples_skipped: 0,
            cfg,
        }
    }

    /// Whether the sensor should be read this epoch. When `false`, the
    /// skip budget is consumed.
    pub fn should_sample(&mut self) -> bool {
        if self.skip_remaining > 0 {
            self.skip_remaining -= 1;
            self.samples_skipped += 1;
            false
        } else {
            true
        }
    }

    /// Record an acquired reading together with the tuple bounds currently
    /// advertised (`None` when the node has no tuple yet — e.g. first
    /// sample). Decides how many future epochs may be skipped.
    pub fn on_sampled(&mut self, value: f64, window: Option<(f64, f64)>) {
        self.samples_taken += 1;
        if let Some(prev) = self.last_value {
            let delta = value - prev;
            self.drift.observe(delta);
            self.volatility.observe(delta.abs());
        }
        self.last_value = Some(value);

        let Some((lo, hi)) = window else {
            self.skip_remaining = 0;
            return;
        };
        let (Some(drift), Some(vol)) = (self.drift.value(), self.volatility.value()) else {
            self.skip_remaining = 0;
            return;
        };
        // Usable distance to the nearer window edge after the margin.
        let usable = (1.0 - self.cfg.safety_margin) * (value - lo).min(hi - value);
        if usable <= 0.0 {
            self.skip_remaining = 0;
            return;
        }
        // Projected movement per epoch: |drift| plus a volatility cushion.
        let per_epoch = drift.abs() + self.cfg.volatility_factor * vol;
        let skips = if per_epoch <= f64::EPSILON {
            self.cfg.max_skip
        } else {
            ((usable / per_epoch).floor() as u64).saturating_sub(1).min(self.cfg.max_skip)
        };
        self.skip_remaining = skips;
    }

    /// Sensor acquisitions performed.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Acquisitions avoided by prediction.
    pub fn samples_skipped(&self) -> u64 {
        self.samples_skipped
    }

    /// Fraction of epochs in which sampling was skipped.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.samples_taken + self.samples_skipped;
        if total == 0 {
            0.0
        } else {
            self.samples_skipped as f64 / total as f64
        }
    }

    /// Write the prediction state to `w` (the tuning config is
    /// construction-time and not captured).
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.opt_f64(self.last_value);
        self.drift.snap(w);
        self.volatility.snap(w);
        w.u64(self.skip_remaining);
        w.u64(self.samples_taken);
        w.u64(self.samples_skipped);
    }

    /// Overlay state captured by [`Sampler::snap`] onto a sampler built
    /// with the same config.
    pub fn restore(&mut self, r: &mut dirq_sim::SnapReader<'_>) -> Result<(), dirq_sim::SnapError> {
        self.last_value = r.opt_f64()?;
        self.drift = Ewma::unsnap(r)?;
        self.volatility = Ewma::unsnap(r)?;
        self.skip_remaining = r.u64()?;
        self.samples_taken = r.u64()?;
        self.samples_skipped = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PredictiveConfig {
        PredictiveConfig::default()
    }

    #[test]
    fn first_samples_never_skip() {
        let mut s = Sampler::new(cfg());
        assert!(s.should_sample());
        s.on_sampled(20.0, Some((19.0, 21.0)));
        // Only one observation: no drift estimate yet → no skipping.
        assert!(s.should_sample());
    }

    #[test]
    fn static_signal_earns_max_skip() {
        let mut s = Sampler::new(cfg());
        for _ in 0..10 {
            let _ = s.should_sample();
            s.on_sampled(20.0, Some((19.0, 21.0)));
        }
        // Zero drift and volatility: next decision skips the cap.
        let mut skipped = 0;
        while !s.should_sample() {
            skipped += 1;
        }
        assert_eq!(skipped, cfg().max_skip);
    }

    #[test]
    fn fast_drift_prevents_skipping() {
        let mut s = Sampler::new(cfg());
        let mut v = 20.0;
        for _ in 0..10 {
            s.on_sampled(v, Some((v - 0.5, v + 0.5)));
            v += 0.4; // moves ~80% of the window per epoch
        }
        assert!(s.should_sample(), "near-edge fast drift must sample immediately");
    }

    #[test]
    fn near_edge_readings_sample_immediately() {
        let mut s = Sampler::new(cfg());
        s.on_sampled(20.0, Some((19.0, 21.0)));
        s.on_sampled(20.001, Some((19.0, 21.0)));
        // Reading essentially on the boundary of the usable zone.
        s.on_sampled(20.95, Some((19.0, 21.0)));
        assert!(s.should_sample());
    }

    #[test]
    fn missing_window_disables_skipping() {
        let mut s = Sampler::new(cfg());
        s.on_sampled(20.0, None);
        s.on_sampled(20.0, None);
        assert!(s.should_sample());
    }

    #[test]
    fn counters_track_activity() {
        let mut s = Sampler::new(cfg());
        for _ in 0..5 {
            s.on_sampled(10.0, Some((0.0, 20.0)));
        }
        let mut sampled = 0;
        let mut skipped = 0;
        for _ in 0..20 {
            if s.should_sample() {
                sampled += 1;
                s.on_sampled(10.0, Some((0.0, 20.0)));
            } else {
                skipped += 1;
            }
        }
        assert_eq!(s.samples_taken(), 5 + sampled);
        assert_eq!(s.samples_skipped(), skipped);
        assert!(skipped > 0, "a static wide window must earn skips");
        assert!(s.skip_ratio() > 0.0);
    }

    #[test]
    #[should_panic(expected = "safety margin")]
    fn invalid_margin_rejected() {
        let _ = Sampler::new(PredictiveConfig { safety_margin: 1.0, ..cfg() });
    }
}
