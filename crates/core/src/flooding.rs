//! The flooding baseline (Section 5.1).
//!
//! "When performing a flooding operation, a node transmits a message to its
//! neighbours using a broadcast operation … this behaviour is followed by
//! all nodes in the network no matter where the nodes may be located and is
//! carried out regardless of the number of neighbours a node has."
//!
//! Each node therefore rebroadcasts every query exactly once — even a node
//! whose only neighbour is the one it heard the query from. Total cost on N
//! nodes with L links: `N` transmissions + `2L` receptions (Eq. 3).

use dirq_data::QueryId;

/// Per-node flooding state: which query ids this node has already
/// rebroadcast.
#[derive(Clone, Debug, Default)]
pub struct FloodingNode {
    seen: Vec<QueryId>,
}

/// Bound on remembered query ids (queries are one-shot and arrive every 20
/// epochs; 64 is ample).
const SEEN_CAP: usize = 64;

impl FloodingNode {
    /// Fresh state.
    pub fn new() -> Self {
        FloodingNode::default()
    }

    /// Process a received (or injected) query. Returns `true` exactly once
    /// per query id: the caller must then rebroadcast.
    pub fn should_rebroadcast(&mut self, id: QueryId) -> bool {
        if self.seen.contains(&id) {
            return false;
        }
        if self.seen.len() == SEEN_CAP {
            self.seen.remove(0);
        }
        self.seen.push(id);
        true
    }

    /// Number of distinct queries seen.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// Write the duplicate-suppression memory to `w`.
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.len_of(self.seen.len());
        for q in &self.seen {
            w.u64(q.0);
        }
    }

    /// Overlay memory captured by [`FloodingNode::snap`].
    pub fn restore(&mut self, r: &mut dirq_sim::SnapReader<'_>) -> Result<(), dirq_sim::SnapError> {
        let n = r.seq_len(8)?;
        self.seen = (0..n).map(|_| r.u64().map(QueryId)).collect::<Result<_, _>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebroadcasts_exactly_once() {
        let mut n = FloodingNode::new();
        assert!(n.should_rebroadcast(QueryId(1)));
        assert!(!n.should_rebroadcast(QueryId(1)));
        assert!(n.should_rebroadcast(QueryId(2)));
        assert!(!n.should_rebroadcast(QueryId(2)));
        assert_eq!(n.seen_count(), 2);
    }

    #[test]
    fn memory_bounded() {
        let mut n = FloodingNode::new();
        for i in 0..200 {
            assert!(n.should_rebroadcast(QueryId(i)));
        }
        assert_eq!(n.seen_count(), SEEN_CAP);
        // Very old ids have been forgotten (acceptable: queries are
        // one-shot and short-lived).
        assert!(n.should_rebroadcast(QueryId(0)));
    }
}
