//! The in-flight query store.
//!
//! Every injected query is scored `completion_window` epochs after
//! injection; until then it sits here accumulating tx/rx tallies and
//! per-node reception marks. The store replaces the engine's original
//! `Vec<PendingQuery>` — which paid a linear scan per tally and a
//! swap_remove sweep per epoch — with three indexes:
//!
//! * a **slab** of entries with a free list, so entries never move;
//! * a **dense by-id map** (query ids are assigned sequentially by
//!   [`dirq_data::QueryGenerator`]), making [`PendingSet::get_mut`] O(1)
//!   — the single accessor behind every tally site;
//! * an **epoch-bucketed expiry ring**: an entry injected at epoch `e`
//!   lands in bucket `(e + window) % ring_len`, so the per-epoch expiry
//!   check is one bucket probe instead of a scan over the pending set.
//!
//! Determinism contract: the original vec's `swap_remove` sweep fixed
//! the order in which simultaneously-expiring and leftover queries are
//! finalised, and that order feeds the order-sensitive metrics
//! fingerprint. The store replicates it exactly via `order` (the
//! vec-equivalent sequence, mutated by the same `swap_remove` steps);
//! the property tests below pin ring mode, linear mode and the legacy
//! vec model against each other.

use dirq_data::workload::GroundTruth;
use dirq_data::RangeQuery;

pub(crate) use dirq_data::QueryId;

/// An in-flight query being scored.
pub(crate) struct PendingQuery {
    pub(crate) query: RangeQuery,
    pub(crate) epoch: u64,
    pub(crate) truth: GroundTruth,
    pub(crate) received: Vec<bool>,
    pub(crate) tx: u64,
    pub(crate) rx: u64,
}

/// Windows past this many epochs skip the ring (its length is
/// `window + 1` buckets) and fall back to the legacy linear sweep. Every
/// preset's completion window is well below; the cap only guards exotic
/// hand-built configurations.
const MAX_RING_WINDOW: u64 = 4_096;

/// Sentinel in the by-id map: no pending entry for this id.
const NO_SLOT: u32 = u32::MAX;

/// Id-indexed slab of in-flight queries with an epoch-bucketed expiry
/// ring. See the module docs for the determinism contract.
///
/// [`PendingSet::expire_due`] must be called once per epoch in
/// increasing epoch order (the engine's housekeeping does) — the ring
/// visits each due bucket exactly once.
pub(crate) struct PendingSet {
    window: u64,
    /// Entry slab; `None` slots are free.
    slots: Vec<Option<PendingQuery>>,
    /// Free slot indices.
    free: Vec<u32>,
    /// `by_id[query.id]` → slot ([`NO_SLOT`] = absent). Dense: the
    /// generator assigns ids sequentially from 0.
    by_id: Vec<u32>,
    /// Slot indices in the legacy vec's order (including its historical
    /// `swap_remove` shuffles) — the finalisation order contract.
    order: Vec<u32>,
    /// `pos_in_order[slot]` → position in `order`.
    pos_in_order: Vec<u32>,
    /// `ring[due_epoch % ring.len()]` → slots due at that epoch; `None`
    /// when `window` exceeds [`MAX_RING_WINDOW`] (linear-sweep mode).
    ring: Option<Vec<Vec<u32>>>,
}

impl PendingSet {
    pub(crate) fn new(window: u64) -> Self {
        let ring = (window < MAX_RING_WINDOW).then(|| (0..=window).map(|_| Vec::new()).collect());
        PendingSet {
            window,
            slots: Vec::new(),
            free: Vec::new(),
            by_id: Vec::new(),
            order: Vec::new(),
            pos_in_order: Vec::new(),
            ring,
        }
    }

    /// Linear-sweep mode regardless of window size — the property tests
    /// pin it bit-equal to ring mode.
    #[cfg(test)]
    fn with_linear_sweep(window: u64) -> Self {
        PendingSet { ring: None, ..PendingSet::new(window) }
    }

    /// Entries currently in flight.
    #[cfg(test)]
    fn len(&self) -> usize {
        self.order.len()
    }

    /// Track a freshly injected query. At most one insert per epoch (the
    /// engine injects at most one query per epoch; the ring's intra-bucket
    /// order relies on it only when several entries share an epoch, where
    /// the sweep fallback keeps the legacy order anyway).
    pub(crate) fn insert(&mut self, p: PendingQuery) {
        let id = p.query.id.0 as usize;
        let due = p.epoch.saturating_add(self.window);
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(p);
                s
            }
            None => {
                self.slots.push(Some(p));
                (self.slots.len() - 1) as u32
            }
        };
        if id >= self.by_id.len() {
            self.by_id.resize(id + 1, NO_SLOT);
        }
        debug_assert_eq!(self.by_id[id], NO_SLOT, "duplicate pending query id");
        self.by_id[id] = slot;
        if self.pos_in_order.len() <= slot as usize {
            self.pos_in_order.resize(slot as usize + 1, 0);
        }
        self.pos_in_order[slot as usize] = self.order.len() as u32;
        self.order.push(slot);
        if let Some(ring) = &mut self.ring {
            let bucket = (due % ring.len() as u64) as usize;
            ring[bucket].push(slot);
        }
    }

    /// The single lookup accessor: the entry for `id`, if still pending.
    pub(crate) fn get_mut(&mut self, id: QueryId) -> Option<&mut PendingQuery> {
        let slot = *self.by_id.get(id.0 as usize)?;
        if slot == NO_SLOT {
            return None;
        }
        self.slots[slot as usize].as_mut()
    }

    /// Remove every entry whose completion window elapsed at `epoch`,
    /// pushing them onto `out` in the legacy sweep's finalisation order.
    pub(crate) fn expire_due(&mut self, epoch: u64, out: &mut Vec<PendingQuery>) {
        if let Some(ring) = &mut self.ring {
            let bucket = (epoch % ring.len() as u64) as usize;
            match ring[bucket].len() {
                0 => return,
                1 => {
                    // The common case: one entry due this epoch. Removing
                    // it directly matches the legacy sweep (the swapped-in
                    // tail entry it would re-examine is not due).
                    let slot = ring[bucket].pop().expect("checked length") as usize;
                    if self.slots[slot].is_some() {
                        let pos = self.pos_in_order[slot] as usize;
                        out.push(self.remove_order_pos(pos));
                    }
                    return;
                }
                // Several entries share the due epoch: drain the bucket
                // and run the exact legacy scan so the finalisation order
                // (including its swap_remove re-checks) is preserved.
                _ => ring[bucket].clear(),
            }
        }
        self.sweep_linear(epoch, out);
    }

    /// Drain every remaining entry in the legacy vec order (end-of-run
    /// leftover finalisation).
    pub(crate) fn take_all_in_order(&mut self) -> Vec<PendingQuery> {
        let order = std::mem::take(&mut self.order);
        let mut out = Vec::with_capacity(order.len());
        for slot in order {
            let p = self.slots[slot as usize].take().expect("ordered slots are occupied");
            self.by_id[p.query.id.0 as usize] = NO_SLOT;
            out.push(p);
        }
        self.slots.clear();
        self.free.clear();
        self.pos_in_order.clear();
        if let Some(ring) = &mut self.ring {
            for bucket in ring {
                bucket.clear();
            }
        }
        out
    }

    /// Entries in the legacy vec order (test observability).
    pub(crate) fn iter_in_order(&self) -> impl Iterator<Item = &PendingQuery> {
        self.order
            .iter()
            .map(|&slot| self.slots[slot as usize].as_ref().expect("ordered slots are occupied"))
    }

    /// Write every in-flight entry (in the legacy vec order) to `w`. The
    /// window is construction-time config and not captured.
    pub(crate) fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.tag(b"PEND");
        w.len_of(self.order.len());
        for p in self.iter_in_order() {
            p.query.snap(w);
            w.u64(p.epoch);
            p.truth.snap(w);
            w.bools(&p.received);
            w.u64(p.tx);
            w.u64(p.rx);
        }
    }

    /// Rebuild the in-flight set captured by [`PendingSet::snap`] by
    /// re-inserting each entry in the captured order. Re-insertion
    /// recomputes each entry's due epoch from the (identical) window, and
    /// `insert` appends to `order`, so the finalisation-order contract is
    /// reproduced exactly. The set must be empty (freshly constructed).
    pub(crate) fn restore(
        &mut self,
        r: &mut dirq_sim::SnapReader<'_>,
    ) -> Result<(), dirq_sim::SnapError> {
        r.tag(b"PEND")?;
        let pos = r.position();
        if !self.order.is_empty() {
            return Err(dirq_sim::SnapError::Malformed {
                pos,
                what: "pending set not empty before restore",
            });
        }
        let n = r.seq_len(1)?;
        for _ in 0..n {
            let query = RangeQuery::unsnap(r)?;
            let epoch = r.u64()?;
            let truth = GroundTruth::unsnap(r)?;
            let received = r.bools()?;
            let tx = r.u64()?;
            let rx = r.u64()?;
            self.insert(PendingQuery { query, epoch, truth, received, tx, rx });
        }
        Ok(())
    }

    /// The original expiry loop, verbatim over `order`: scan ascending,
    /// `swap_remove` due entries and re-examine the swapped-in tail.
    fn sweep_linear(&mut self, epoch: u64, out: &mut Vec<PendingQuery>) {
        let mut i = 0;
        while i < self.order.len() {
            let slot = self.order[i] as usize;
            let due = {
                let p = self.slots[slot].as_ref().expect("ordered slots are occupied");
                epoch.saturating_sub(p.epoch) >= self.window
            };
            if due {
                out.push(self.remove_order_pos(i));
            } else {
                i += 1;
            }
        }
    }

    /// Remove the entry at `order[pos]` with the legacy `swap_remove`
    /// step, fixing up the swapped entry's position.
    fn remove_order_pos(&mut self, pos: usize) -> PendingQuery {
        let slot = self.order.swap_remove(pos);
        if pos < self.order.len() {
            self.pos_in_order[self.order[pos] as usize] = pos as u32;
        }
        let p = self.slots[slot as usize].take().expect("ordered slots are occupied");
        self.by_id[p.query.id.0 as usize] = NO_SLOT;
        self.free.push(slot);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirq_data::SensorType;
    use proptest::prelude::*;

    fn entry(id: u64, epoch: u64) -> PendingQuery {
        PendingQuery {
            query: RangeQuery::value(QueryId(id), SensorType(0), 0.0, 1.0),
            epoch,
            truth: GroundTruth { sources: Vec::new(), involved: Vec::new(), involved_count: 0 },
            received: Vec::new(),
            tx: 0,
            rx: 0,
        }
    }

    /// The engine's original structure, verbatim: a plain vec with the
    /// `swap_remove` expiry sweep. The reference model for the order
    /// contract.
    struct LegacyVec {
        window: u64,
        v: Vec<(u64, u64)>, // (id, inject epoch)
    }

    impl LegacyVec {
        fn expire(&mut self, epoch: u64) -> Vec<u64> {
            let mut out = Vec::new();
            let mut i = 0;
            while i < self.v.len() {
                if epoch.saturating_sub(self.v[i].1) >= self.window {
                    out.push(self.v.swap_remove(i).0);
                } else {
                    i += 1;
                }
            }
            out
        }
    }

    fn expired_ids(set: &mut PendingSet, epoch: u64) -> Vec<u64> {
        let mut buf = Vec::new();
        set.expire_due(epoch, &mut buf);
        buf.into_iter().map(|p| p.query.id.0).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        /// Ring mode, linear mode and the legacy vec expire the same ids
        /// in the same order at every epoch, and leave the same leftover
        /// order — under arbitrary injection schedules (including several
        /// inserts per epoch) and arbitrary windows.
        #[test]
        fn ring_matches_linear_matches_legacy(
            window in 0u64..130,
            epochs in 1u64..160,
            inserts_per_epoch in proptest::collection::vec(0usize..3, 1..160),
        ) {
            let mut ring = PendingSet::new(window);
            let mut linear = PendingSet::with_linear_sweep(window);
            let mut legacy = LegacyVec { window, v: Vec::new() };
            let mut next_id = 0u64;
            for epoch in 0..epochs {
                let k = inserts_per_epoch[(epoch % inserts_per_epoch.len() as u64) as usize];
                for _ in 0..k {
                    ring.insert(entry(next_id, epoch));
                    linear.insert(entry(next_id, epoch));
                    legacy.v.push((next_id, epoch));
                    next_id += 1;
                }
                let want = legacy.expire(epoch);
                prop_assert_eq!(&expired_ids(&mut ring, epoch), &want, "ring diverged at {}", epoch);
                prop_assert_eq!(&expired_ids(&mut linear, epoch), &want, "linear diverged at {}", epoch);
                prop_assert_eq!(ring.len(), legacy.v.len());
            }
            // Leftovers drain in the legacy vec's (shuffled) order.
            let want: Vec<u64> = legacy.v.iter().map(|&(id, _)| id).collect();
            let ring_left: Vec<u64> = ring.take_all_in_order().iter().map(|p| p.query.id.0).collect();
            let linear_left: Vec<u64> =
                linear.take_all_in_order().iter().map(|p| p.query.id.0).collect();
            prop_assert_eq!(&ring_left, &want, "ring leftover order diverged");
            prop_assert_eq!(&linear_left, &want, "linear leftover order diverged");
            prop_assert_eq!(ring.len(), 0);
        }

        /// The by-id accessor finds exactly the live entries.
        #[test]
        fn get_mut_tracks_liveness(window in 1u64..40, epochs in 1u64..100) {
            let mut set = PendingSet::new(window);
            let mut live: Vec<u64> = Vec::new();
            let mut buf = Vec::new();
            for epoch in 0..epochs {
                if epoch % 3 == 0 {
                    set.insert(entry(epoch, epoch));
                    live.push(epoch);
                }
                buf.clear();
                set.expire_due(epoch, &mut buf);
                for p in &buf {
                    live.retain(|&id| id != p.query.id.0);
                }
                for id in 0..epochs {
                    let found = set.get_mut(QueryId(id)).is_some();
                    prop_assert_eq!(found, live.contains(&id), "id {} at epoch {}", id, epoch);
                }
            }
        }
    }

    #[test]
    fn huge_window_falls_back_to_linear_sweep() {
        let mut set = PendingSet::new(u64::MAX);
        assert!(set.ring.is_none());
        set.insert(entry(0, 5));
        let mut buf = Vec::new();
        set.expire_due(6, &mut buf);
        assert!(buf.is_empty(), "nothing expires under an unbounded window");
        assert_eq!(set.get_mut(QueryId(0)).map(|p| p.epoch), Some(5));
    }
}
