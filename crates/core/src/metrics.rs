//! Experiment measurements.
//!
//! Everything the paper's evaluation plots is collected here:
//!
//! * per-query outcomes (Fig. 5's four percentage series, Fig. 7's
//!   overshoot),
//! * the update-message time series in 100-epoch buckets (Fig. 6),
//! * cost tallies per message category (the Section 5 comparison and the
//!   45–55 %-of-flooding headline).

use dirq_data::{QueryId, SensorType};
use dirq_sim::stats::{TimeSeries, Welford};
use dirq_sim::SimTime;

use crate::messages::MessageCategory;

/// Final accounting for one query.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Query id.
    pub id: QueryId,
    /// Epoch at which the query was injected.
    pub epoch: u64,
    /// Sensor type queried.
    pub stype: SensorType,
    /// Ground truth: nodes that should receive the query (sources +
    /// forwarders; root excluded).
    pub should_receive: usize,
    /// Ground truth: true source nodes (reading inside the window).
    pub true_sources: usize,
    /// Nodes that actually received the query.
    pub received: usize,
    /// Received ∧ should-receive.
    pub received_should: usize,
    /// Received ∧ ¬should-receive (wrongly reached).
    pub received_should_not: usize,
    /// True sources actually reached.
    pub sources_reached: usize,
    /// Network size at injection (percentage denominator).
    pub n_nodes: usize,
}

impl QueryOutcome {
    /// The paper's overshoot: how far reception exceeded need, as a
    /// percentage of need. Negative values mean the query missed nodes.
    pub fn overshoot_pct(&self) -> f64 {
        if self.should_receive == 0 {
            return 0.0;
        }
        (self.received as f64 - self.should_receive as f64) / self.should_receive as f64 * 100.0
    }

    /// Overshoot in *percentage points of network size*:
    /// `pct_received − pct_should`. The paper's Fig. 7 y-axis ("Overshoot
    /// (%)") is ambiguous between this and [`QueryOutcome::overshoot_pct`];
    /// the harness reports both.
    pub fn overshoot_points(&self) -> f64 {
        self.pct_received() - self.pct_should()
    }

    /// Fraction of true sources reached (recall).
    pub fn source_recall(&self) -> f64 {
        if self.true_sources == 0 {
            1.0
        } else {
            self.sources_reached as f64 / self.true_sources as f64
        }
    }

    /// Fig. 5 series, as percentages of the network.
    pub fn pct_should(&self) -> f64 {
        100.0 * self.should_receive as f64 / self.n_nodes as f64
    }
    /// Percentage of nodes that received the query.
    pub fn pct_received(&self) -> f64 {
        100.0 * self.received as f64 / self.n_nodes as f64
    }
    /// Percentage of true source nodes.
    pub fn pct_sources(&self) -> f64 {
        100.0 * self.true_sources as f64 / self.n_nodes as f64
    }
    /// Percentage of nodes wrongly reached.
    pub fn pct_should_not(&self) -> f64 {
        100.0 * self.received_should_not as f64 / self.n_nodes as f64
    }
}

/// Per-category transmission/reception tallies (unit cost model).
#[derive(Clone, Copy, Debug, Default)]
pub struct CategoryCost {
    /// Messages transmitted.
    pub tx: u64,
    /// Intended receptions.
    pub rx: u64,
}

impl CategoryCost {
    /// Total cost (1 unit per tx + 1 per rx).
    pub fn cost(&self) -> f64 {
        (self.tx + self.rx) as f64
    }
}

/// Run-wide metrics collector.
#[derive(Clone, Debug)]
pub struct Metrics {
    /// Finalised per-query outcomes, in injection order.
    pub outcomes: Vec<QueryOutcome>,
    /// Update/Retract transmissions bucketed per 100 epochs (Fig. 6).
    pub updates_per_bucket: TimeSeries,
    /// Overshoot aggregate across finalised queries.
    pub overshoot: Welford,
    /// Query-category cost.
    pub query_cost: CategoryCost,
    /// Update-category cost.
    pub update_cost: CategoryCost,
    /// Control-category cost (EHr, Attach).
    pub control_cost: CategoryCost,
    /// Epoch from which aggregates (overshoot, costs) are collected;
    /// earlier epochs are warm-up.
    pub measure_from_epoch: u64,
}

/// Fig. 6 bucket width in epochs.
pub const UPDATE_BUCKET_EPOCHS: u64 = 100;

impl Metrics {
    /// Fresh collector.
    pub fn new(measure_from_epoch: u64) -> Self {
        Metrics {
            outcomes: Vec::new(),
            updates_per_bucket: TimeSeries::new(UPDATE_BUCKET_EPOCHS),
            overshoot: Welford::new(),
            query_cost: CategoryCost::default(),
            update_cost: CategoryCost::default(),
            control_cost: CategoryCost::default(),
            measure_from_epoch,
        }
    }

    /// Record one data-message transmission of `category` at `epoch`.
    pub fn on_tx(&mut self, category: MessageCategory, epoch: u64) {
        if category == MessageCategory::Update {
            self.updates_per_bucket.record_event(SimTime(epoch));
        }
        if epoch < self.measure_from_epoch {
            return;
        }
        self.category_mut(category).tx += 1;
    }

    /// Record one intended reception of `category` at `epoch`.
    pub fn on_rx(&mut self, category: MessageCategory, epoch: u64) {
        if epoch < self.measure_from_epoch {
            return;
        }
        self.category_mut(category).rx += 1;
    }

    /// Record a finalised query outcome.
    pub fn on_query_done(&mut self, outcome: QueryOutcome) {
        if outcome.epoch >= self.measure_from_epoch {
            self.overshoot.observe(outcome.overshoot_pct());
        }
        self.outcomes.push(outcome);
    }

    fn category_mut(&mut self, c: MessageCategory) -> &mut CategoryCost {
        match c {
            MessageCategory::Query => &mut self.query_cost,
            MessageCategory::Update => &mut self.update_cost,
            MessageCategory::Control => &mut self.control_cost,
        }
    }

    /// Total DirQ cost across categories (`CTD = CQD + CUD + control`).
    pub fn total_cost(&self) -> f64 {
        self.query_cost.cost() + self.update_cost.cost() + self.control_cost.cost()
    }

    /// Number of finalised queries inside the measurement window.
    pub fn measured_queries(&self) -> usize {
        self.outcomes.iter().filter(|o| o.epoch >= self.measure_from_epoch).count()
    }

    /// Order-sensitive FNV-1a fingerprint over every deterministic field.
    ///
    /// Two runs with the same seed and code must produce equal
    /// fingerprints; the golden determinism test pins this value across
    /// refactors of the hot path.
    pub fn stable_fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.measure_from_epoch);
        for c in [&self.query_cost, &self.update_cost, &self.control_cost] {
            h.u64(c.tx);
            h.u64(c.rx);
        }
        h.u64(self.outcomes.len() as u64);
        for o in &self.outcomes {
            h.u64(o.id.0);
            h.u64(o.epoch);
            h.u64(o.stype.index() as u64);
            h.u64(o.should_receive as u64);
            h.u64(o.true_sources as u64);
            h.u64(o.received as u64);
            h.u64(o.received_should as u64);
            h.u64(o.received_should_not as u64);
            h.u64(o.sources_reached as u64);
            h.u64(o.n_nodes as u64);
        }
        h.finish()
    }

    /// Write every collected measurement to `w`.
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.tag(b"METR");
        w.u64(self.measure_from_epoch);
        for c in [&self.query_cost, &self.update_cost, &self.control_cost] {
            w.u64(c.tx);
            w.u64(c.rx);
        }
        self.updates_per_bucket.snap(w);
        self.overshoot.snap(w);
        w.len_of(self.outcomes.len());
        for o in &self.outcomes {
            w.u64(o.id.0);
            w.u64(o.epoch);
            w.u8(o.stype.0);
            for v in [
                o.should_receive,
                o.true_sources,
                o.received,
                o.received_should,
                o.received_should_not,
                o.sources_reached,
                o.n_nodes,
            ] {
                w.len_of(v);
            }
        }
    }

    /// Rebuild a collector captured by [`Metrics::snap`].
    pub fn unsnap(r: &mut dirq_sim::SnapReader<'_>) -> Result<Self, dirq_sim::SnapError> {
        r.tag(b"METR")?;
        let measure_from_epoch = r.u64()?;
        let mut costs = [CategoryCost::default(); 3];
        for c in &mut costs {
            c.tx = r.u64()?;
            c.rx = r.u64()?;
        }
        let updates_per_bucket = TimeSeries::unsnap(r)?;
        let overshoot = Welford::unsnap(r)?;
        let n = r.seq_len(8 + 8 + 1 + 7 * 8)?;
        let mut outcomes = Vec::with_capacity(n);
        for _ in 0..n {
            outcomes.push(QueryOutcome {
                id: QueryId(r.u64()?),
                epoch: r.u64()?,
                stype: SensorType(r.u8()?),
                should_receive: r.u64()? as usize,
                true_sources: r.u64()? as usize,
                received: r.u64()? as usize,
                received_should: r.u64()? as usize,
                received_should_not: r.u64()? as usize,
                sources_reached: r.u64()? as usize,
                n_nodes: r.u64()? as usize,
            });
        }
        Ok(Metrics {
            outcomes,
            updates_per_bucket,
            overshoot,
            query_cost: costs[0],
            update_cost: costs[1],
            control_cost: costs[2],
            measure_from_epoch,
        })
    }

    /// Mean of a per-outcome statistic over the measurement window.
    pub fn mean_over_queries(&self, f: impl Fn(&QueryOutcome) -> f64) -> Option<f64> {
        let measured: Vec<f64> =
            self.outcomes.iter().filter(|o| o.epoch >= self.measure_from_epoch).map(f).collect();
        if measured.is_empty() {
            None
        } else {
            Some(measured.iter().sum::<f64>() / measured.len() as f64)
        }
    }
}

/// The workspace-wide FNV-1a accumulator (same algorithm as the private
/// hasher this module used to carry, so recorded fingerprints are stable).
pub(crate) use dirq_sim::fingerprint::Fnv;

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(epoch: u64, should: usize, received: usize, wrong: usize) -> QueryOutcome {
        QueryOutcome {
            id: QueryId(epoch),
            epoch,
            stype: SensorType(0),
            should_receive: should,
            true_sources: should / 2,
            received,
            received_should: received - wrong,
            received_should_not: wrong,
            sources_reached: should / 2,
            n_nodes: 50,
        }
    }

    #[test]
    fn overshoot_computation() {
        let o = outcome(100, 20, 22, 2);
        assert!((o.overshoot_pct() - 10.0).abs() < 1e-12);
        assert_eq!(o.source_recall(), 1.0);
        assert!((o.pct_should() - 40.0).abs() < 1e-12);
        assert!((o.pct_received() - 44.0).abs() < 1e-12);
        assert!((o.pct_should_not() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn undershoot_is_negative() {
        let o = outcome(100, 20, 15, 0);
        assert!((o.overshoot_pct() + 25.0).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_has_zero_overshoot() {
        let o = outcome(100, 0, 0, 0);
        assert_eq!(o.overshoot_pct(), 0.0);
        assert_eq!(o.source_recall(), 1.0);
    }

    #[test]
    fn update_buckets_fill() {
        let mut m = Metrics::new(0);
        m.on_tx(MessageCategory::Update, 5);
        m.on_tx(MessageCategory::Update, 99);
        m.on_tx(MessageCategory::Update, 100);
        m.on_tx(MessageCategory::Query, 100); // not an update
        assert_eq!(m.updates_per_bucket.sum(0), 2.0);
        assert_eq!(m.updates_per_bucket.sum(1), 1.0);
    }

    #[test]
    fn warmup_excluded_from_costs_but_not_buckets() {
        let mut m = Metrics::new(100);
        m.on_tx(MessageCategory::Update, 50);
        m.on_rx(MessageCategory::Update, 50);
        assert_eq!(m.update_cost.tx, 0);
        assert_eq!(m.update_cost.rx, 0);
        assert_eq!(m.updates_per_bucket.sum(0), 1.0, "Fig. 6 series keeps warm-up");
        m.on_tx(MessageCategory::Update, 150);
        assert_eq!(m.update_cost.tx, 1);
    }

    #[test]
    fn cost_totals() {
        let mut m = Metrics::new(0);
        m.on_tx(MessageCategory::Query, 10);
        m.on_rx(MessageCategory::Query, 10);
        m.on_rx(MessageCategory::Query, 10);
        m.on_tx(MessageCategory::Control, 10);
        assert_eq!(m.query_cost.cost(), 3.0);
        assert_eq!(m.total_cost(), 4.0);
    }

    #[test]
    fn query_aggregation_respects_warmup() {
        let mut m = Metrics::new(100);
        m.on_query_done(outcome(50, 20, 30, 10)); // warm-up: excluded
        m.on_query_done(outcome(150, 20, 22, 2));
        assert_eq!(m.measured_queries(), 1);
        assert!((m.overshoot.mean() - 10.0).abs() < 1e-12);
        let mean_recv = m.mean_over_queries(|o| o.pct_received()).unwrap();
        assert!((mean_recv - 44.0).abs() < 1e-12);
    }
}
