//! Protocol messages.
//!
//! These are the payloads carried by LMAC data sections. Sizes are small
//! (a few words) — consistent with the paper's premise that update messages
//! are cheap tuples.

use dirq_data::{RangeQuery, SensorType};
use dirq_net::Rect;

/// Adaptive-threshold parameters broadcast by the root once per "hour"
/// (Section 4: the `EHr` estimate message), extended with the derived
/// per-node update budget so each node can steer its threshold
/// autonomously from purely local arithmetic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EhrMessage {
    /// Expected queries over the next hour (the paper's `EHr`).
    pub queries_per_hour: f64,
    /// Target update transmissions per node per epoch, derived at the root
    /// from the analytic budget (Section 5) and the measured query cost.
    pub per_node_budget_per_epoch: f64,
}

/// A DirQ/flooding protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum DirqMessage {
    /// Range-aggregate advertisement from a child to its parent
    /// (Section 4.1's Update Message: the `(min(THmin), max(THmax))`
    /// tuple for one sensor type).
    Update {
        /// Sensor type the aggregate covers.
        stype: SensorType,
        /// `min(THmin)` over the child's table.
        min: f64,
        /// `max(THmax)` over the child's table.
        max: f64,
    },
    /// The child no longer has any range information for `stype` (its last
    /// carrier died or the sensor was removed): drop the table entry.
    Retract {
        /// Sensor type to withdraw.
        stype: SensorType,
    },
    /// A directed query travelling down the tree (multicast to the
    /// children whose advertised ranges overlap).
    Query(RangeQuery),
    /// The hourly threshold-control message travelling down the tree.
    Ehr(EhrMessage),
    /// Tree maintenance: the sender adopts the receiver as its parent
    /// (sent after repair or birth; followed by Updates re-advertising the
    /// sender's aggregates).
    Attach,
    /// Tree maintenance: the sender stops being the receiver's child (sent
    /// to a still-alive old parent when re-parenting during repair).
    Detach,
    /// Location extension: the sender's subtree bounding box (static
    /// attribute advertisement; sent on attach and on topology changes).
    GeoAdvert(Rect),
    /// A query disseminated by the flooding baseline (every node
    /// rebroadcasts it exactly once).
    FloodQuery(RangeQuery),
}

impl DirqMessage {
    /// Write the message to `w`: one discriminant byte plus the payload.
    /// Used by the engine snapshot to capture in-flight MAC frames.
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        match self {
            DirqMessage::Update { stype, min, max } => {
                w.u8(0);
                w.u8(stype.0);
                w.f64(*min);
                w.f64(*max);
            }
            DirqMessage::Retract { stype } => {
                w.u8(1);
                w.u8(stype.0);
            }
            DirqMessage::Query(q) => {
                w.u8(2);
                q.snap(w);
            }
            DirqMessage::Ehr(e) => {
                w.u8(3);
                w.f64(e.queries_per_hour);
                w.f64(e.per_node_budget_per_epoch);
            }
            DirqMessage::Attach => w.u8(4),
            DirqMessage::Detach => w.u8(5),
            DirqMessage::GeoAdvert(rect) => {
                w.u8(6);
                rect.snap(w);
            }
            DirqMessage::FloodQuery(q) => {
                w.u8(7);
                q.snap(w);
            }
        }
    }

    /// Rebuild a message captured by [`DirqMessage::snap`].
    pub fn unsnap(r: &mut dirq_sim::SnapReader<'_>) -> Result<Self, dirq_sim::SnapError> {
        let pos = r.position();
        Ok(match r.u8()? {
            0 => DirqMessage::Update { stype: SensorType(r.u8()?), min: r.f64()?, max: r.f64()? },
            1 => DirqMessage::Retract { stype: SensorType(r.u8()?) },
            2 => DirqMessage::Query(RangeQuery::unsnap(r)?),
            3 => DirqMessage::Ehr(EhrMessage {
                queries_per_hour: r.f64()?,
                per_node_budget_per_epoch: r.f64()?,
            }),
            4 => DirqMessage::Attach,
            5 => DirqMessage::Detach,
            6 => DirqMessage::GeoAdvert(Rect::unsnap(r)?),
            7 => DirqMessage::FloodQuery(RangeQuery::unsnap(r)?),
            _ => {
                return Err(dirq_sim::SnapError::Malformed {
                    pos,
                    what: "unknown message discriminant",
                })
            }
        })
    }

    /// Coarse accounting category for the cost breakdown.
    pub fn category(&self) -> MessageCategory {
        match self {
            DirqMessage::Update { .. } | DirqMessage::Retract { .. } => MessageCategory::Update,
            DirqMessage::Query(_) | DirqMessage::FloodQuery(_) => MessageCategory::Query,
            DirqMessage::Ehr(_)
            | DirqMessage::Attach
            | DirqMessage::Detach
            | DirqMessage::GeoAdvert(_) => MessageCategory::Control,
        }
    }
}

/// Cost-accounting buckets mirroring the paper's Section 5 decomposition:
/// `CTD = CQD + CUD` (plus the small control category the paper folds into
/// the update mechanism).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageCategory {
    /// Query dissemination (`CQD`).
    Query,
    /// Range-update maintenance (`CUD`).
    Update,
    /// EHr dissemination and tree maintenance.
    Control,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirq_data::QueryId;

    #[test]
    fn categories() {
        let q = RangeQuery::value(QueryId(1), SensorType(0), 0.0, 1.0);
        assert_eq!(
            DirqMessage::Update { stype: SensorType(0), min: 0.0, max: 1.0 }.category(),
            MessageCategory::Update
        );
        assert_eq!(
            DirqMessage::Retract { stype: SensorType(1) }.category(),
            MessageCategory::Update
        );
        assert_eq!(DirqMessage::Query(q).category(), MessageCategory::Query);
        assert_eq!(DirqMessage::FloodQuery(q).category(), MessageCategory::Query);
        assert_eq!(
            DirqMessage::Ehr(EhrMessage { queries_per_hour: 1.0, per_node_budget_per_epoch: 0.1 })
                .category(),
            MessageCategory::Control
        );
        assert_eq!(DirqMessage::Attach.category(), MessageCategory::Control);
    }
}
