//! The per-node DirQ protocol state machine.
//!
//! [`DirqNode`] holds everything a node stores: its place in the spanning
//! tree (parent + children), one [`RangeTable`] per sensor type with range
//! information anywhere in its subtree, and the threshold controller. All
//! handlers are pure state transitions returning [`Outgoing`] actions; the
//! scenario engine maps those onto LMAC transmissions. This keeps the
//! protocol unit-testable without a simulator.
//!
//! Per-type state (tables, variability EWMA, last reading) is stored in
//! dense arrays indexed by [`SensorType::index`] rather than `BTreeMap`s:
//! the per-epoch sampling scan touches every carried `(node, type)` pair,
//! and an indexed load replaces a tree walk on that path. Iteration over
//! types ascends the index, which is exactly the `BTreeMap` visit order the
//! protocol used before, so message emission order is unchanged.

use dirq_data::{QueryId, RangeQuery, SensorType};
use dirq_net::{NodeId, NodeList, Position};
use dirq_sim::stats::Ewma;

use crate::atc::{AtcController, DeltaPolicy};
use crate::geo::GeoTable;
use crate::messages::{DirqMessage, EhrMessage};
use crate::range_table::{RangeEntry, RangeTable};

/// An action requested by a protocol handler.
#[derive(Clone, Debug, PartialEq)]
pub enum Outgoing {
    /// Unicast to the node's current parent.
    ToParent(DirqMessage),
    /// Multicast to the listed children (inline, allocation-free up to
    /// four receivers — the common fan-out in the paper's trees).
    ToChildren(NodeList, DirqMessage),
    /// The query matched this node's own advertised range: hand the query
    /// to the local application (the node is a *source* in DirQ's eyes).
    DeliverLocal(RangeQuery),
}

/// Static per-node protocol parameters.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Threshold policy (fixed δ or ATC).
    pub delta_policy: DeltaPolicy,
    /// Reference span per sensor type (δ% is relative to this), indexed by
    /// `SensorType`.
    pub reference_spans: Vec<f64>,
    /// EWMA smoothing for the signal-variability estimate.
    pub variability_alpha: f64,
    /// Multiplier on δ for the *transmission* test (Fig. 3). 1.0 = the
    /// paper's rule; 0.0 = transmit on every aggregate change (ablation).
    pub tx_threshold_factor: f64,
}

impl NodeConfig {
    /// Reference span for `stype` (falls back to 1.0 for unknown types so
    /// late-registered sensors still work).
    pub fn reference_span(&self, stype: SensorType) -> f64 {
        self.reference_spans.get(stype.index()).copied().unwrap_or(1.0)
    }
}

/// The DirQ state of one sensor node.
#[derive(Clone, Debug)]
pub struct DirqNode {
    id: NodeId,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// One table slot per sensor type, indexed by `SensorType::index`
    /// (`None`: no table — the type is absent from this node's subtree).
    tables: Vec<Option<RangeTable>>,
    delta_pct: f64,
    atc: Option<AtcController>,
    /// Per-type EWMA of |Δreading| per epoch, in percent of reference span,
    /// indexed by `SensorType::index`.
    variability: Vec<Option<Ewma>>,
    /// Last reading per type (`NaN`: none yet), indexed by
    /// `SensorType::index`.
    last_reading: Vec<f64>,
    /// Query ids already processed (duplicate suppression after repairs).
    seen_queries: Vec<QueryId>,
    /// Location extension: subtree bounding boxes (empty when localisation
    /// is unavailable — DirQ works without it).
    geo: GeoTable,
    updates_sent: u64,
    cfg: NodeConfig,
}

/// Bound on the duplicate-suppression memory.
const SEEN_QUERIES_CAP: usize = 64;

impl DirqNode {
    /// Fresh node with no tree links and empty tables.
    pub fn new(id: NodeId, cfg: NodeConfig) -> Self {
        let (delta_pct, atc) = match cfg.delta_policy {
            DeltaPolicy::Fixed(pct) => {
                assert!(pct > 0.0, "fixed δ must be positive");
                (pct, None)
            }
            DeltaPolicy::Adaptive(acfg) => {
                let c = AtcController::new(acfg);
                (c.delta_pct(), Some(c))
            }
        };
        // Pre-size the per-type arrays from the configured spans; types
        // registered after deployment grow them on demand.
        let n_types = cfg.reference_spans.len();
        DirqNode {
            id,
            parent: None,
            children: Vec::new(),
            tables: vec![None; n_types],
            delta_pct,
            atc,
            variability: vec![None; n_types],
            last_reading: vec![f64::NAN; n_types],
            seen_queries: Vec::new(),
            geo: GeoTable::new(),
            updates_sent: 0,
            cfg,
        }
    }

    /// Grow the per-type arrays so `idx` is addressable (late-registered
    /// sensor types).
    fn ensure_type(&mut self, idx: usize) {
        if self.tables.len() <= idx {
            self.tables.resize(idx + 1, None);
            self.variability.resize(idx + 1, None);
            self.last_reading.resize(idx + 1, f64::NAN);
        }
    }

    /// Node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current parent.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Current children (protocol view).
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Current δ in percent of the reference span.
    pub fn delta_pct(&self) -> f64 {
        self.delta_pct
    }

    /// Absolute δ for a sensor type.
    pub fn delta_abs(&self, stype: SensorType) -> f64 {
        self.delta_pct / 100.0 * self.cfg.reference_span(stype)
    }

    /// Total Update/Retract messages this node has transmitted.
    pub fn updates_sent(&self) -> u64 {
        self.updates_sent
    }

    /// Range table for `stype`, if present.
    pub fn table(&self, stype: SensorType) -> Option<&RangeTable> {
        self.tables.get(stype.index()).and_then(|t| t.as_ref())
    }

    /// Sensor types with a table at this node (i.e. present somewhere in
    /// its subtree — the paper's Fig. 4), ascending.
    pub fn table_types(&self) -> impl Iterator<Item = SensorType> + '_ {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some())
            .map(|(i, _)| SensorType(i as u8))
    }

    /// Smoothed signal variability for ATC, in percent of span (max over
    /// carried types: the most volatile sensor drives the update rate).
    pub fn sigma_hat_pct(&self) -> Option<f64> {
        self.variability
            .iter()
            .flatten()
            .filter_map(|e| e.value())
            .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.max(v))))
    }

    // --- tree maintenance ---------------------------------------------------

    /// Adopt a new parent (or become an orphan with `None`). Returns the
    /// messages to send to the new parent: an `Attach` followed by a full
    /// re-advertisement of every non-empty table aggregate.
    pub fn set_parent(&mut self, parent: Option<NodeId>) -> Vec<Outgoing> {
        self.parent = parent;
        let mut out = Vec::new();
        if parent.is_some() {
            out.push(Outgoing::ToParent(DirqMessage::Attach));
            for (idx, slot) in self.tables.iter_mut().enumerate() {
                let Some(table) = slot else { continue };
                if let Some(agg) = table.aggregate() {
                    table.mark_transmitted(agg);
                    out.push(Outgoing::ToParent(DirqMessage::Update {
                        stype: SensorType(idx as u8),
                        min: agg.min,
                        max: agg.max,
                    }));
                }
            }
            self.updates_sent += out.len() as u64 - 1;
            if let Some(atc) = &mut self.atc {
                for _ in 1..out.len() {
                    atc.on_update_sent();
                }
            }
            if let Some(rect) = self.geo.aggregate() {
                self.geo.mark_advertised(rect);
                out.push(Outgoing::ToParent(DirqMessage::GeoAdvert(rect)));
            }
        }
        out
    }

    /// Location extension: record this node's own (static) position and
    /// advertise the resulting subtree hull.
    pub fn set_position(&mut self, pos: Position) -> Vec<Outgoing> {
        self.geo.set_own(pos);
        self.flush_geo()
    }

    /// This node's position, if localised.
    pub fn position(&self) -> Option<Position> {
        self.geo.own()
    }

    /// The location table (read access for tests/diagnostics).
    pub fn geo_table(&self) -> &GeoTable {
        &self.geo
    }

    /// A child advertised its subtree bounding box.
    pub fn on_geo_advert(&mut self, from: NodeId, rect: dirq_net::Rect) -> Vec<Outgoing> {
        self.add_child(from);
        if self.geo.set_child(from, rect) {
            self.flush_geo()
        } else {
            Vec::new()
        }
    }

    fn flush_geo(&mut self) -> Vec<Outgoing> {
        let Some(rect) = self.geo.pending_advert() else {
            return Vec::new();
        };
        self.geo.mark_advertised(rect);
        if self.id.is_root() || self.parent.is_none() {
            return Vec::new();
        }
        vec![Outgoing::ToParent(DirqMessage::GeoAdvert(rect))]
    }

    /// Register `child` (idempotent).
    pub fn add_child(&mut self, child: NodeId) {
        if let Err(i) = self.children.binary_search(&child) {
            self.children.insert(i, child);
        }
    }

    /// A child vanished (death or re-parenting): drop it from the child
    /// list and every table, cascading updates/retracts upward.
    pub fn on_child_lost(&mut self, child: NodeId) -> Vec<Outgoing> {
        if let Ok(i) = self.children.binary_search(&child) {
            self.children.remove(i);
        }
        let mut out = Vec::new();
        for idx in 0..self.tables.len() {
            let changed = self.tables[idx].as_mut().map(|t| t.remove_child(child)).unwrap_or(false);
            if changed {
                out.extend(self.flush_table(SensorType(idx as u8)));
            }
        }
        if self.geo.remove_child(child) {
            out.extend(self.flush_geo());
        }
        out
    }

    // --- sensing ------------------------------------------------------------

    /// Process this epoch's reading for a carried sensor type.
    pub fn sample(&mut self, stype: SensorType, reading: f64) -> Vec<Outgoing> {
        let idx = stype.index();
        self.ensure_type(idx);
        // Variability estimate (percent of span per epoch) for ATC.
        let span = self.cfg.reference_span(stype);
        let prev = std::mem::replace(&mut self.last_reading[idx], reading);
        if !prev.is_nan() {
            let pct = ((reading - prev).abs() / span) * 100.0;
            self.variability[idx]
                .get_or_insert_with(|| Ewma::new(self.cfg.variability_alpha))
                .observe(pct);
        }

        let delta = self.delta_abs(stype);
        let table = self.tables[idx].get_or_insert_with(RangeTable::new);
        if table.observe_own(reading, delta) {
            self.flush_table(stype)
        } else {
            Vec::new()
        }
    }

    /// The node's sensor for `stype` was removed.
    pub fn drop_own_sensor(&mut self, stype: SensorType) -> Vec<Outgoing> {
        let changed = self
            .tables
            .get_mut(stype.index())
            .and_then(|t| t.as_mut())
            .map(|t| t.clear_own())
            .unwrap_or(false);
        if changed {
            self.flush_table(stype)
        } else {
            Vec::new()
        }
    }

    // --- message handlers ----------------------------------------------------

    /// An Update arrived from a child.
    pub fn on_update(
        &mut self,
        from: NodeId,
        stype: SensorType,
        min: f64,
        max: f64,
    ) -> Vec<Outgoing> {
        self.add_child(from);
        self.ensure_type(stype.index());
        let table = self.tables[stype.index()].get_or_insert_with(RangeTable::new);
        let changed = table.set_child(from, RangeEntry { min, max });
        if changed {
            self.flush_table(stype)
        } else {
            Vec::new()
        }
    }

    /// A Retract arrived from a child.
    pub fn on_retract(&mut self, from: NodeId, stype: SensorType) -> Vec<Outgoing> {
        let changed = self
            .tables
            .get_mut(stype.index())
            .and_then(|t| t.as_mut())
            .map(|t| t.remove_child(from))
            .unwrap_or(false);
        if changed {
            self.flush_table(stype)
        } else {
            Vec::new()
        }
    }

    /// An Attach arrived: adopt the sender as a child (its Updates follow).
    pub fn on_attach(&mut self, from: NodeId) {
        self.add_child(from);
    }

    /// A query arrived (or was injected, at the root). Returns the local
    /// delivery (if the node's own advertised range matches) and the
    /// forwarding multicast to the children whose aggregates overlap.
    ///
    /// Duplicate query ids (possible transiently after tree repairs) are
    /// ignored.
    pub fn on_query(&mut self, query: &RangeQuery) -> Vec<Outgoing> {
        if self.seen_queries.contains(&query.id) {
            return Vec::new();
        }
        if self.seen_queries.len() == SEEN_QUERIES_CAP {
            self.seen_queries.remove(0);
        }
        self.seen_queries.push(query.id);

        let mut out = Vec::new();
        if let Some(table) = self.table(query.stype) {
            if let Some(own) = table.own() {
                // Local delivery: value overlap, plus (when both the query
                // and the node are localised) the region must contain us.
                let in_region = match (query.region, self.geo.own()) {
                    (Some(r), Some(pos)) => r.contains(&pos),
                    _ => true, // no region, or no localisation: cannot prune
                };
                if own.overlaps(query.lo, query.hi) && in_region {
                    out.push(Outgoing::DeliverLocal(*query));
                }
            }
            // Batched interval-overlap sweep over the table's SoA arrays;
            // candidates that survive it are filtered by child-list
            // membership (only forward to nodes we still consider children)
            // and spatial pruning (skip children whose advertised subtree
            // box misses the query region; unknown boxes are forwarded
            // conservatively).
            let mut relevant = NodeList::default();
            table.for_overlapping_children(query.lo, query.hi, |c| {
                if self.children.binary_search(&c).is_ok()
                    && match (query.region, self.geo.child_rect(c)) {
                        (Some(region), Some(rect)) => rect.intersects(&region),
                        _ => true,
                    }
                {
                    relevant.push(c);
                }
            });
            if !relevant.is_empty() {
                out.push(Outgoing::ToChildren(relevant, DirqMessage::Query(*query)));
            }
        }
        out
    }

    /// The hourly EHr/budget message arrived: update ATC and forward the
    /// message to all children.
    pub fn on_ehr(&mut self, msg: EhrMessage) -> Vec<Outgoing> {
        if let Some(atc) = &mut self.atc {
            atc.on_budget(msg.per_node_budget_per_epoch);
        }
        if self.children.is_empty() {
            Vec::new()
        } else {
            vec![Outgoing::ToChildren(self.children.as_slice().into(), DirqMessage::Ehr(msg))]
        }
    }

    /// End-of-epoch housekeeping: drive the ATC adjustment.
    pub fn end_epoch(&mut self) {
        let sigma = self.sigma_hat_pct();
        if let Some(atc) = &mut self.atc {
            if let Some(new_delta) = atc.on_epoch_end(sigma) {
                self.delta_pct = new_delta;
            }
        }
    }

    // --- snapshot -------------------------------------------------------------

    /// Write the node's full dynamic state to `w`. Static configuration
    /// (id, spans, threshold policy) is rebuilt by the engine constructor
    /// and not captured.
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.tag(b"NODE");
        w.bool(self.parent.is_some());
        if let Some(p) = self.parent {
            w.u32(p.0);
        }
        w.len_of(self.children.len());
        for c in &self.children {
            w.u32(c.0);
        }
        w.len_of(self.tables.len());
        for slot in &self.tables {
            w.bool(slot.is_some());
            if let Some(t) = slot {
                t.snap(w);
            }
        }
        w.f64(self.delta_pct);
        w.bool(self.atc.is_some());
        if let Some(atc) = &self.atc {
            atc.snap(w);
        }
        w.len_of(self.variability.len());
        for slot in &self.variability {
            w.bool(slot.is_some());
            if let Some(e) = slot {
                e.snap(w);
            }
        }
        w.f64s(&self.last_reading);
        w.len_of(self.seen_queries.len());
        for q in &self.seen_queries {
            w.u64(q.0);
        }
        self.geo.snap(w);
        w.u64(self.updates_sent);
    }

    /// Overlay state captured by [`DirqNode::snap`] onto a node built with
    /// the same id and config.
    pub fn restore(&mut self, r: &mut dirq_sim::SnapReader<'_>) -> Result<(), dirq_sim::SnapError> {
        r.tag(b"NODE")?;
        self.parent = if r.bool()? { Some(NodeId(r.u32()?)) } else { None };
        let n = r.seq_len(4)?;
        self.children = (0..n).map(|_| r.u32().map(NodeId)).collect::<Result<_, _>>()?;
        let n = r.seq_len(1)?;
        let mut tables = Vec::with_capacity(n);
        for _ in 0..n {
            tables.push(if r.bool()? { Some(RangeTable::unsnap(r)?) } else { None });
        }
        self.tables = tables;
        self.delta_pct = r.f64()?;
        let pos = r.position();
        if r.bool()? != self.atc.is_some() {
            return Err(dirq_sim::SnapError::Malformed {
                pos,
                what: "ATC presence disagrees with the threshold policy",
            });
        }
        if let Some(atc) = &mut self.atc {
            atc.restore(r)?;
        }
        let n = r.seq_len(1)?;
        let mut variability = Vec::with_capacity(n);
        for _ in 0..n {
            variability.push(if r.bool()? { Some(Ewma::unsnap(r)?) } else { None });
        }
        self.variability = variability;
        self.last_reading = r.f64s()?;
        let n = r.seq_len(8)?;
        self.seen_queries =
            (0..n).map(|_| r.u64().map(dirq_data::QueryId)).collect::<Result<_, _>>()?;
        self.geo = GeoTable::unsnap(r)?;
        self.updates_sent = r.u64()?;
        Ok(())
    }

    // --- internals ------------------------------------------------------------

    /// After a table mutation: emit an Update or Retract to the parent per
    /// the Fig. 3 rule. The root marks aggregates transmitted without
    /// sending (its "parent" is the wired server).
    fn flush_table(&mut self, stype: SensorType) -> Vec<Outgoing> {
        let delta = self.delta_abs(stype) * self.cfg.tx_threshold_factor;
        let Some(table) = self.tables.get_mut(stype.index()).and_then(|t| t.as_mut()) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        if table.pending_retract() {
            table.mark_retracted();
            self.tables[stype.index()] = None;
            if !self.id.is_root() && self.parent.is_some() {
                self.updates_sent += 1;
                if let Some(atc) = &mut self.atc {
                    atc.on_update_sent();
                }
                out.push(Outgoing::ToParent(DirqMessage::Retract { stype }));
            }
        } else if let Some(agg) = table.pending_update(delta) {
            table.mark_transmitted(agg);
            if !self.id.is_root() && self.parent.is_some() {
                self.updates_sent += 1;
                if let Some(atc) = &mut self.atc {
                    atc.on_update_sent();
                }
                out.push(Outgoing::ToParent(DirqMessage::Update {
                    stype,
                    min: agg.min,
                    max: agg.max,
                }));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirq_data::QueryId;

    fn cfg() -> NodeConfig {
        NodeConfig {
            delta_policy: DeltaPolicy::Fixed(5.0),
            reference_spans: vec![20.0, 40.0],
            variability_alpha: 0.2,
            tx_threshold_factor: 1.0,
        }
    }

    fn t0() -> SensorType {
        SensorType(0)
    }

    fn query(id: u64, lo: f64, hi: f64) -> RangeQuery {
        RangeQuery::value(QueryId(id), t0(), lo, hi)
    }

    fn mk(id: u32) -> DirqNode {
        let mut n = DirqNode::new(NodeId(id), cfg());
        if id != 0 {
            // Give non-root nodes a parent so updates are emitted.
            let _ = n.set_parent(Some(NodeId(0)));
        }
        n
    }

    #[test]
    fn delta_abs_scales_with_span() {
        let n = mk(1);
        assert_eq!(n.delta_pct(), 5.0);
        assert_eq!(n.delta_abs(SensorType(0)), 1.0); // 5% of 20
        assert_eq!(n.delta_abs(SensorType(1)), 2.0); // 5% of 40
    }

    #[test]
    fn first_sample_emits_update() {
        let mut n = mk(1);
        let out = n.sample(t0(), 20.0);
        assert_eq!(
            out,
            vec![Outgoing::ToParent(DirqMessage::Update { stype: t0(), min: 19.0, max: 21.0 })]
        );
        assert_eq!(n.updates_sent(), 1);
    }

    #[test]
    fn small_changes_suppressed() {
        let mut n = mk(1);
        n.sample(t0(), 20.0);
        // Inside the ±1.0 window: no tuple replacement, no update.
        assert!(n.sample(t0(), 20.5).is_empty());
        assert!(n.sample(t0(), 19.2).is_empty());
        assert_eq!(n.updates_sent(), 1);
    }

    #[test]
    fn escape_triggers_update_beyond_delta() {
        let mut n = mk(1);
        n.sample(t0(), 20.0); // tx [19, 21]
                              // Escape to 22.5: own tuple [21.5, 23.5]; aggregate moved by 2.5 > 1.
        let out = n.sample(t0(), 22.5);
        assert_eq!(
            out,
            vec![Outgoing::ToParent(DirqMessage::Update { stype: t0(), min: 21.5, max: 23.5 })]
        );
    }

    #[test]
    fn escape_within_delta_of_last_tx_is_silent() {
        let mut n = mk(1);
        n.sample(t0(), 20.0); // own [19,21], tx [19,21]
                              // Escape to 21.8: own tuple becomes [20.8, 22.8]; min moved +1.8 > δ?
                              // min 19→20.8 = 1.8 > 1 → fires. Pick an escape that moves both ends
                              // by ≤ δ: reading 21.9 → [20.9, 22.9]: max moved 1.9 > 1 — fires too.
                              // With this δ the paper's rule can only stay silent when the
                              // aggregate is dominated by children; verify via a child update.
        let mut p = mk(2);
        p.on_update(NodeId(5), t0(), 0.0, 100.0);
        // p transmitted [0,100]. A tiny own reading inside: aggregate
        // unchanged → silent.
        let out = p.sample(t0(), 50.0);
        assert!(out.is_empty(), "aggregate [0,100] swallowed [49,51]: {out:?}");
    }

    #[test]
    fn child_update_cascades_when_significant() {
        let mut n = mk(1);
        n.sample(t0(), 20.0); // tx [19, 21]
        let out = n.on_update(NodeId(7), t0(), 5.0, 8.0);
        assert_eq!(
            out,
            vec![Outgoing::ToParent(DirqMessage::Update { stype: t0(), min: 5.0, max: 21.0 })]
        );
        assert_eq!(n.children(), &[NodeId(7)]);
        // A further child change inside the transmitted aggregate: silent.
        let out = n.on_update(NodeId(7), t0(), 5.5, 8.0);
        assert!(out.is_empty());
    }

    #[test]
    fn root_absorbs_updates_without_sending() {
        let mut root = DirqNode::new(NodeId::ROOT, cfg());
        let out = root.on_update(NodeId(3), t0(), 1.0, 2.0);
        assert!(out.is_empty(), "root has no parent to update");
        assert_eq!(root.updates_sent(), 0);
        // But it stores the information for routing.
        assert!(root.table(t0()).is_some());
    }

    #[test]
    fn retract_on_last_entry_removed() {
        let mut n = mk(1);
        n.on_update(NodeId(9), t0(), 1.0, 2.0);
        let out = n.on_child_lost(NodeId(9));
        assert_eq!(out, vec![Outgoing::ToParent(DirqMessage::Retract { stype: t0() })]);
        assert!(n.table(t0()).is_none(), "empty table dropped");
        assert!(n.children().is_empty());
    }

    #[test]
    fn child_loss_with_remaining_data_updates() {
        let mut n = mk(1);
        n.sample(t0(), 20.0); // [19,21]
        n.on_update(NodeId(9), t0(), 0.0, 50.0); // tx [0,50]
        let out = n.on_child_lost(NodeId(9));
        // Aggregate shrinks back to [19,21]: both ends moved > δ.
        assert_eq!(
            out,
            vec![Outgoing::ToParent(DirqMessage::Update { stype: t0(), min: 19.0, max: 21.0 })]
        );
    }

    #[test]
    fn query_routing_to_overlapping_children_only() {
        let mut n = mk(1);
        n.on_update(NodeId(3), t0(), 0.0, 10.0);
        n.on_update(NodeId(4), t0(), 20.0, 30.0);
        n.on_update(NodeId(5), t0(), 40.0, 50.0);
        let out = n.on_query(&query(1, 25.0, 45.0));
        assert_eq!(
            out,
            vec![Outgoing::ToChildren(
                [NodeId(4), NodeId(5)].into(),
                DirqMessage::Query(query(1, 25.0, 45.0))
            )]
        );
    }

    #[test]
    fn query_delivers_locally_on_own_overlap() {
        let mut n = mk(1);
        n.sample(t0(), 20.0); // own [19, 21]
        let out = n.on_query(&query(2, 20.5, 30.0));
        assert_eq!(out, vec![Outgoing::DeliverLocal(query(2, 20.5, 30.0))]);
        // Own range [19,21] vs [30,40]: no delivery, no children: nothing.
        let out = n.on_query(&query(3, 30.0, 40.0));
        assert!(out.is_empty());
    }

    #[test]
    fn duplicate_queries_suppressed() {
        let mut n = mk(1);
        n.sample(t0(), 20.0);
        assert_eq!(n.on_query(&query(7, 0.0, 100.0)).len(), 1);
        assert!(n.on_query(&query(7, 0.0, 100.0)).is_empty());
    }

    #[test]
    fn query_for_unknown_type_goes_nowhere() {
        let mut n = mk(1);
        n.sample(t0(), 20.0);
        let q = RangeQuery::value(QueryId(9), SensorType(3), 0.0, 1.0);
        assert!(n.on_query(&q).is_empty());
    }

    #[test]
    fn ehr_forwarded_to_children() {
        let mut n = mk(1);
        n.add_child(NodeId(2));
        n.add_child(NodeId(3));
        let msg = EhrMessage { queries_per_hour: 20.0, per_node_budget_per_epoch: 0.1 };
        let out = n.on_ehr(msg);
        assert_eq!(
            out,
            vec![Outgoing::ToChildren([NodeId(2), NodeId(3)].into(), DirqMessage::Ehr(msg))]
        );
        // Leaf: absorbed silently.
        let mut leaf = mk(4);
        assert!(leaf.on_ehr(msg).is_empty());
    }

    #[test]
    fn set_parent_readvertises_tables() {
        let mut n = mk(1);
        n.sample(t0(), 20.0);
        n.on_update(NodeId(8), SensorType(1), 5.0, 6.0);
        let out = n.set_parent(Some(NodeId(2)));
        assert_eq!(out.len(), 3); // Attach + 2 table advertisements
        assert_eq!(out[0], Outgoing::ToParent(DirqMessage::Attach));
        assert!(matches!(
            out[1],
            Outgoing::ToParent(DirqMessage::Update { stype: SensorType(0), .. })
        ));
        assert!(matches!(
            out[2],
            Outgoing::ToParent(DirqMessage::Update { stype: SensorType(1), .. })
        ));
    }

    #[test]
    fn orphan_emits_nothing_and_buffers_state() {
        let mut n = mk(1);
        n.sample(t0(), 20.0);
        let out = n.set_parent(None);
        assert!(out.is_empty());
        // Sampling while orphaned mutates the table but sends nothing.
        let out = n.sample(t0(), 40.0);
        assert!(out.is_empty());
        assert!(n.table(t0()).is_some());
    }

    #[test]
    fn variability_estimate_tracks_changes() {
        let mut n = mk(1);
        assert_eq!(n.sigma_hat_pct(), None);
        n.sample(t0(), 20.0);
        n.sample(t0(), 21.0); // |Δ| = 1.0 = 5% of span 20
        let sigma = n.sigma_hat_pct().unwrap();
        assert!((sigma - 5.0).abs() < 1e-9, "sigma {sigma}");
    }

    #[test]
    fn geo_advert_flows_and_prunes_routing() {
        use dirq_net::{Position, Rect};
        let mut n = mk(1);
        n.sample(t0(), 20.0);
        // Two children with identical value ranges but disjoint regions.
        n.on_update(NodeId(3), t0(), 0.0, 100.0);
        n.on_update(NodeId(4), t0(), 0.0, 100.0);
        let west = Rect::new(Position::new(0.0, 0.0), Position::new(10.0, 10.0));
        let east = Rect::new(Position::new(50.0, 0.0), Position::new(60.0, 10.0));
        let out = n.on_geo_advert(NodeId(3), west);
        assert!(
            matches!(out.as_slice(), [Outgoing::ToParent(DirqMessage::GeoAdvert(_))]),
            "hull change must be advertised: {out:?}"
        );
        n.on_geo_advert(NodeId(4), east);

        // A query scoped to the west region must skip the east child.
        let q = query(11, 0.0, 100.0)
            .with_region(Rect::new(Position::new(0.0, 0.0), Position::new(20.0, 20.0)));
        let out = n.on_query(&q);
        let forwarded: Vec<NodeId> = out
            .iter()
            .find_map(|o| match o {
                Outgoing::ToChildren(cs, _) => Some(cs.to_vec()),
                _ => None,
            })
            .unwrap_or_default();
        assert_eq!(forwarded, vec![NodeId(3)], "east child must be pruned");
    }

    #[test]
    fn geo_local_delivery_requires_region_membership() {
        use dirq_net::{Position, Rect};
        let mut n = mk(1);
        n.set_position(Position::new(30.0, 30.0));
        n.sample(t0(), 20.0);
        let inside =
            query(21, 0.0, 100.0).with_region(Rect::centered(Position::new(30.0, 30.0), 5.0));
        assert!(n.on_query(&inside).iter().any(|o| matches!(o, Outgoing::DeliverLocal(_))));
        let outside =
            query(22, 0.0, 100.0).with_region(Rect::centered(Position::new(90.0, 90.0), 5.0));
        assert!(!n.on_query(&outside).iter().any(|o| matches!(o, Outgoing::DeliverLocal(_))));
    }

    #[test]
    fn unlocalised_node_ignores_region_conservatively() {
        use dirq_net::{Position, Rect};
        let mut n = mk(1);
        n.sample(t0(), 20.0); // no set_position
        let q = query(31, 0.0, 100.0).with_region(Rect::centered(Position::new(90.0, 90.0), 1.0));
        // Cannot prune without knowing its own position: delivers locally.
        assert!(n.on_query(&q).iter().any(|o| matches!(o, Outgoing::DeliverLocal(_))));
    }

    #[test]
    fn multiple_tables_supported() {
        // Paper Fig. 4: a node keeps tables for types it does not carry
        // itself when they exist in its subtree.
        let mut n = mk(1);
        n.on_update(NodeId(2), SensorType(0), 0.0, 1.0);
        n.on_update(NodeId(3), SensorType(1), 5.0, 6.0);
        assert_eq!(n.table_types().count(), 2);
        assert!(n.table(SensorType(0)).unwrap().own().is_none());
    }
}
