//! The location extension — the paper's *static attribute* routing.
//!
//! Section 2: "queries can be directed based on a combination of static
//! and dynamic attributes, e.g. sensor values (dynamic), sensor types
//! (static) and even location (static) if it is available … location
//! information is not essential for the operation of DirQ. Having location
//! information would of course extend the capabilities of DirQ."
//!
//! When nodes know their own positions, each advertises the **bounding
//! box** of its subtree's positions up the tree, exactly like the value
//! Range Tables — except that positions are static, so there is no
//! threshold machinery: the box changes only on topology changes (attach /
//! child loss) and the new hull is advertised immediately. Spatially
//! scoped queries are then pruned per-child by rectangle intersection, on
//! top of the usual value-range overlap test.

use dirq_net::{NodeId, Position, Rect};

/// Per-node spatial aggregation state (the location analogue of a
/// [`crate::range_table::RangeTable`]).
#[derive(Clone, Debug, Default)]
pub struct GeoTable {
    /// This node's own position, if localisation is available.
    own: Option<Position>,
    /// Advertised subtree bounding boxes of the one-hop children.
    children: Vec<(NodeId, Rect)>,
    /// The hull most recently advertised to the parent.
    last_tx: Option<Rect>,
}

impl GeoTable {
    /// Empty table (no localisation).
    pub fn new() -> Self {
        GeoTable::default()
    }

    /// Set this node's own (static) position.
    pub fn set_own(&mut self, pos: Position) {
        self.own = Some(pos);
    }

    /// This node's position.
    pub fn own(&self) -> Option<Position> {
        self.own
    }

    /// Store a child's advertised bounding box; returns whether the stored
    /// value changed.
    pub fn set_child(&mut self, child: NodeId, rect: Rect) -> bool {
        match self.children.binary_search_by_key(&child, |e| e.0) {
            Ok(i) => {
                if self.children[i].1 == rect {
                    false
                } else {
                    self.children[i].1 = rect;
                    true
                }
            }
            Err(i) => {
                self.children.insert(i, (child, rect));
                true
            }
        }
    }

    /// Remove a child's box; returns whether it was present.
    pub fn remove_child(&mut self, child: NodeId) -> bool {
        match self.children.binary_search_by_key(&child, |e| e.0) {
            Ok(i) => {
                self.children.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// A child's advertised box.
    pub fn child_rect(&self, child: NodeId) -> Option<&Rect> {
        self.children.binary_search_by_key(&child, |e| e.0).ok().map(|i| &self.children[i].1)
    }

    /// All child boxes, sorted by child id.
    pub fn children(&self) -> &[(NodeId, Rect)] {
        &self.children
    }

    /// Hull of the own position and every child box — the subtree's
    /// bounding box.
    pub fn aggregate(&self) -> Option<Rect> {
        let mut agg: Option<Rect> = self.own.map(Rect::point);
        for (_, r) in &self.children {
            agg = Some(match agg {
                Some(a) => a.hull(r),
                None => *r,
            });
        }
        agg
    }

    /// The hull to advertise now, if it differs from the last advertised
    /// one (positions are static ⇒ exact comparison, no threshold).
    pub fn pending_advert(&self) -> Option<Rect> {
        let agg = self.aggregate()?;
        match &self.last_tx {
            Some(prev) if *prev == agg => None,
            _ => Some(agg),
        }
    }

    /// Record that `rect` was advertised to the parent.
    pub fn mark_advertised(&mut self, rect: Rect) {
        self.last_tx = Some(rect);
    }

    /// The most recently advertised hull.
    pub fn last_advertised(&self) -> Option<Rect> {
        self.last_tx
    }

    /// Write the full table state to `w`.
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.bool(self.own.is_some());
        if let Some(p) = self.own {
            p.snap(w);
        }
        w.len_of(self.children.len());
        for (id, rect) in &self.children {
            w.u32(id.0);
            rect.snap(w);
        }
        w.bool(self.last_tx.is_some());
        if let Some(rect) = &self.last_tx {
            rect.snap(w);
        }
    }

    /// Rebuild a table captured by [`GeoTable::snap`].
    pub fn unsnap(r: &mut dirq_sim::SnapReader<'_>) -> Result<Self, dirq_sim::SnapError> {
        let own = if r.bool()? { Some(Position::unsnap(r)?) } else { None };
        let pos = r.position();
        let n = r.seq_len(4 + 32)?;
        let mut children = Vec::with_capacity(n);
        for _ in 0..n {
            children.push((NodeId(r.u32()?), Rect::unsnap(r)?));
        }
        if !children.windows(2).all(|p| p[0].0 < p[1].0) {
            return Err(dirq_sim::SnapError::Malformed {
                pos,
                what: "geo table child ids not strictly ascending",
            });
        }
        let last_tx = if r.bool()? { Some(Rect::unsnap(r)?) } else { None };
        Ok(GeoTable { own, children, last_tx })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Position {
        Position::new(x, y)
    }

    #[test]
    fn aggregate_is_hull_of_own_and_children() {
        let mut t = GeoTable::new();
        t.set_own(p(10.0, 10.0));
        t.set_child(NodeId(1), Rect::new(p(0.0, 0.0), p(5.0, 5.0)));
        t.set_child(NodeId(2), Rect::point(p(20.0, 3.0)));
        let agg = t.aggregate().unwrap();
        assert_eq!(agg, Rect { x_min: 0.0, y_min: 0.0, x_max: 20.0, y_max: 10.0 });
    }

    #[test]
    fn advert_fires_only_on_change() {
        let mut t = GeoTable::new();
        t.set_own(p(1.0, 1.0));
        let a = t.pending_advert().unwrap();
        t.mark_advertised(a);
        assert_eq!(t.pending_advert(), None);
        // Same child box twice: only the first is a change.
        assert!(t.set_child(NodeId(3), Rect::point(p(2.0, 2.0))));
        assert!(!t.set_child(NodeId(3), Rect::point(p(2.0, 2.0))));
        let b = t.pending_advert().unwrap();
        assert!(b.contains(&p(2.0, 2.0)));
        t.mark_advertised(b);
        assert_eq!(t.pending_advert(), None);
    }

    #[test]
    fn child_removal_shrinks_hull() {
        let mut t = GeoTable::new();
        t.set_own(p(1.0, 1.0));
        t.set_child(NodeId(5), Rect::point(p(100.0, 100.0)));
        t.mark_advertised(t.aggregate().unwrap());
        assert!(t.remove_child(NodeId(5)));
        let shrunk = t.pending_advert().unwrap();
        assert_eq!(shrunk, Rect::point(p(1.0, 1.0)));
        assert!(!t.remove_child(NodeId(5)));
    }

    #[test]
    fn empty_table_has_nothing_to_advertise() {
        let t = GeoTable::new();
        assert_eq!(t.aggregate(), None);
        assert_eq!(t.pending_advert(), None);
    }

    #[test]
    fn forwarder_without_own_position_still_aggregates() {
        // A node may relay location info even if it is not localised
        // itself.
        let mut t = GeoTable::new();
        t.set_child(NodeId(1), Rect::point(p(3.0, 4.0)));
        assert_eq!(t.aggregate(), Some(Rect::point(p(3.0, 4.0))));
    }
}
