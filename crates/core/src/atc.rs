//! Adaptive Threshold Control (Section 6).
//!
//! The ICPPW paper defers ATC's internals to an unavailable companion paper
//! \[13\] but pins down its **contract**, which this module satisfies:
//!
//! * each node adjusts its threshold `δ` **autonomously** from locally
//!   available information;
//! * the inputs are (a) the number of queries expected over the next hour
//!   (the root's `EHr` broadcast) and (b) the **rate of variation of the
//!   measured parameter**;
//! * the outcome is that network-wide update traffic is throttled such that
//!   total DirQ cost stays at roughly 45–55 % of flooding (Fig. 6) while
//!   accuracy degrades only mildly (~3.6 % overshoot, Fig. 7).
//!
//! ## Reconstructed mechanism
//!
//! The root knows the analytic budget (Section 5, [`dirq_analytic`]) and
//! the measured per-query dissemination cost; from those it derives a
//! per-node **update budget** `u*` (transmissions per node per epoch) that
//! would land total cost mid-band, and ships it inside the `EHr` message.
//!
//! Each node then runs two local estimators:
//!
//! * `σ̂` — an EWMA of the per-epoch absolute change of its readings (the
//!   paper's "rate of variation"), and
//! * `r̂` — an EWMA of its own update transmission rate;
//!
//! and combines two corrections every adjustment window:
//!
//! * **feedforward**: for a drifting signal, a `±δ` window re-centres about
//!   every `2δ/σ̂` epochs, so the δ that meets the budget directly is
//!   `δ_ff = σ̂ / (2·u*)`;
//! * **feedback**: `δ_fb = δ · (r̂/u*)^gain` corrects the model error.
//!
//! The new δ is the geometric blend of the two, clamped to configured
//! bounds. Both corrections use only node-local state plus the broadcast
//! budget — exactly the autonomy the paper claims.

use dirq_sim::stats::Ewma;

/// How a node's threshold is chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeltaPolicy {
    /// Fixed δ as a percentage of the sensor's reference span (the paper's
    /// δ = 3 %, 5 %, 9 % runs).
    Fixed(f64),
    /// Adaptive Threshold Control.
    Adaptive(AtcConfig),
}

/// ATC tuning parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AtcConfig {
    /// Initial δ (percent of reference span) before any adaptation.
    pub initial_delta_pct: f64,
    /// Lower clamp for δ (percent).
    pub min_delta_pct: f64,
    /// Upper clamp for δ (percent).
    pub max_delta_pct: f64,
    /// Feedback exponent on the rate ratio.
    pub gain: f64,
    /// Epochs between adjustments.
    pub adjust_period: u64,
    /// EWMA smoothing factor for the update-rate estimate.
    pub rate_alpha: f64,
    /// Weight of the feedforward term in the geometric blend (0 = feedback
    /// only, 1 = feedforward only).
    pub feedforward_weight: f64,
    /// Per-adjustment clamp on the multiplicative step (stability).
    pub max_step: f64,
}

impl Default for AtcConfig {
    fn default() -> Self {
        AtcConfig {
            initial_delta_pct: 5.0,
            min_delta_pct: 0.2,
            max_delta_pct: 40.0,
            gain: 0.6,
            adjust_period: 50,
            rate_alpha: 0.3,
            feedforward_weight: 0.15,
            max_step: 2.0,
        }
    }
}

/// Per-node ATC state.
#[derive(Clone, Debug)]
pub struct AtcController {
    cfg: AtcConfig,
    delta_pct: f64,
    /// Updates sent in the current adjustment window.
    sent_in_window: u64,
    epochs_in_window: u64,
    rate: Ewma,
    /// Target update transmissions per epoch (from the latest EHr).
    budget_per_epoch: Option<f64>,
}

impl AtcController {
    /// Fresh controller at the configured initial δ.
    pub fn new(cfg: AtcConfig) -> Self {
        assert!(cfg.initial_delta_pct > 0.0, "initial delta must be positive");
        assert!(
            cfg.min_delta_pct > 0.0 && cfg.min_delta_pct <= cfg.max_delta_pct,
            "delta clamps must satisfy 0 < min <= max"
        );
        assert!(cfg.adjust_period > 0, "adjust period must be positive");
        assert!(cfg.max_step > 1.0, "max_step must exceed 1");
        assert!((0.0..=1.0).contains(&cfg.feedforward_weight), "blend weight in [0,1]");
        AtcController {
            delta_pct: cfg.initial_delta_pct,
            sent_in_window: 0,
            epochs_in_window: 0,
            rate: Ewma::new(cfg.rate_alpha),
            budget_per_epoch: None,
            cfg,
        }
    }

    /// Current δ in percent of the reference span.
    pub fn delta_pct(&self) -> f64 {
        self.delta_pct
    }

    /// The most recent per-node budget (updates/epoch), if any EHr arrived.
    pub fn budget(&self) -> Option<f64> {
        self.budget_per_epoch
    }

    /// Smoothed observed update rate (updates/epoch).
    pub fn observed_rate(&self) -> Option<f64> {
        self.rate.value()
    }

    /// Record that this node transmitted one Update/Retract message.
    pub fn on_update_sent(&mut self) {
        self.sent_in_window += 1;
    }

    /// Receive the hourly budget from the root.
    pub fn on_budget(&mut self, per_node_budget_per_epoch: f64) {
        if per_node_budget_per_epoch.is_finite() && per_node_budget_per_epoch >= 0.0 {
            self.budget_per_epoch = Some(per_node_budget_per_epoch);
        }
    }

    /// Advance one epoch; `sigma_hat` is the node's current estimate of the
    /// per-epoch absolute signal change **in percent of the reference
    /// span** (same unit as δ). Returns `Some(new_delta_pct)` when an
    /// adjustment fired this epoch.
    pub fn on_epoch_end(&mut self, sigma_hat_pct: Option<f64>) -> Option<f64> {
        self.epochs_in_window += 1;
        if self.epochs_in_window < self.cfg.adjust_period {
            return None;
        }
        let window_rate = self.sent_in_window as f64 / self.epochs_in_window as f64;
        self.sent_in_window = 0;
        self.epochs_in_window = 0;
        self.rate.observe(window_rate);

        let Some(budget) = self.budget_per_epoch else {
            return None; // no EHr yet: keep the initial δ
        };
        // A zero/negative budget means the root wants (almost) no updates:
        // saturate δ at its ceiling.
        let budget = budget.max(1e-6);

        // Feedback: steer the observed rate towards the budget.
        let observed = self.rate.value_or(window_rate).max(budget / 16.0);
        let fb = self.delta_pct * (observed / budget).powf(self.cfg.gain);

        // Feedforward: drift model  rate ≈ σ̂ / (2δ)  ⇒  δ* = σ̂/(2·budget).
        let target = match sigma_hat_pct {
            Some(s) if s > 0.0 => {
                let ff = s / (2.0 * budget);
                let w = self.cfg.feedforward_weight;
                fb.powf(1.0 - w) * ff.powf(w)
            }
            _ => fb,
        };

        let step = (target / self.delta_pct).clamp(1.0 / self.cfg.max_step, self.cfg.max_step);
        self.delta_pct =
            (self.delta_pct * step).clamp(self.cfg.min_delta_pct, self.cfg.max_delta_pct);
        Some(self.delta_pct)
    }

    /// Write the adaptive state to `w` (the tuning config is
    /// construction-time and not captured).
    pub fn snap(&self, w: &mut dirq_sim::SnapWriter) {
        w.f64(self.delta_pct);
        w.u64(self.sent_in_window);
        w.u64(self.epochs_in_window);
        self.rate.snap(w);
        w.opt_f64(self.budget_per_epoch);
    }

    /// Overlay state captured by [`AtcController::snap`] onto a controller
    /// built with the same config.
    pub fn restore(&mut self, r: &mut dirq_sim::SnapReader<'_>) -> Result<(), dirq_sim::SnapError> {
        self.delta_pct = r.f64()?;
        self.sent_in_window = r.u64()?;
        self.epochs_in_window = r.u64()?;
        self.rate = Ewma::unsnap(r)?;
        self.budget_per_epoch = r.opt_f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(period: u64) -> AtcConfig {
        AtcConfig { adjust_period: period, ..Default::default() }
    }

    #[test]
    fn no_adjustment_before_period() {
        let mut c = AtcController::new(cfg(10));
        c.on_budget(0.1);
        for _ in 0..9 {
            assert_eq!(c.on_epoch_end(Some(1.0)), None);
        }
        assert!(c.on_epoch_end(Some(1.0)).is_some());
    }

    #[test]
    fn no_adjustment_without_budget() {
        let mut c = AtcController::new(cfg(5));
        for _ in 0..20 {
            c.on_update_sent();
            let _ = c.on_epoch_end(Some(1.0));
        }
        assert_eq!(c.delta_pct(), c.cfg.initial_delta_pct, "δ frozen until EHr arrives");
    }

    #[test]
    fn over_budget_raises_delta() {
        let mut c = AtcController::new(AtcConfig {
            adjust_period: 10,
            feedforward_weight: 0.0,
            ..Default::default()
        });
        c.on_budget(0.05); // allow 0.5 updates per window
        let before = c.delta_pct();
        // Send 10 updates per window: heavily over budget.
        for _ in 0..10 {
            for _ in 0..10 {
                c.on_update_sent();
                let _ = c.on_epoch_end(None);
            }
        }
        assert!(
            c.delta_pct() > before * 2.0,
            "δ should grow under overload: {} -> {}",
            before,
            c.delta_pct()
        );
    }

    #[test]
    fn under_budget_lowers_delta() {
        let mut c = AtcController::new(AtcConfig {
            adjust_period: 10,
            feedforward_weight: 0.0,
            ..Default::default()
        });
        c.on_budget(0.5);
        let before = c.delta_pct();
        for _ in 0..100 {
            let _ = c.on_epoch_end(None); // zero updates sent
        }
        assert!(
            c.delta_pct() < before / 2.0,
            "δ should shrink when silent: {} -> {}",
            before,
            c.delta_pct()
        );
    }

    #[test]
    fn clamps_respected() {
        let mut c = AtcController::new(AtcConfig {
            adjust_period: 1,
            min_delta_pct: 1.0,
            max_delta_pct: 10.0,
            feedforward_weight: 0.0,
            ..Default::default()
        });
        c.on_budget(1000.0); // effectively unlimited → δ falls
        for _ in 0..200 {
            let _ = c.on_epoch_end(None);
        }
        assert!(c.delta_pct() >= 1.0);
        c.on_budget(1e-9); // effectively zero → δ rises
        for _ in 0..200 {
            c.on_update_sent();
            let _ = c.on_epoch_end(None);
        }
        assert!(c.delta_pct() <= 10.0);
    }

    #[test]
    fn feedforward_converges_near_model_optimum() {
        // Pure feedforward: σ̂ = 2 %/epoch, budget = 0.2 updates/epoch
        // ⇒ δ* = 2 / (2·0.2) = 5 %.
        let mut c = AtcController::new(AtcConfig {
            adjust_period: 5,
            feedforward_weight: 1.0,
            initial_delta_pct: 20.0,
            ..Default::default()
        });
        c.on_budget(0.2);
        for _ in 0..400 {
            let _ = c.on_epoch_end(Some(2.0));
        }
        assert!(
            (c.delta_pct() - 5.0).abs() < 0.5,
            "feedforward should settle near 5%, got {}",
            c.delta_pct()
        );
    }

    #[test]
    fn step_clamp_limits_swing() {
        let mut c = AtcController::new(AtcConfig {
            adjust_period: 1,
            max_step: 1.5,
            feedforward_weight: 0.0,
            ..Default::default()
        });
        c.on_budget(0.01);
        let before = c.delta_pct();
        for _ in 0..50 {
            c.on_update_sent();
        }
        let after = c.on_epoch_end(None).unwrap();
        assert!(after / before <= 1.5 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "adjust period")]
    fn zero_period_rejected() {
        let _ = AtcController::new(AtcConfig { adjust_period: 0, ..Default::default() });
    }

    #[test]
    fn invalid_budget_ignored() {
        let mut c = AtcController::new(cfg(5));
        c.on_budget(f64::NAN);
        assert_eq!(c.budget(), None);
        c.on_budget(-1.0);
        assert_eq!(c.budget(), None);
        c.on_budget(0.25);
        assert_eq!(c.budget(), Some(0.25));
    }
}
