//! # dirq-core — the DirQ protocol
//!
//! Implementation of *"An Adaptive Directed Query Dissemination Scheme for
//! Wireless Sensor Networks"* (Chatterjea, De Luigi, Havinga — ICPPW 2006).
//!
//! DirQ routes one-shot range queries only to the **relevant** nodes of a
//! sensor network instead of flooding it. Every node keeps, per sensor
//! type, a [`range_table::RangeTable`] with a `[THmin, THmax]` tuple for
//! itself and one for each one-hop child of a sink-rooted spanning tree;
//! aggregates propagate upward as **Update Messages** only when they move
//! by more than a threshold δ, and queries propagate downward only along
//! children whose advertised ranges overlap the query window. The
//! [`atc::AtcController`] adapts δ per node from the root's hourly query
//! estimate and the locally observed signal variability, holding total
//! cost near half of flooding.
//!
//! Module map:
//!
//! * [`messages`] — the wire messages (Update, Retract, Query, EHr, …).
//! * [`range_table`] — Section 4.1's data structure and update rule.
//! * [`node`] — the per-node protocol state machine.
//! * [`atc`] — Section 6's Adaptive Threshold Control (reconstructed; the
//!   companion paper with the original internals is unavailable).
//! * [`flooding`] — the Section 5.1 baseline.
//! * [`metrics`] — per-query outcomes, Fig. 6 time series, cost ledgers.
//! * [`engine`] — the scenario engine wiring the DES, LMAC, world and
//!   protocol together; [`engine::run_scenario`] is the main entry point.

#![warn(missing_docs)]

pub mod atc;
pub mod engine;
pub mod flooding;
pub mod geo;
pub mod messages;
pub mod metrics;
pub mod node;
mod pending;
pub mod range_table;
pub mod sampling;

pub use atc::{AtcConfig, AtcController, DeltaPolicy};
pub use engine::{
    run_scenario, ChurnSpec, CompletedQuery, Engine, PhaseTimings, Protocol, RadioSpec, RunResult,
    ScenarioConfig, TreeKind,
};
pub use geo::GeoTable;
pub use messages::{DirqMessage, EhrMessage, MessageCategory};
pub use metrics::{Metrics, QueryOutcome};
pub use node::{DirqNode, NodeConfig, Outgoing};
pub use range_table::{RangeEntry, RangeTable};
pub use sampling::{PredictiveConfig, Sampler, SamplingStrategy};
